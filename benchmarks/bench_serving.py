"""Serving-layer benchmark: cursors, subscriptions, sharding, dispatch.

The experiments over the ``repro.serve`` subsystem:

* ``cursor_resume`` — a cursor pages through a large view result;
  per-page cost must be flat from the first page to the last (resume
  is O(1) per tuple: the Algorithm 1 walk is suspended, never
  restarted).  The contrast client re-enumerates from scratch and
  skips to the offset per page — its per-page cost grows linearly,
  which is exactly what resumable cursors remove.

* ``subscription_delta`` — update throughput with a live subscriber:
  the engines' O(δ) ``apply_with_delta`` (touched-path derivation)
  versus the naive rematerialise-and-diff baseline (the
  ``DynamicEngine`` default), on a workload whose per-update δ is tiny
  while the materialised result is large.

* ``multi_client`` — reader and writer threads hammer one
  :class:`repro.serve.Server`: readers page cursors (revalidating or
  reopening on invalidation) and poll counts, writers stream effective
  updates through the reader–writer locks.  Reported as sustained
  reads/sec and writes/sec; at the end the subscription log must
  replay to exactly the final ``result_set()``.

* ``sharded_writes`` — N writer threads hammer N views over pairwise
  disjoint relations while the server runs with 1, 2, … shards.  Each
  view carries one synchronous subscriber whose callback sleeps ~50µs
  — the stand-in for pushing the delta to a downstream socket (blocks
  the writer, releases the GIL, like real network I/O).  With one
  shard that push serialises inside the single writer-preference lock,
  stalling every other writer (the seed's protocol); with view-affine
  shards the disjoint views' write paths overlap and aggregate
  throughput climbs.  Replaying every view's subscription log must
  still match its ``result_set()``.

* ``async_dispatch`` — one writer streams updates to a view with S
  slow subscribers (each callback blocks ~0.1 ms, standing in for a
  network push — it releases the GIL, like real socket I/O).
  Synchronous dispatch pays all S callbacks inside the write path;
  the worker pool lets the writer proceed and absorbs the callbacks
  concurrently.  Reported as writer-side updates/sec for both modes
  plus the drain time, with the byte-identical replay check on the
  outboxes.

* ``multiprocess_shards`` — the same disjoint-view streams as
  ``sharded_writes``, but against a :class:`repro.serve.ShardCluster`
  with 1, 2, … worker **processes** (one single-shard server each,
  behind the socket transport).  Every view again carries one
  subscriber — here the push is a *real* per-client socket write, not
  the 50µs sleep stand-in — and every ``apply`` is a full
  request/reply round trip.  The in-process curve tops out where the
  GIL serialises the engines' update work; worker processes burn real
  cores, so aggregate throughput keeps climbing.  Reported as the
  cluster curve plus the speedup of its best point over the best
  in-process ``sharded_writes`` point, with the same byte-identical
  replay check (now across the process boundary).

* ``failover`` — a supervised 2-worker cluster loses a worker to
  SIGKILL a third of the way through a write stream.  The supervisor
  respawns it and replays its views and rows from the command journal
  while the writer stalls (bounded) and retries; reported as writes/s
  before/during/after the kill, the recovery time, and the
  byte-identical replay check against a threads-backend oracle fed
  the identical commands.  A second half measures head-of-line
  blocking on the shared connection: point counts racing a bulk
  snapshot reader, serial channel vs multiplexed channel, including
  the in-flight high-water mark.

* ``snapshot_reads`` — the price of consistency: pinning a
  cross-shard ``snapshot()`` (per-worker read-all cut + the
  double-collect epoch probe) versus the same plain per-view
  ``result_set`` round trips, on a quiescent 2-worker cluster; then
  pin-retry convergence while a writer streams updates into one of the
  pinned views — every snapshot must settle (re-reads, re-pins, or
  the final write-gated attempt) rather than raise.

* ``parameterized_views`` — one view with a binding index serving
  thousands of distinct bound readers (``cursor(x=c)``, per-binding
  subscriptions) versus the pre-parameterized-API reality of
  registering a view copy per reader: memory ratio (guarded at 5%),
  extrapolated per-update cost, fan-out flatness with thousands of
  bound subscribers, and point-lookup latency percentiles under a
  concurrent writer.

Aborting a run with Ctrl-C is safe: the cluster context managers
SIGTERM their worker processes on unwind (workers also watch a life
pipe and die with the parent), so interrupted local runs leave no
orphan processes behind.

Output: a table on stdout plus machine-readable JSON (default
``BENCH_serving.json`` at the repository root).  ``--quick`` shrinks
sizes for the CI smoke run; ``--readers/--writers/--shards`` pin the
client counts so different runs compare like with like (the CI
regression gate passes them explicitly).
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import pathlib
import platform
import random
import sys
import threading
import time
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import QHierarchicalEngine
from repro.cq import zoo
from repro.errors import CursorInvalidatedError
from repro.interface import DynamicEngine
from repro.serve import Server
from repro.storage.database import Database
from repro.storage.updates import UpdateCommand, delete, insert

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serving.json"


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


# ---------------------------------------------------------------------------
# workload: E_T_QF (V(x, y) :- E(x, y) ∧ T(y)) with a large materialisation
# ---------------------------------------------------------------------------


def feed_database(rows: int, domain: int, rng: random.Random) -> Database:
    query = zoo.E_T_QF
    database = Database.empty_like(query)
    for value in range(domain):
        database.insert("T", (value,))
    added = 0
    while added < rows:
        if database.insert(
            "E", (rng.randrange(domain * 4), rng.randrange(domain))
        ):
            added += 1
    return database


# ---------------------------------------------------------------------------
# experiment 1: cursor paging is O(1) per tuple, independent of position
# ---------------------------------------------------------------------------


def bench_cursor_resume(
    rows: int, page: int, rng: random.Random
) -> Dict[str, object]:
    server = Server()
    view = server.view("feed", zoo.E_T_QF)
    database = feed_database(rows, max(64, rows // 16), rng)
    for relation in database.relations():
        for row in relation.rows:
            server.insert(relation.name, row)
    total = server.count("feed")
    pages = total // page

    cursor = view.cursor()
    page_times: List[float] = []
    for _ in range(pages):
        page_times.append(_timed(lambda: cursor.fetch(page)))
    cursor.close()

    head = page_times[: max(1, pages // 10)]
    tail = page_times[-max(1, pages // 10):]
    first_ms = 1000 * sum(head) / len(head)
    last_ms = 1000 * sum(tail) / len(tail)

    # Contrast: a client without cursors re-enumerates and skips to the
    # offset for every page (sampled — the full quadratic sweep is the
    # point, not something to wait for).
    sample_offsets = [0, (pages // 2) * page, (pages - 1) * page]
    naive_ms = []
    engine = view.engine
    for offset in sample_offsets:
        naive_ms.append(
            1000
            * _timed(
                lambda off=offset: list(
                    islice(engine.enumerate(), off, off + page)
                )
            )
        )

    return {
        "result_size": total,
        "page_size": page,
        "pages": pages,
        "cursor_page_ms_first": round(first_ms, 4),
        "cursor_page_ms_last": round(last_ms, 4),
        "cursor_last_over_first": round(last_ms / first_ms, 3),
        "naive_page_ms_at_start": round(naive_ms[0], 4),
        "naive_page_ms_at_middle": round(naive_ms[1], 4),
        "naive_page_ms_at_end": round(naive_ms[2], 4),
        "naive_end_over_start": round(naive_ms[2] / max(naive_ms[0], 1e-9), 1),
    }


# ---------------------------------------------------------------------------
# experiment 2: O(δ) subscription deltas vs rematerialise-and-diff
# ---------------------------------------------------------------------------


def delta_update_stream(
    count: int, domain: int, rng: random.Random
) -> List[UpdateCommand]:
    """Effective inserts/deletes with per-update δ of 0 or 1."""
    commands: List[UpdateCommand] = []
    live: List[tuple] = []
    for step in range(count):
        if live and rng.random() < 0.4:
            row = live.pop(rng.randrange(len(live)))
            commands.append(delete("E", row))
        else:
            row = (10_000_000 + step, rng.randrange(domain))
            live.append(row)
            commands.append(insert("E", row))
    return commands


def bench_subscription_delta(
    rows: int, updates: int, rng: random.Random
) -> Dict[str, object]:
    query = zoo.E_T_QF
    domain = max(64, rows // 16)
    database = feed_database(rows, domain, rng)

    fast = QHierarchicalEngine(query, database)
    slow = QHierarchicalEngine(query, database)
    stream = delta_update_stream(updates, domain, rng)
    # The naive side pays O(|result|) per update; sample it.
    slow_sample = stream[: max(10, updates // 100)]

    def run_fast() -> None:
        for command in stream:
            fast.apply_with_delta(command)

    def run_slow() -> None:
        for command in slow_sample:
            DynamicEngine.apply_with_delta(slow, command)

    fast_s = _timed(run_fast)
    slow_s = _timed(run_slow)
    fast_ups = len(stream) / fast_s
    slow_ups = len(slow_sample) / slow_s
    return {
        "result_size": slow.count(),
        "updates": len(stream),
        "delta_updates_per_s": round(fast_ups),
        "rematerialize_updates_per_s": round(slow_ups),
        "speedup": round(fast_ups / slow_ups, 2),
    }


# ---------------------------------------------------------------------------
# experiment 3: multi-client dispatcher throughput
# ---------------------------------------------------------------------------


def bench_multi_client(
    rows: int,
    writer_ops: int,
    readers: int,
    writers: int,
    page: int,
    rng: random.Random,
    shards: int = 1,
    dispatch_workers: int = 0,
) -> Dict[str, object]:
    server = Server(shards=shards, dispatch_workers=dispatch_workers)
    server.view("feed", zoo.E_T_QF)
    domain = max(64, rows // 16)
    database = feed_database(rows, domain, rng)
    commands = [
        insert(relation.name, row)
        for relation in database.relations()
        for row in relation.rows
    ]
    server.batch(commands)
    subscription = server.subscribe("feed")
    baseline = set(server.session["feed"].result_set())

    streams = [
        delta_update_stream(writer_ops // writers, domain, random.Random(i))
        for i in range(writers)
    ]
    # Writers share one relation namespace; offset the fresh keys so the
    # streams stay effective against each other.
    streams = [
        [
            UpdateCommand(
                c.op, c.relation, (c.row[0] + 1_000_000 * i, *c.row[1:])
            )
            for c in stream
        ]
        for i, stream in enumerate(streams)
    ]

    stop = threading.Event()
    fetches = [0] * readers
    counts = [0] * readers
    invalidated = [0] * readers
    failures: List[BaseException] = []

    def writer(stream: Sequence[UpdateCommand]) -> None:
        try:
            for command in stream:
                server.apply(command)
        except BaseException as error:  # pragma: no cover
            failures.append(error)
            raise

    def reader(index: int) -> None:
        rng_local = random.Random(1000 + index)
        try:
            while not stop.is_set():
                cursor = server.open_cursor("feed")
                for _ in range(rng_local.randint(1, 30)):
                    try:
                        if not server.fetch(cursor, page):
                            break
                    except CursorInvalidatedError:
                        invalidated[index] += 1
                        break
                    fetches[index] += 1
                server.close_cursor(cursor)
                server.count("feed")
                counts[index] += 1
        except BaseException as error:  # pragma: no cover
            failures.append(error)
            raise

    reader_threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(readers)
    ]
    writer_threads = [
        threading.Thread(target=writer, args=(stream,)) for stream in streams
    ]
    start = time.perf_counter()
    for thread in reader_threads + writer_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    write_elapsed = time.perf_counter() - start
    stop.set()
    for thread in reader_threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    server.drain()

    mirror = set(baseline)
    for delta_item in server.poll(subscription):
        mirror |= set(delta_item.added)
        mirror -= set(delta_item.removed)
    expected = server.session["feed"].result_set()
    assert mirror == expected, "subscription replay diverged from the view"

    total_writes = sum(len(stream) for stream in streams)
    total_fetches = sum(fetches)
    return {
        "readers": readers,
        "writers": writers,
        "shards": shards,
        "dispatch_workers": dispatch_workers,
        "result_size": len(expected),
        "writes": total_writes,
        "writes_per_s": round(total_writes / write_elapsed),
        "fetch_pages": total_fetches,
        "tuples_read_per_s": round(total_fetches * page / elapsed),
        "count_queries": sum(counts),
        "cursor_invalidations": sum(invalidated),
        "subscription_replay_ok": True,
        "elapsed_s": round(elapsed, 2),
    }


# ---------------------------------------------------------------------------
# experiment 4: sharded write path — writer scaling over disjoint views
# ---------------------------------------------------------------------------


def disjoint_write_stream(
    index: int, count: int, domain: int, seed: int
) -> List[UpdateCommand]:
    """Effective inserts/deletes against relation ``E<index>``."""
    rng = random.Random(seed)
    commands: List[UpdateCommand] = []
    live: List[tuple] = []
    for step in range(count):
        if live and rng.random() < 0.35:
            row = live.pop(rng.randrange(len(live)))
            commands.append(delete(f"E{index}", row))
        else:
            row = (step, rng.randrange(domain))
            live.append(row)
            commands.append(insert(f"E{index}", row))
    return commands


def _run_sharded(
    shards: int,
    writers: int,
    streams: List[List[UpdateCommand]],
    domain: int,
    push_ms: float,
) -> Tuple[float, bool]:
    """One configuration: aggregate write time + replay exactness.

    Every view carries one *synchronous* subscriber whose callback
    sleeps ``push_ms`` — the stand-in for pushing the delta to a
    downstream socket (it blocks the writer but releases the GIL, like
    real network I/O).  That makes the experiment measure exactly what
    sharding changes: with one shard the push serialises inside the
    global write lock, stalling every other writer; with view-affine
    shards the pushes of disjoint views overlap.
    """
    server = Server(shards=shards)
    subscriptions = []
    push_s = push_ms / 1000.0
    for i in range(writers):
        server.view(f"v{i}", f"V(x, y) :- E{i}(x, y), T{i}(y)")
        for value in range(domain):
            server.insert(f"T{i}", (value,))
        subscriptions.append(
            server.subscribe(f"v{i}", callback=lambda d: time.sleep(push_s))
        )
    failures: List[BaseException] = []

    def writer(stream: Sequence[UpdateCommand]) -> None:
        try:
            for command in stream:
                server.apply(command)
        except BaseException as error:  # pragma: no cover
            failures.append(error)
            raise

    threads = [
        threading.Thread(target=writer, args=(stream,)) for stream in streams
    ]
    gc.collect()
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]

    replay_ok = True
    for i, handle in enumerate(subscriptions):
        mirror: set = set()
        for delta_item in server.poll(handle):
            mirror |= set(delta_item.added)
            mirror -= set(delta_item.removed)
        if mirror != server.session[f"v{i}"].result_set():
            replay_ok = False
    return elapsed, replay_ok


def bench_sharded_writes(
    writer_ops: int,
    writers: int,
    shard_counts: Sequence[int],
    push_ms: float = 0.05,
) -> Dict[str, object]:
    domain = 64
    streams = [
        disjoint_write_stream(i, writer_ops // writers, domain, 500 + i)
        for i in range(writers)
    ]
    total_ops = sum(len(stream) for stream in streams)
    curve: List[Dict[str, object]] = []
    replay_ok = True
    for shards in shard_counts:
        elapsed, ok = _run_sharded(shards, writers, streams, domain, push_ms)
        replay_ok = replay_ok and ok
        curve.append(
            {
                "shards": shards,
                "writes_per_s": round(total_ops / elapsed),
                "elapsed_s": round(elapsed, 4),
            }
        )
    base_ups = curve[0]["writes_per_s"]
    for point in curve:
        point["speedup_vs_1shard"] = round(point["writes_per_s"] / base_ups, 3)
    best = curve[-1]
    return {
        "writers": writers,
        "writes": total_ops,
        "push_ms": push_ms,
        "curve": curve,
        "speedup_at_max_shards": best["speedup_vs_1shard"],
        "max_shards": best["shards"],
        "subscription_replay_ok": replay_ok,
    }


# ---------------------------------------------------------------------------
# experiment 5: multiprocess shard cluster — writer scaling past the GIL
# ---------------------------------------------------------------------------


def _run_cluster(
    workers_n: int,
    writers: int,
    streams: List[List[UpdateCommand]],
    domain: int,
    chunk: int,
) -> Tuple[float, bool]:
    """One cluster configuration: aggregate write time + replay check.

    Mirrors ``_run_sharded`` — same views, same streams, one subscriber
    per view — except the shards are worker processes, the subscriber's
    "push to a downstream socket" is the cluster's real per-client push
    channel instead of a sleep stand-in, and the writers stream through
    ``apply_stream`` (chunked wire framing, the production write path
    for socket-remote updates; each command still runs the full
    per-update choreography on its worker).
    """
    from repro.serve.cluster import ShardCluster

    with ShardCluster(workers=workers_n) as cluster:
        with cluster.client() as client:
            subscriptions = []
            for i in range(writers):
                client.view(f"v{i}", f"V(x, y) :- E{i}(x, y), T{i}(y)")
                client.batch(
                    [insert(f"T{i}", (value,)) for value in range(domain)]
                )
                subscriptions.append(client.subscribe(f"v{i}"))
            failures: List[BaseException] = []

            def writer(stream: Sequence[UpdateCommand]) -> None:
                try:
                    client.apply_stream(stream, chunk=chunk)
                except BaseException as error:  # pragma: no cover
                    failures.append(error)
                    raise

            threads = [
                threading.Thread(target=writer, args=(stream,))
                for stream in streams
            ]
            gc.collect()
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if failures:
                raise failures[0]

            replay_ok = True
            for i, handle in enumerate(subscriptions):
                mirror: set = set()
                for delta_item in client.poll(handle):
                    mirror |= set(delta_item.added)
                    mirror -= set(delta_item.removed)
                if mirror != client.result_set(f"v{i}"):
                    replay_ok = False
    return elapsed, replay_ok


def bench_multiprocess_shards(
    writer_ops: int,
    writers: int,
    worker_counts: Sequence[int],
    inprocess_best_ups: float,
    chunk: int = 256,
    repeats: int = 2,
) -> Dict[str, object]:
    domain = 64
    streams = [
        disjoint_write_stream(i, writer_ops // writers, domain, 500 + i)
        for i in range(writers)
    ]
    total_ops = sum(len(stream) for stream in streams)
    curve: List[Dict[str, object]] = []
    replay_ok = True
    for workers_n in worker_counts:
        # Best-of-N: a cluster's worker processes are separate
        # scheduling victims, so a single shot on a shared (or
        # single-core) host confounds interference with capability —
        # the fastest repeat is the sustainable rate.
        elapsed = None
        for _repeat in range(max(1, repeats)):
            once, ok = _run_cluster(workers_n, writers, streams, domain, chunk)
            replay_ok = replay_ok and ok
            elapsed = once if elapsed is None else min(elapsed, once)
        curve.append(
            {
                "workers": workers_n,
                "writes_per_s": round(total_ops / elapsed),
                "elapsed_s": round(elapsed, 4),
            }
        )
    base_ups = curve[0]["writes_per_s"]
    for point in curve:
        point["speedup_vs_1worker"] = round(
            point["writes_per_s"] / base_ups, 3
        )
    best = max(curve, key=lambda point: point["writes_per_s"])
    at_max = curve[-1]
    return {
        "writers": writers,
        "writes": total_ops,
        "wire_chunk": chunk,
        "repeats": max(1, repeats),
        "note": "same disjoint-view stream generator as sharded_writes "
        "(longer streams + best-of-N repeats for a stable window); "
        "subscriber pushes are real per-client socket writes, writers "
        "use apply_stream (chunked wire framing; full per-update "
        "choreography per command worker-side)",
        "curve": curve,
        "best_workers": best["workers"],
        "best_writes_per_s": best["writes_per_s"],
        "max_workers": at_max["workers"],
        "max_workers_writes_per_s": at_max["writes_per_s"],
        "inprocess_best_writes_per_s": inprocess_best_ups,
        "speedup_vs_inprocess_best": round(
            best["writes_per_s"] / inprocess_best_ups, 3
        ),
        "speedup_vs_inprocess_at_max_workers": round(
            at_max["writes_per_s"] / inprocess_best_ups, 3
        ),
        "subscription_replay_ok": replay_ok,
    }


# ---------------------------------------------------------------------------
# experiment 6: supervised failover — kill -9 becomes a bounded stall
# ---------------------------------------------------------------------------


def bench_failover(
    writer_ops: int,
    mux_threads: int,
    mux_requests: int,
) -> Dict[str, object]:
    """Kill a shard worker mid-write-stream under supervision.

    One writer streams effective updates through a supervised
    2-worker cluster; a third of the way in, the view's worker gets
    SIGKILL.  The stream must complete without a client-visible error
    (the supervised retry stalls through the recovery), replay
    byte-identical to a threads-backend oracle fed the same commands,
    and the recovery itself must be bounded (seconds, not a hung
    deployment).  Reported: writes/s before/during/after the kill, the
    supervisor-measured recovery time, and the longest single apply
    (the client-observed stall ceiling).

    The second half measures what the multiplexed transport buys: the
    same read workload (``count`` round trips from ``mux_threads``
    concurrent threads) against a serial one-in-flight channel versus
    the mux channel, plus the mux's in-flight high-water mark — proof
    the pipelining is real, not just configured.
    """
    from repro.serve.cluster import ShardCluster
    from repro.serve.journal import CommandJournal
    from repro.serve.supervisor import Supervisor

    domain = 64
    stream = disjoint_write_stream(0, writer_ops, domain, 700)
    third = len(stream) // 3

    oracle = Server()
    oracle.view("v0", "V(x, y) :- E0(x, y), T0(y)")
    with ShardCluster(workers=2) as cluster:
        journal = CommandJournal()
        with cluster.client(journal=journal) as client:
            supervisor = Supervisor(
                cluster, client, journal=journal, heartbeat=0.1
            ).start()
            client.view("v0", "V(x, y) :- E0(x, y), T0(y)")
            for value in range(domain):
                client.insert("T0", (value,))
                oracle.insert("T0", (value,))
            victim = client._worker_of_view("v0")

            def run_phase(commands: Sequence[UpdateCommand]) -> Tuple[float, float]:
                slowest = 0.0
                start = time.perf_counter()
                for command in commands:
                    t0 = time.perf_counter()
                    client.apply(command)
                    oracle.apply(command)
                    slowest = max(slowest, time.perf_counter() - t0)
                return time.perf_counter() - start, slowest

            before_s, _ = run_phase(stream[:third])
            cluster.kill_worker(victim)  # SIGKILL, stream keeps flowing
            during_s, stall_s = run_phase(stream[third : 2 * third])
            after_s, _ = run_phase(stream[2 * third :])

            recovery = supervisor.recoveries[0] if supervisor.recoveries else {}
            replay_ok = client.result_digest("v0") == oracle.session[
                "v0"
            ].engine.result_digest()
            restarts = cluster.restarts[victim]
            supervisor.stop()

    # -- multiplexed vs serial transport: head-of-line blocking --
    # One bulk reader drags full 4096-row snapshots over the shared
    # connection while eight interactive readers issue point counts.
    # The serial channel queues every count behind the multi-ms scan in
    # front of it; the mux channel tags frames so counts overtake the
    # scan on the worker's read lanes and return in microseconds.
    mux_stats: Dict[str, Dict[str, object]] = {}
    with ShardCluster(workers=1) as cluster:
        for mode, multiplex in (("serial", False), ("mux", True)):
            with cluster.client(multiplex=multiplex) as client:
                client.view(f"m_{mode}", "V(x, y) :- ME(x, y)")
                client.batch(
                    [insert("ME", (i, i % domain)) for i in range(4096)]
                )
                done = threading.Event()
                scans = [0]

                def bulk() -> None:
                    while not done.is_set():
                        client.result_set(f"m_{mode}")
                        scans[0] += 1

                def reader() -> None:
                    for _ in range(mux_requests):
                        client.count(f"m_{mode}")

                bulk_thread = threading.Thread(target=bulk)
                threads = [
                    threading.Thread(target=reader)
                    for _ in range(mux_threads)
                ]
                gc.collect()
                start = time.perf_counter()
                bulk_thread.start()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - start
                done.set()
                bulk_thread.join()
                total = mux_requests * mux_threads
                mux_stats[mode] = {
                    "interactive_requests": total,
                    "requests_per_s": round(total / elapsed),
                    "bulk_scans": scans[0],
                    "elapsed_s": round(elapsed, 4),
                }
                if multiplex:
                    mux_stats[mode]["max_in_flight_seen"] = client._conns[
                        0
                    ].max_in_flight_seen

    speedup = (
        mux_stats["mux"]["requests_per_s"]
        / max(1, mux_stats["serial"]["requests_per_s"])
    )
    return {
        "writes": len(stream),
        "workers": 2,
        "recovery_seconds": round(float(recovery.get("seconds", -1.0)), 4),
        "recovered_views": list(recovery.get("views", ())),
        "worker_restarts": restarts,
        "writes_per_s_before_kill": round(third / before_s),
        "writes_per_s_during_recovery": round(third / during_s),
        "writes_per_s_after_recovery": round(
            (len(stream) - 2 * third) / after_s
        ),
        "longest_apply_s": round(stall_s, 4),
        "replay_byte_identical": replay_ok,
        "mux_threads": mux_threads,
        "serial": mux_stats["serial"],
        "mux": mux_stats["mux"],
        "mux_speedup": round(speedup, 3),
    }


# ---------------------------------------------------------------------------
# experiment 8: snapshot-consistent cross-shard reads — the price of a cut
# ---------------------------------------------------------------------------


def bench_snapshot_reads(
    rows_per_view: int, reads: int, writer_snapshots: int
) -> Dict[str, object]:
    """Pin cost vs plain reads, and pin-retry convergence under writes.

    Quiescent phase: ``reads`` repetitions of (a) one ``snapshot()``
    spanning both workers' views and (b) the same data over plain
    ``result_set`` round trips.  Both transfer identical row volume;
    the snapshot adds the read-all locks and one epoch probe per
    worker, so the overhead ratio is the protocol's price tag.

    Writer phase: a thread streams inserts into one pinned view while
    ``writer_snapshots`` cuts are taken.  Reported: pin attempts and
    re-reads per cut (the double-collect's optimism meter) and whether
    every cut settled — the escalated final attempt behind the write
    gate means convergence, not an invalidation error, is the contract.
    """
    from repro.serve.cluster import ShardCluster

    with ShardCluster(workers=2) as cluster:
        with cluster.client() as client:
            client.view("snap_a", "V(x, y) :- SNA(x, y)")
            client.view("snap_b", "W(x, y) :- SNB(x, y)")
            client.batch(
                [insert("SNA", (i, i % 97)) for i in range(rows_per_view)]
            )
            client.batch(
                [insert("SNB", (i, i % 89)) for i in range(rows_per_view)]
            )
            views = ["snap_a", "snap_b"]

            gc.collect()
            start = time.perf_counter()
            for _ in range(reads):
                for view in views:
                    client.result_set(view)
            plain_s = time.perf_counter() - start

            start = time.perf_counter()
            for _ in range(reads):
                client.snapshot(views=views)
            snapshot_s = time.perf_counter() - start

            # -- convergence under a live writer --
            stop = threading.Event()
            written = [0]

            def writer() -> None:
                n = rows_per_view
                while not stop.is_set():
                    client.insert("SNA", (n, n % 97))
                    written[0] = n = n + 1

            pin_attempts: List[int] = []
            rereads: List[int] = []
            thread = threading.Thread(target=writer)
            thread.start()
            try:
                for _ in range(writer_snapshots):
                    snap = client.snapshot(views=views)
                    pin_attempts.append(snap.pin_attempts)
                    rereads.append(snap.rereads)
            finally:
                stop.set()
                thread.join()

    plain_ms = plain_s * 1000.0 / reads
    snapshot_ms = snapshot_s * 1000.0 / reads
    return {
        "views": len(views),
        "workers": 2,
        "rows_per_view": rows_per_view,
        "reads": reads,
        "plain_read_ms": round(plain_ms, 4),
        "snapshot_ms": round(snapshot_ms, 4),
        "overhead_vs_plain": round(snapshot_ms / plain_ms, 4),
        "writer_snapshots": len(pin_attempts),
        "writer_inserts": written[0] - rows_per_view,
        "mean_pin_attempts": round(
            sum(pin_attempts) / max(1, len(pin_attempts)), 3
        ),
        "max_pin_attempts": max(pin_attempts, default=0),
        "total_rereads": sum(rereads),
        "all_converged": len(pin_attempts) == writer_snapshots,
    }


# ---------------------------------------------------------------------------
# experiment 7: async subscription dispatch — offloading slow consumers
# ---------------------------------------------------------------------------


def bench_async_dispatch(
    updates: int, subscribers: int, callback_ms: float, workers: int
) -> Dict[str, object]:
    domain = 64
    stream = disjoint_write_stream(0, updates, domain, 900)
    results: Dict[str, Dict[str, float]] = {}
    replay_ok = True
    sleep_s = callback_ms / 1000.0

    for mode, dispatch_workers in (("sync", 0), ("async", workers)):
        server = Server(dispatch_workers=dispatch_workers)
        server.view("v0", "V(x, y) :- E0(x, y), T0(y)")
        for value in range(domain):
            server.insert("T0", (value,))
        handles = [
            # the sleep stands in for a network push: it blocks the
            # delivering thread but releases the GIL, like socket I/O
            server.subscribe("v0", callback=lambda d: time.sleep(sleep_s))
            for _ in range(subscribers)
        ]
        gc.collect()
        start = time.perf_counter()
        for command in stream:
            server.apply(command)
        writer_elapsed = time.perf_counter() - start
        server.drain()
        drained_elapsed = time.perf_counter() - start
        server.close()
        for handle in handles:
            mirror: set = set()
            for delta_item in server.poll(handle):
                mirror |= set(delta_item.added)
                mirror -= set(delta_item.removed)
            if mirror != server.session["v0"].result_set():
                replay_ok = False
        results[mode] = {
            "writer_updates_per_s": round(len(stream) / writer_elapsed),
            "writer_elapsed_s": round(writer_elapsed, 4),
            "drained_elapsed_s": round(drained_elapsed, 4),
        }

    speedup = (
        results["async"]["writer_updates_per_s"]
        / results["sync"]["writer_updates_per_s"]
    )
    return {
        "updates": len(stream),
        "subscribers": subscribers,
        "callback_ms": callback_ms,
        "dispatch_workers": workers,
        "sync": results["sync"],
        "async": results["async"],
        "writer_speedup": round(speedup, 2),
        "subscription_replay_ok": replay_ok,
    }


# ---------------------------------------------------------------------------
# experiment: the observability layer's write-path overhead (repro.obs)
# ---------------------------------------------------------------------------


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def bench_observability_overhead(
    rows: int, updates: int, chunk: int, rounds: int, rng: random.Random
) -> Dict[str, object]:
    """Instrumented vs ``observe=False`` on the single-writer path.

    The same effective update stream runs through two servers that
    differ only in ``observe=``: one records per-view update-cost
    histograms (sampled, see ``REPRO_PROBE_STRIDE``), engine counters
    and guarantee probes, the other takes the no-op fast path.  The
    denominator is the serving layer's real write path —
    ``Server.apply`` with its shard lock and cursor choreography — the
    path the registry actually instruments in production.

    The true overhead is sub-1%, below two distinct noise sources, so
    the estimator defends against both:

    * Scheduler/frequency drift over a multi-second run skews whole
      sides, so within a round the two servers are interleaved at
      *chunk* granularity — each chunk timed back-to-back on both,
      order alternating — and the round's figure is the **median** of
      the paired per-chunk ratios, which drift and outlier chunks
      cannot move.
    * Per-instance layout bias (one server's dicts/allocations landing
      a few percent slow for its whole lifetime) survives any amount
      of interleaving, so the experiment runs ``rounds`` independent
      fresh server pairs and the headline ``overhead_ratio`` is the
      **min** of the round medians: a bad draw inflates one round, not
      all of them, while a real regression inflates every round.

    Guarded at <= 1.05x by ``check_regression.py``.
    """
    from repro.api.session import Session

    query = zoo.E_T_QF
    domain = max(64, rows // 16)
    database = feed_database(rows, domain, rng)

    per_round = max(chunk, updates // max(1, rounds))
    totals = {True: 0.0, False: 0.0}
    round_medians: List[float] = []
    pairs = 0
    for _ in range(rounds):
        stream = delta_update_stream(per_round, domain, rng)
        servers: Dict[bool, Server] = {}
        for mode in (True, False):
            server = Server(Session(observe=mode))
            server.view("feed", query)
            server.session.ingest(database)  # preload, not timed
            servers[mode] = server
        # Warmup: first-touch allocator/cache effects hit neither side.
        for command in stream[: min(2000, len(stream))]:
            servers[True].apply(command)
            servers[False].apply(command)
        ratios: List[float] = []
        blocks = [stream[i : i + chunk] for i in range(0, len(stream), chunk)]
        try:
            for index, block in enumerate(blocks):
                order = (True, False) if index % 2 == 0 else (False, True)
                timed: Dict[bool, float] = {}
                for mode in order:
                    apply = servers[mode].apply

                    def work() -> None:
                        for command in block:
                            apply(command)

                    timed[mode] = _timed(work)
                totals[True] += timed[True]
                totals[False] += timed[False]
                ratios.append(timed[True] / timed[False])
        finally:
            for server in servers.values():
                server.close()
        pairs += len(ratios)
        round_medians.append(_median(ratios))
    return {
        "updates": per_round * rounds,
        "chunk": chunk,
        "rounds": rounds,
        "pairs": pairs,
        "round_medians": [round(value, 4) for value in round_medians],
        "observed_updates_per_s": round(per_round * rounds / totals[True]),
        "noop_updates_per_s": round(per_round * rounds / totals[False]),
        "observed_total_s": round(totals[True], 4),
        "noop_total_s": round(totals[False], 4),
        "overhead_ratio": round(min(round_medians), 4),
    }


# ---------------------------------------------------------------------------
# experiment 10: one parameterized view vs a registered view per binding
# ---------------------------------------------------------------------------


def _binding_update_stream(
    count: int, domain: int, rng: random.Random
) -> List[UpdateCommand]:
    """Inserts/deletes whose x values land inside the binding space."""
    commands: List[UpdateCommand] = []
    live: List[tuple] = []
    for step in range(count):
        if live and rng.random() < 0.4:
            commands.append(delete("E", live.pop(rng.randrange(len(live)))))
        else:
            row = (rng.randrange(domain * 4), rng.randrange(domain))
            live.append(row)
            commands.append(insert("E", row))
    return commands


def _quantile_ms(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return round(1000 * ordered[index], 4)


def bench_parameterized_views(
    rows: int,
    bindings: int,
    updates: int,
    lookups: int,
    sample_views: int,
    rng: random.Random,
) -> Dict[str, object]:
    """One view serving many bound readers vs a view per reader.

    Before parameterized views, a reader who wanted "my rows of the
    feed" registered their own copy of the view and filtered client
    side — every copy re-materialises the full result and pays the
    full update cost.  The new API keeps **one** view plus one binding
    index (O(|result|) total) and fans each update's delta out to the
    touched bindings in a single O(δ) pass.

    Memory and per-update cost of the per-binding baseline are
    measured on ``sample_views`` real engine copies and extrapolated
    linearly to ``bindings`` copies — building ten thousand engines
    just to weigh them would dominate the bench for no extra signal
    (the per-copy cost is flat by construction).

    The lookup half answers the serving question: ``cursor(x=c)``
    point-lookup latency percentiles on the threads backend while a
    writer streams updates through the same shard locks.
    """
    import tracemalloc

    from repro.api.session import Session
    from repro.interface import make_engine

    query = zoo.E_T_QF
    domain = max(64, rows // 16)
    database = feed_database(rows, domain, rng)
    binding_values = [rng.randrange(domain * 4) for _ in range(bindings)]

    # -- side A: one view + one binding index + bound subscriptions ----
    sink: List[object] = []

    def build_one_view():
        session = Session(observe=False)
        view = session.view("feed", query, access={"x"})
        session.ingest(database)
        subs = [
            view.subscribe(callback=sink.append, x=value)
            for value in binding_values
        ]
        return session, view, subs

    gc.collect()
    tracemalloc.start()
    session, view, subs = build_one_view()
    gc.collect()
    one_view_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    stream = _binding_update_stream(updates, domain, rng)

    def run_one_view() -> None:
        for command in stream:
            session.apply(command)

    one_view_s = _timed(run_one_view)
    deltas_delivered = len(sink)

    # fan-out flatness: the same stream with only 4 bound subscribers —
    # per-update cost must not scale with the subscriber count
    few_session = Session(observe=False)
    few_view = few_session.view("feed", query, access={"x"})
    few_session.ingest(database)
    few_sink: List[object] = []
    for value in binding_values[:4]:
        few_view.subscribe(callback=few_sink.append, x=value)
    few_stream = _binding_update_stream(updates, domain, random.Random(23))

    def run_few() -> None:
        for command in few_stream:
            few_session.apply(command)

    few_s = _timed(run_few)
    fanout_flatness = round(one_view_s / max(few_s, 1e-9), 3)

    # -- side B: a registered view per binding (sampled + extrapolated)
    def build_copies():
        copies = []
        for _ in range(sample_views):
            engine = make_engine("qhierarchical", query)
            for relation in database.relations():
                for row in relation.rows:
                    engine.insert(relation.name, row)
            copies.append(engine)
        return copies

    gc.collect()
    tracemalloc.start()
    copies = build_copies()
    gc.collect()
    copies_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    bytes_per_view = copies_bytes / sample_views
    per_binding_bytes = bytes_per_view * bindings
    memory_ratio = round(one_view_bytes / per_binding_bytes, 6)

    # per-update: every registered copy applies every update
    copy_sample = stream[: max(50, updates // 20)]

    def run_copies() -> None:
        for command in copy_sample:
            for engine in copies:
                engine.apply_with_delta(command)

    copies_s = _timed(run_copies)
    per_binding_update_s = (
        copies_s / (len(copy_sample) * sample_views) * bindings
    )
    one_view_update_s = one_view_s / len(stream)
    update_speedup = round(per_binding_update_s / one_view_update_s, 1)

    # -- point lookups under a concurrent writer ------------------------
    server = session.serve(backend="threads", shards=2)
    stop = threading.Event()
    lookup_stream = _binding_update_stream(
        updates, domain, random.Random(41)
    )

    def writer() -> None:
        while not stop.is_set():
            for command in lookup_stream:
                if stop.is_set():
                    return
                server.apply(command)

    thread = threading.Thread(target=writer)
    thread.start()
    latencies: List[float] = []
    try:
        for index in range(lookups):
            value = binding_values[index % len(binding_values)]
            start = time.perf_counter()
            handle = server.open_cursor("feed", x=value)
            server.fetch(handle, 1_000_000)
            server.close_cursor(handle)
            latencies.append(time.perf_counter() - start)
    finally:
        stop.set()
        thread.join()

    # quiesced correctness: the bound read equals the client-side filter
    value = binding_values[0]
    handle = server.open_cursor("feed", x=value)
    bound_rows = set(server.fetch(handle, 1_000_000))
    expected = {
        row for row in server.result_set("feed") if row[0] == value
    }
    bound_matches = bound_rows == expected

    return {
        "bindings": bindings,
        "result_size": view.count(),
        "updates": len(stream),
        "deltas_delivered": deltas_delivered,
        "sampled_views": sample_views,
        "one_view_bytes": int(one_view_bytes),
        "per_binding_bytes_per_view": int(bytes_per_view),
        "per_binding_bytes_extrapolated": int(per_binding_bytes),
        "memory_ratio": memory_ratio,
        "one_view_updates_per_s": round(1 / one_view_update_s),
        "per_binding_updates_per_s_extrapolated": round(
            1 / per_binding_update_s
        ),
        "update_speedup": update_speedup,
        "fanout_flatness": fanout_flatness,
        "lookups": len(latencies),
        "lookup_p50_ms": _quantile_ms(latencies, 0.50),
        "lookup_p95_ms": _quantile_ms(latencies, 0.95),
        "lookup_p99_ms": _quantile_ms(latencies, 0.99),
        "bound_reads_match_filter": bound_matches,
    }


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def render(report: Dict[str, object]) -> str:
    lines = ["serving layer (cursors / subscriptions / dispatcher)", ""]
    cursor = report["cursor_resume"]
    lines.append(
        f"cursor paging over {cursor['result_size']} tuples "
        f"(pages of {cursor['page_size']}):"
    )
    lines.append(
        f"  cursor   first {cursor['cursor_page_ms_first']:.3f}ms/page, "
        f"last {cursor['cursor_page_ms_last']:.3f}ms/page "
        f"(ratio {cursor['cursor_last_over_first']:.2f} — flat = O(1) resume)"
    )
    lines.append(
        f"  naive    start {cursor['naive_page_ms_at_start']:.3f}ms, "
        f"end {cursor['naive_page_ms_at_end']:.3f}ms "
        f"(ratio {cursor['naive_end_over_start']:.0f} — re-enumeration)"
    )
    sub = report["subscription_delta"]
    lines.append("")
    lines.append(
        f"subscription deltas over a {sub['result_size']}-tuple view:"
    )
    lines.append(
        f"  O(δ) capture     {sub['delta_updates_per_s']:>10} updates/s"
    )
    lines.append(
        f"  rematerialize    {sub['rematerialize_updates_per_s']:>10} updates/s"
    )
    lines.append(f"  speedup          {sub['speedup']:>10.2f}x")
    multi = report["multi_client"]
    lines.append("")
    lines.append(
        f"dispatcher with {multi['readers']} readers + "
        f"{multi['writers']} writers:"
    )
    lines.append(f"  writes/s         {multi['writes_per_s']:>10}")
    lines.append(f"  tuples read/s    {multi['tuples_read_per_s']:>10}")
    lines.append(
        f"  invalidations    {multi['cursor_invalidations']:>10} "
        "(each reported precisely, reader reopened)"
    )
    lines.append(
        f"  subscription replay == result_set: "
        f"{multi['subscription_replay_ok']}"
    )
    sharded = report["sharded_writes"]
    lines.append("")
    lines.append(
        f"sharded write path ({sharded['writers']} writers over disjoint "
        "views):"
    )
    for point in sharded["curve"]:
        lines.append(
            f"  {point['shards']} shard(s)   {point['writes_per_s']:>10} "
            f"writes/s  ({point['speedup_vs_1shard']:.2f}x vs 1 shard)"
        )
    lines.append(
        f"  replay byte-identical: {sharded['subscription_replay_ok']}"
    )
    multiproc = report["multiprocess_shards"]
    lines.append("")
    lines.append(
        f"multiprocess shard cluster ({multiproc['writers']} writers over "
        "disjoint views, 1 process per shard):"
    )
    for point in multiproc["curve"]:
        lines.append(
            f"  {point['workers']} worker(s)  {point['writes_per_s']:>10} "
            f"writes/s  ({point['speedup_vs_1worker']:.2f}x vs 1 worker)"
        )
    lines.append(
        f"  at {multiproc['max_workers']} workers: "
        f"{multiproc['max_workers_writes_per_s']} writes/s = "
        f"{multiproc['speedup_vs_inprocess_at_max_workers']:.2f}x the "
        f"best in-process sharded point "
        f"({multiproc['inprocess_best_writes_per_s']} writes/s); "
        f"best point {multiproc['best_writes_per_s']} writes/s at "
        f"{multiproc['best_workers']} workers "
        f"({multiproc['speedup_vs_inprocess_best']:.2f}x)"
    )
    lines.append(
        f"  replay byte-identical across processes: "
        f"{multiproc['subscription_replay_ok']}"
    )
    asyncd = report["async_dispatch"]
    lines.append("")
    lines.append(
        f"async dispatch ({asyncd['subscribers']} slow subscribers, "
        f"{asyncd['callback_ms']}ms callback, "
        f"{asyncd['dispatch_workers']} workers):"
    )
    lines.append(
        f"  sync writer      {asyncd['sync']['writer_updates_per_s']:>10} "
        "updates/s (callbacks inline)"
    )
    lines.append(
        f"  async writer     {asyncd['async']['writer_updates_per_s']:>10} "
        f"updates/s ({asyncd['writer_speedup']:.2f}x — pool absorbs the "
        "fan-out)"
    )
    lines.append(
        f"  replay byte-identical: {asyncd['subscription_replay_ok']}"
    )
    failover = report["failover"]
    lines.append("")
    lines.append(
        f"supervised failover (SIGKILL one of {failover['workers']} workers "
        f"mid-stream, {failover['writes']} writes):"
    )
    lines.append(
        f"  writes/s before  {failover['writes_per_s_before_kill']:>10}"
    )
    lines.append(
        f"  writes/s during  {failover['writes_per_s_during_recovery']:>10} "
        "(includes the bounded stall)"
    )
    lines.append(
        f"  writes/s after   {failover['writes_per_s_after_recovery']:>10}"
    )
    lines.append(
        f"  recovery         {failover['recovery_seconds']:>10.3f}s "
        f"(longest single apply {failover['longest_apply_s']:.3f}s; "
        f"views replayed: {', '.join(failover['recovered_views'])})"
    )
    lines.append(
        f"  replay byte-identical vs threads oracle: "
        f"{failover['replay_byte_identical']}"
    )
    lines.append(
        f"  transport ({failover['mux_threads']} point readers behind a "
        f"bulk scan): serial {failover['serial']['requests_per_s']} req/s, "
        f"mux {failover['mux']['requests_per_s']} req/s "
        f"({failover['mux_speedup']:.2f}x, high-water "
        f"{failover['mux']['max_in_flight_seen']} in flight)"
    )
    snap = report["snapshot_reads"]
    lines.append("")
    lines.append(
        f"snapshot-consistent cross-shard reads ({snap['views']} views x "
        f"{snap['rows_per_view']} rows over {snap['workers']} workers):"
    )
    lines.append(
        f"  plain reads      {snap['plain_read_ms']:>10.3f}ms per sweep"
    )
    lines.append(
        f"  snapshot()       {snap['snapshot_ms']:>10.3f}ms per cut "
        f"({snap['overhead_vs_plain']:.2f}x — the double-collect's price)"
    )
    lines.append(
        f"  under writer     {snap['writer_snapshots']} cuts vs "
        f"{snap['writer_inserts']} concurrent inserts: "
        f"mean {snap['mean_pin_attempts']:.2f} pins "
        f"(max {snap['max_pin_attempts']}, "
        f"{snap['total_rereads']} re-reads), "
        f"all converged: {snap['all_converged']}"
    )
    obs = report["observability_overhead"]
    lines.append("")
    lines.append(
        f"observability overhead ({obs['updates']} updates, "
        f"{obs['rounds']} fresh server pairs, median over "
        f"{obs['pairs']} interleaved chunks, min across pairs):"
    )
    lines.append(
        f"  observe=True     {obs['observed_updates_per_s']:>10} updates/s"
    )
    lines.append(
        f"  observe=False    {obs['noop_updates_per_s']:>10} updates/s "
        f"({obs['overhead_ratio']:.3f}x — guarded at 1.05x)"
    )
    param = report["parameterized_views"]
    lines.append("")
    lines.append(
        f"parameterized views ({param['bindings']} distinct bindings over "
        f"a {param['result_size']}-tuple view; per-binding side sampled "
        f"on {param['sampled_views']} real copies, extrapolated):"
    )
    lines.append(
        f"  one view + index {param['one_view_bytes']:>12} bytes "
        f"({param['memory_ratio']*100:.3f}% of a view per binding — "
        "guarded at 5%)"
    )
    lines.append(
        f"  view per binding {param['per_binding_bytes_extrapolated']:>12} "
        f"bytes ({param['per_binding_bytes_per_view']} each)"
    )
    lines.append(
        f"  updates/s        {param['one_view_updates_per_s']:>12} one "
        f"view vs {param['per_binding_updates_per_s_extrapolated']} "
        f"per-binding ({param['update_speedup']:.0f}x)"
    )
    lines.append(
        f"  fan-out flatness {param['fanout_flatness']:>12.3f}x "
        f"({param['bindings']} bound subscribers vs 4 — one O(δ) pass)"
    )
    lines.append(
        f"  bound lookups    p50 {param['lookup_p50_ms']:.3f}ms  "
        f"p95 {param['lookup_p95_ms']:.3f}ms  "
        f"p99 {param['lookup_p99_ms']:.3f}ms "
        f"({param['lookups']} cursor(x=c) reads under a writer)"
    )
    lines.append(
        f"  bound == filtered unbound: {param['bound_reads_match_filter']}"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes: smaller view, fewer updates and clients",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"JSON output path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--readers",
        type=int,
        default=None,
        help="multi_client reader threads (default: 2 quick, 4 full)",
    )
    parser.add_argument(
        "--writers",
        type=int,
        default=None,
        help="writer threads for multi_client AND sharded_writes "
        "(default: 2 quick, 4 full)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="max shard count for the sharded_writes curve, also used "
        "by multi_client (default: 4; the curve runs 1..max in "
        "doublings)",
    )
    parser.add_argument(
        "--dispatch-workers",
        type=int,
        default=4,
        help="worker-pool size for the async_dispatch experiment "
        "(default 4)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        rows, page, updates, writer_ops = 20_000, 200, 2_000, 1_200
        readers = 2 if args.readers is None else args.readers
        writers = 2 if args.writers is None else args.writers
        async_updates, subscribers, callback_ms = 150, 4, 0.1
    else:
        rows, page, updates, writer_ops = 120_000, 500, 10_000, 8_000
        readers = 4 if args.readers is None else args.readers
        writers = 4 if args.writers is None else args.writers
        async_updates, subscribers, callback_ms = 1_500, 8, 0.1
    max_shards = 4 if args.shards is None else args.shards
    shard_counts = [1]
    while shard_counts[-1] * 2 <= max_shards:
        shard_counts.append(shard_counts[-1] * 2)

    rng = random.Random(17)
    try:
        cursor_resume = bench_cursor_resume(rows, page, rng)
        subscription_delta = bench_subscription_delta(rows, updates, rng)
        multi_client = bench_multi_client(
            rows // 2,
            writer_ops // 2,
            readers,
            max(1, writers // 2),
            page,
            rng,
            shards=max_shards,
        )
        sharded_writes = bench_sharded_writes(writer_ops, writers, shard_counts)
        # The cluster sustains several times the in-process write rate,
        # so the same op count gives it a sub-second window — too noisy
        # on a busy host.  2x longer streams (same generator, same
        # shape) plus best-of-2 repeats keep the measurement honest.
        multiprocess_shards = bench_multiprocess_shards(
            writer_ops * 2,
            writers,
            shard_counts,
            max(
                point["writes_per_s"] for point in sharded_writes["curve"]
            ),
        )
        async_dispatch = bench_async_dispatch(
            async_updates, subscribers, callback_ms, args.dispatch_workers
        )
        failover = bench_failover(
            writer_ops if args.quick else writer_ops * 2,
            mux_threads=8,
            mux_requests=40 if args.quick else 250,
        )
        snapshot_reads = bench_snapshot_reads(
            rows_per_view=2_000 if args.quick else 8_000,
            reads=15 if args.quick else 40,
            writer_snapshots=10 if args.quick else 25,
        )
        # Short streams drown the ~1% signal in scheduler noise: pin a
        # floor on the stream length so each round's median has enough
        # chunks and the min-of-rounds has enough fresh instances.
        observability_overhead = bench_observability_overhead(
            rows=rows // 4,
            updates=max(updates, 36_000 if args.quick else 60_000),
            chunk=2000,
            rounds=3,
            rng=rng,
        )
        parameterized_views = bench_parameterized_views(
            rows=rows // 2,
            bindings=2_000 if args.quick else 10_000,
            updates=updates,
            lookups=300 if args.quick else 1_500,
            sample_views=4 if args.quick else 8,
            rng=rng,
        )
    except KeyboardInterrupt:
        # The cluster context managers already unwound: every shard
        # worker got SIGTERM (and watches the life pipe besides), so an
        # aborted run leaves no orphan processes.
        print(
            "\ninterrupted — shard worker processes terminated cleanly",
            file=sys.stderr,
        )
        return 130

    quick_note = (
        " (quick smoke sizes; authoritative numbers come from a full run)"
        if args.quick
        else ""
    )
    targets = {
        "cursor_resume_o1": {
            "metric": "cursor_last_over_first",
            "value": cursor_resume["cursor_last_over_first"],
            "met": cursor_resume["cursor_last_over_first"] <= 3.0,
            "note": "per-page cost of the last pages over the first — "
            "flat means fetches resume instead of re-enumerating"
            + quick_note,
        },
        "delta_beats_rematerialize_10x": {
            "metric": "subscription_delta.speedup",
            "value": subscription_delta["speedup"],
            "met": subscription_delta["speedup"] >= 10.0,
            "note": "O(δ) touched-path capture vs full result diff per "
            "update" + quick_note,
        },
        "subscription_replay_exact": {
            "metric": "multi_client.subscription_replay_ok",
            "value": multi_client["subscription_replay_ok"],
            "met": bool(multi_client["subscription_replay_ok"]),
            "note": "replaying the delta log reproduces result_set() "
            "after the full multi-client run",
        },
        "sharded_writes_scale_1_5x": {
            "metric": "sharded_writes.speedup_at_max_shards",
            "value": sharded_writes["speedup_at_max_shards"],
            "met": sharded_writes["speedup_at_max_shards"] >= 1.5
            and bool(sharded_writes["subscription_replay_ok"]),
            "note": "aggregate write throughput of concurrent writers "
            "over disjoint views at the max shard count vs the "
            "single-writer lock, replay still byte-identical"
            + quick_note,
        },
        "multiprocess_beats_threads_1_5x": {
            "metric": "multiprocess_shards.speedup_vs_inprocess_at_max_workers",
            "value": multiprocess_shards[
                "speedup_vs_inprocess_at_max_workers"
            ],
            "met": multiprocess_shards["speedup_vs_inprocess_at_max_workers"]
            >= 1.5
            and bool(multiprocess_shards["subscription_replay_ok"]),
            "note": "aggregate write throughput of the process-per-shard "
            "cluster at its best worker count vs the best in-process "
            "sharded point — the GIL-free scaling the ROADMAP headroom "
            "names, replay still byte-identical across the process "
            "boundary" + quick_note,
        },
        "async_dispatch_offload_1_5x": {
            "metric": "async_dispatch.writer_speedup",
            "value": async_dispatch["writer_speedup"],
            "met": async_dispatch["writer_speedup"] >= 1.5
            and bool(async_dispatch["subscription_replay_ok"]),
            "note": "writer-side update throughput with slow consumers "
            "on the worker pool vs inline synchronous fan-out, replay "
            "still byte-identical" + quick_note,
        },
        "failover_recovery_bounded_5s": {
            "metric": "failover.recovery_seconds",
            "value": failover["recovery_seconds"],
            "met": 0 <= failover["recovery_seconds"] <= 5.0
            and bool(failover["replay_byte_identical"]),
            "note": "kill -9 of a shard worker mid-write-stream under "
            "supervision: respawn + journal replay completes in bounded "
            "time, the stream finishes without a client-visible error, "
            "and the result digest matches the threads-backend oracle",
        },
        "mux_pipelines_8_in_flight": {
            "metric": "failover.mux.max_in_flight_seen",
            "value": failover["mux"]["max_in_flight_seen"],
            "met": failover["mux"]["max_in_flight_seen"] >= 8
            and failover["mux_speedup"] > 1.0,
            "note": "the multiplexed channel sustains >= 8 concurrent "
            "in-flight requests (measured high-water mark) and beats "
            "the serial one-in-flight channel on the same concurrent "
            "read workload" + quick_note,
        },
        "snapshot_overhead_1_5x": {
            "metric": "snapshot_reads.overhead_vs_plain",
            "value": snapshot_reads["overhead_vs_plain"],
            "met": snapshot_reads["overhead_vs_plain"] <= 1.5,
            "note": "a quiescent cross-shard snapshot() costs at most "
            "1.5x the same data over plain result_set round trips — "
            "the read-all locks and epoch probes stay cheap relative "
            "to moving the rows" + quick_note,
        },
        "observability_overhead_1_05x": {
            "metric": "observability_overhead.overhead_ratio",
            "value": observability_overhead["overhead_ratio"],
            "met": observability_overhead["overhead_ratio"] <= 1.05,
            "note": "the metrics registry, engine counters and "
            "guarantee probes cost at most 5% on the single-writer "
            "update path vs the observe=False no-op fast path"
            + quick_note,
        },
        "parameterized_memory_5pct": {
            "metric": "parameterized_views.memory_ratio",
            "value": parameterized_views["memory_ratio"],
            "met": parameterized_views["memory_ratio"] <= 0.05
            and bool(parameterized_views["bound_reads_match_filter"]),
            "note": "one parameterized view plus its binding index holds "
            "at most 5% of the memory of registering a view copy per "
            "binding, and the bound read stays byte-identical to the "
            "filtered unbound read" + quick_note,
        },
        "parameterized_fanout_flat": {
            "metric": "parameterized_views.fanout_flatness",
            "value": parameterized_views["fanout_flatness"],
            "met": parameterized_views["fanout_flatness"] <= 5.0,
            "note": "per-update cost with thousands of bound subscribers "
            "over one with 4 — the single O(δ) fan-out pass must not "
            "scale with the subscriber count" + quick_note,
        },
        "snapshot_pins_converge": {
            "metric": "snapshot_reads.max_pin_attempts",
            "value": snapshot_reads["max_pin_attempts"],
            "met": bool(snapshot_reads["all_converged"])
            and snapshot_reads["max_pin_attempts"] <= 8,
            "note": "every snapshot pinned under the concurrent writer "
            "stream converged within the pin budget (the escalated "
            "final attempt holds the client write gate) instead of "
            "raising SnapshotInvalidatedError",
        },
    }

    report = {
        "meta": {
            "experiment": "serving",
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "unix_time": int(time.time()),
            "readers": readers,
            "writers": writers,
            "max_shards": max_shards,
            "dispatch_workers": args.dispatch_workers,
        },
        "cursor_resume": cursor_resume,
        "subscription_delta": subscription_delta,
        "multi_client": multi_client,
        "sharded_writes": sharded_writes,
        "multiprocess_shards": multiprocess_shards,
        "async_dispatch": async_dispatch,
        "failover": failover,
        "snapshot_reads": snapshot_reads,
        "observability_overhead": observability_overhead,
        "parameterized_views": parameterized_views,
        "targets": targets,
    }

    print(render(report))
    print()
    for name, target in targets.items():
        state = "MET" if target["met"] else "not met"
        print(f"target {name}: {target['value']} ({target['metric']}) — {state}")

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Serving-layer benchmark: cursors, delta subscriptions, dispatcher.

Three experiments over the new ``repro.serve`` subsystem:

* ``cursor_resume`` — a cursor pages through a large view result;
  per-page cost must be flat from the first page to the last (resume
  is O(1) per tuple: the Algorithm 1 walk is suspended, never
  restarted).  The contrast client re-enumerates from scratch and
  skips to the offset per page — its per-page cost grows linearly,
  which is exactly what resumable cursors remove.

* ``subscription_delta`` — update throughput with a live subscriber:
  the engines' O(δ) ``apply_with_delta`` (touched-path derivation)
  versus the naive rematerialise-and-diff baseline (the
  ``DynamicEngine`` default), on a workload whose per-update δ is tiny
  while the materialised result is large.

* ``multi_client`` — reader and writer threads hammer one
  :class:`repro.serve.Server`: readers page cursors (reopening on
  invalidation) and poll counts, writers stream effective updates
  through the reader–writer lock.  Reported as sustained reads/sec and
  writes/sec; at the end the subscription log must replay to exactly
  the final ``result_set()``.

Output: a table on stdout plus machine-readable JSON (default
``BENCH_serving.json`` at the repository root).  ``--quick`` shrinks
sizes for the CI smoke run.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import pathlib
import platform
import random
import sys
import threading
import time
from itertools import islice
from typing import Dict, List, Optional, Sequence

from repro.core.engine import QHierarchicalEngine
from repro.cq import zoo
from repro.errors import CursorInvalidatedError
from repro.interface import DynamicEngine
from repro.serve import Server
from repro.storage.database import Database
from repro.storage.updates import UpdateCommand, delete, insert

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serving.json"


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


# ---------------------------------------------------------------------------
# workload: E_T_QF (V(x, y) :- E(x, y) ∧ T(y)) with a large materialisation
# ---------------------------------------------------------------------------


def feed_database(rows: int, domain: int, rng: random.Random) -> Database:
    query = zoo.E_T_QF
    database = Database.empty_like(query)
    for value in range(domain):
        database.insert("T", (value,))
    added = 0
    while added < rows:
        if database.insert(
            "E", (rng.randrange(domain * 4), rng.randrange(domain))
        ):
            added += 1
    return database


# ---------------------------------------------------------------------------
# experiment 1: cursor paging is O(1) per tuple, independent of position
# ---------------------------------------------------------------------------


def bench_cursor_resume(
    rows: int, page: int, rng: random.Random
) -> Dict[str, object]:
    server = Server()
    view = server.view("feed", zoo.E_T_QF)
    database = feed_database(rows, max(64, rows // 16), rng)
    for relation in database.relations():
        for row in relation.rows:
            server.insert(relation.name, row)
    total = server.count("feed")
    pages = total // page

    cursor = view.cursor()
    page_times: List[float] = []
    for _ in range(pages):
        page_times.append(_timed(lambda: cursor.fetch(page)))
    cursor.close()

    head = page_times[: max(1, pages // 10)]
    tail = page_times[-max(1, pages // 10):]
    first_ms = 1000 * sum(head) / len(head)
    last_ms = 1000 * sum(tail) / len(tail)

    # Contrast: a client without cursors re-enumerates and skips to the
    # offset for every page (sampled — the full quadratic sweep is the
    # point, not something to wait for).
    sample_offsets = [0, (pages // 2) * page, (pages - 1) * page]
    naive_ms = []
    engine = view.engine
    for offset in sample_offsets:
        naive_ms.append(
            1000
            * _timed(
                lambda off=offset: list(
                    islice(engine.enumerate(), off, off + page)
                )
            )
        )

    return {
        "result_size": total,
        "page_size": page,
        "pages": pages,
        "cursor_page_ms_first": round(first_ms, 4),
        "cursor_page_ms_last": round(last_ms, 4),
        "cursor_last_over_first": round(last_ms / first_ms, 3),
        "naive_page_ms_at_start": round(naive_ms[0], 4),
        "naive_page_ms_at_middle": round(naive_ms[1], 4),
        "naive_page_ms_at_end": round(naive_ms[2], 4),
        "naive_end_over_start": round(naive_ms[2] / max(naive_ms[0], 1e-9), 1),
    }


# ---------------------------------------------------------------------------
# experiment 2: O(δ) subscription deltas vs rematerialise-and-diff
# ---------------------------------------------------------------------------


def delta_update_stream(
    count: int, domain: int, rng: random.Random
) -> List[UpdateCommand]:
    """Effective inserts/deletes with per-update δ of 0 or 1."""
    commands: List[UpdateCommand] = []
    live: List[tuple] = []
    for step in range(count):
        if live and rng.random() < 0.4:
            row = live.pop(rng.randrange(len(live)))
            commands.append(delete("E", row))
        else:
            row = (10_000_000 + step, rng.randrange(domain))
            live.append(row)
            commands.append(insert("E", row))
    return commands


def bench_subscription_delta(
    rows: int, updates: int, rng: random.Random
) -> Dict[str, object]:
    query = zoo.E_T_QF
    domain = max(64, rows // 16)
    database = feed_database(rows, domain, rng)

    fast = QHierarchicalEngine(query, database)
    slow = QHierarchicalEngine(query, database)
    stream = delta_update_stream(updates, domain, rng)
    # The naive side pays O(|result|) per update; sample it.
    slow_sample = stream[: max(10, updates // 100)]

    def run_fast() -> None:
        for command in stream:
            fast.apply_with_delta(command)

    def run_slow() -> None:
        for command in slow_sample:
            DynamicEngine.apply_with_delta(slow, command)

    fast_s = _timed(run_fast)
    slow_s = _timed(run_slow)
    fast_ups = len(stream) / fast_s
    slow_ups = len(slow_sample) / slow_s
    return {
        "result_size": slow.count(),
        "updates": len(stream),
        "delta_updates_per_s": round(fast_ups),
        "rematerialize_updates_per_s": round(slow_ups),
        "speedup": round(fast_ups / slow_ups, 2),
    }


# ---------------------------------------------------------------------------
# experiment 3: multi-client dispatcher throughput
# ---------------------------------------------------------------------------


def bench_multi_client(
    rows: int,
    writer_ops: int,
    readers: int,
    writers: int,
    page: int,
    rng: random.Random,
) -> Dict[str, object]:
    server = Server()
    server.view("feed", zoo.E_T_QF)
    domain = max(64, rows // 16)
    database = feed_database(rows, domain, rng)
    commands = [
        insert(relation.name, row)
        for relation in database.relations()
        for row in relation.rows
    ]
    server.batch(commands)
    subscription = server.subscribe("feed")
    baseline = set(server.session["feed"].result_set())

    streams = [
        delta_update_stream(writer_ops // writers, domain, random.Random(i))
        for i in range(writers)
    ]
    # Writers share one relation namespace; offset the fresh keys so the
    # streams stay effective against each other.
    streams = [
        [
            UpdateCommand(
                c.op, c.relation, (c.row[0] + 1_000_000 * i, *c.row[1:])
            )
            for c in stream
        ]
        for i, stream in enumerate(streams)
    ]

    stop = threading.Event()
    fetches = [0] * readers
    counts = [0] * readers
    invalidated = [0] * readers
    failures: List[BaseException] = []

    def writer(stream: Sequence[UpdateCommand]) -> None:
        try:
            for command in stream:
                server.apply(command)
        except BaseException as error:  # pragma: no cover
            failures.append(error)
            raise

    def reader(index: int) -> None:
        rng_local = random.Random(1000 + index)
        try:
            while not stop.is_set():
                cursor = server.open_cursor("feed")
                for _ in range(rng_local.randint(1, 30)):
                    try:
                        if not server.fetch(cursor, page):
                            break
                    except CursorInvalidatedError:
                        invalidated[index] += 1
                        break
                    fetches[index] += 1
                server.close_cursor(cursor)
                server.count("feed")
                counts[index] += 1
        except BaseException as error:  # pragma: no cover
            failures.append(error)
            raise

    reader_threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(readers)
    ]
    writer_threads = [
        threading.Thread(target=writer, args=(stream,)) for stream in streams
    ]
    start = time.perf_counter()
    for thread in reader_threads + writer_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    write_elapsed = time.perf_counter() - start
    stop.set()
    for thread in reader_threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]

    mirror = set(baseline)
    for delta_item in server.poll(subscription):
        mirror |= set(delta_item.added)
        mirror -= set(delta_item.removed)
    expected = server.session["feed"].result_set()
    assert mirror == expected, "subscription replay diverged from the view"

    total_writes = sum(len(stream) for stream in streams)
    total_fetches = sum(fetches)
    return {
        "readers": readers,
        "writers": writers,
        "result_size": len(expected),
        "writes": total_writes,
        "writes_per_s": round(total_writes / write_elapsed),
        "fetch_pages": total_fetches,
        "tuples_read_per_s": round(total_fetches * page / elapsed),
        "count_queries": sum(counts),
        "cursor_invalidations": sum(invalidated),
        "subscription_replay_ok": True,
        "elapsed_s": round(elapsed, 2),
    }


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def render(report: Dict[str, object]) -> str:
    lines = ["serving layer (cursors / subscriptions / dispatcher)", ""]
    cursor = report["cursor_resume"]
    lines.append(
        f"cursor paging over {cursor['result_size']} tuples "
        f"(pages of {cursor['page_size']}):"
    )
    lines.append(
        f"  cursor   first {cursor['cursor_page_ms_first']:.3f}ms/page, "
        f"last {cursor['cursor_page_ms_last']:.3f}ms/page "
        f"(ratio {cursor['cursor_last_over_first']:.2f} — flat = O(1) resume)"
    )
    lines.append(
        f"  naive    start {cursor['naive_page_ms_at_start']:.3f}ms, "
        f"end {cursor['naive_page_ms_at_end']:.3f}ms "
        f"(ratio {cursor['naive_end_over_start']:.0f} — re-enumeration)"
    )
    sub = report["subscription_delta"]
    lines.append("")
    lines.append(
        f"subscription deltas over a {sub['result_size']}-tuple view:"
    )
    lines.append(
        f"  O(δ) capture     {sub['delta_updates_per_s']:>10} updates/s"
    )
    lines.append(
        f"  rematerialize    {sub['rematerialize_updates_per_s']:>10} updates/s"
    )
    lines.append(f"  speedup          {sub['speedup']:>10.2f}x")
    multi = report["multi_client"]
    lines.append("")
    lines.append(
        f"dispatcher with {multi['readers']} readers + "
        f"{multi['writers']} writers:"
    )
    lines.append(f"  writes/s         {multi['writes_per_s']:>10}")
    lines.append(f"  tuples read/s    {multi['tuples_read_per_s']:>10}")
    lines.append(
        f"  invalidations    {multi['cursor_invalidations']:>10} "
        "(each reported precisely, reader reopened)"
    )
    lines.append(
        f"  subscription replay == result_set: "
        f"{multi['subscription_replay_ok']}"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes: smaller view, fewer updates and clients",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"JSON output path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    if args.quick:
        rows, page, updates, writer_ops, readers, writers = (
            20_000, 200, 2_000, 600, 2, 1,
        )
    else:
        rows, page, updates, writer_ops, readers, writers = (
            120_000, 500, 10_000, 4_000, 4, 2,
        )

    rng = random.Random(17)
    cursor_resume = bench_cursor_resume(rows, page, rng)
    subscription_delta = bench_subscription_delta(rows, updates, rng)
    multi_client = bench_multi_client(
        rows // 2, writer_ops, readers, writers, page, rng
    )

    quick_note = (
        " (quick smoke sizes; authoritative numbers come from a full run)"
        if args.quick
        else ""
    )
    targets = {
        "cursor_resume_o1": {
            "metric": "cursor_last_over_first",
            "value": cursor_resume["cursor_last_over_first"],
            "met": cursor_resume["cursor_last_over_first"] <= 3.0,
            "note": "per-page cost of the last pages over the first — "
            "flat means fetches resume instead of re-enumerating"
            + quick_note,
        },
        "delta_beats_rematerialize_10x": {
            "metric": "subscription_delta.speedup",
            "value": subscription_delta["speedup"],
            "met": subscription_delta["speedup"] >= 10.0,
            "note": "O(δ) touched-path capture vs full result diff per "
            "update" + quick_note,
        },
        "subscription_replay_exact": {
            "metric": "multi_client.subscription_replay_ok",
            "value": multi_client["subscription_replay_ok"],
            "met": bool(multi_client["subscription_replay_ok"]),
            "note": "replaying the delta log reproduces result_set() "
            "after the full multi-client run",
        },
    }

    report = {
        "meta": {
            "experiment": "serving",
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "unix_time": int(time.time()),
        },
        "cursor_resume": cursor_resume,
        "subscription_delta": subscription_delta,
        "multi_client": multi_client,
        "targets": targets,
    }

    print(render(report))
    print()
    for name, target in targets.items():
        state = "MET" if target["met"] else "not met"
        print(f"target {name}: {target['value']} ({target['metric']}) — {state}")

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""THM33 — Theorem 3.3 / Lemma 5.4: OMv through dynamic enumeration.

Paper claim: a dynamic enumeration algorithm for the self-join-free,
non-q-hierarchical ``ϕ_E-T`` with O(n^{1-ε}) update time and delay
would solve OMv in O(n^{3-ε}) — believed impossible.  The reduction is
run *for real* here with the baselines inside: answers are bit-exact
against the direct solver, and the measured per-OMv-round cost of
every available engine grows super-linearly in n (exponent > 1), i.e.
nothing we can build sneaks under the conjectured barrier.
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import growth_exponent
from repro.cq import zoo
from repro.ivm import DeltaIVMEngine, RecomputeEngine
from repro.lowerbounds.omv import solve_omv_naive, solve_omv_numpy
from repro.lowerbounds.reductions import OMvEnumerationReduction
from repro.workloads.matrices import random_omv_instance

from _common import emit, reset, scaled

SIZES = scaled([8, 12, 18, 27])


def test_thm33_omv_via_enumeration(benchmark):
    reset("THM33")
    rows = []
    per_round = {"delta_ivm": [], "recompute": []}
    for n in SIZES:
        rng = random.Random(n)
        instance = random_omv_instance(rng, n=n)
        expected = solve_omv_naive(instance)

        timings = {}
        for name, engine_cls in [
            ("delta_ivm", DeltaIVMEngine),
            ("recompute", RecomputeEngine),
        ]:
            best = float("inf")
            for _ in range(2):  # best-of-2 damps scheduler noise
                reduction = OMvEnumerationReduction(zoo.E_T, engine_cls)
                start = time.perf_counter()
                got = reduction.solve(instance)
                elapsed = time.perf_counter() - start
                assert got == expected  # bit-exact reduction
                best = min(best, elapsed)
            timings[name] = best
            per_round[name].append(best / n)

        start = time.perf_counter()
        solve_omv_numpy(instance)
        direct = time.perf_counter() - start

        rows.append(
            [
                n,
                format_time(timings["delta_ivm"] / n),
                format_time(timings["recompute"] / n),
                format_time(direct / n),
            ]
        )

    emit(
        "THM33",
        format_table(
            ["n", "delta_ivm / round", "recompute / round", "numpy direct / round"],
            rows,
            title="THM33: OMv solved through dynamic enumeration of ϕ_E-T",
        ),
    )

    for name, series in per_round.items():
        exponent = growth_exponent(SIZES, series)
        emit("THM33", f"per-round growth exponent [{name}]: {exponent:+.2f}")
        # The conjecture forbids O(n^{1-ε}) rounds; our engines comply
        # (threshold leaves headroom for timer noise at small n).
        assert exponent > 0.6, name

    rng = random.Random(0)
    instance = random_omv_instance(rng, n=SIZES[0])
    reduction = OMvEnumerationReduction(zoo.E_T, DeltaIVMEngine)
    benchmark.pedantic(
        lambda: reduction.solve(instance), rounds=3, iterations=1
    )

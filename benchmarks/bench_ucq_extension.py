"""EXT-UCQ — the Section 7 outlook, implemented: unions of CQs.

Not a paper artefact but the paper's declared next step ("we are
working towards ... unions of conjunctive queries").  The extension
maintains a UCQ of q-hierarchical disjuncts with constant update time,
O(1) inclusion–exclusion counting (when the intersections stay
q-hierarchical) and duplicate-free constant-delay enumeration via the
O(1) membership primitive.

Measured shape: the union engine's update+count+enumerate-prefix round
is flat in n while a recompute-the-union baseline grows linearly.
"""

import random
import time

from repro.bench.harness import ScalingExperiment
from repro.bench.timing import DelayRecorder
from repro.cq.parser import parse_query
from repro.eval_static.naive import evaluate as evaluate_naive
from repro.extensions.ucq import UnionEngine, UnionOfCQs
from repro.storage.database import Database, Schema

from _common import emit, reset, scaled

D1 = parse_query("Q(x, y) :- R(x, y), S(x)")
D2 = parse_query("Q(x, y) :- T(x, y)")
UNION = UnionOfCQs([D1, D2])
SIZES = scaled([300, 600, 1200, 2400])
PREFIX = 200


def union_database(n: int, rng: random.Random) -> Database:
    db = Database(Schema({"R": 2, "S": 1, "T": 2}))
    for i in range(n):
        db.insert("R", (i, (i * 5) % n))
        if i % 2 == 0:
            db.insert("S", (i,))
        if i % 3 == 0:
            db.insert("T", (i, (i * 5) % n))  # heavy overlap with D1
    return db


def measure(engine_name: str, n: int, rng: random.Random) -> float:
    database = union_database(n, rng)
    rounds = 15
    if engine_name == "union_engine":
        engine = UnionEngine(UNION, database)

        start = time.perf_counter()
        for step in range(rounds):
            engine.insert("T", (0, n + step))
            engine.delete("T", (0, n + step))
            engine.count()
            recorder = DelayRecorder()
            recorder.consume(engine.enumerate(), limit=PREFIX)
        return (time.perf_counter() - start) / rounds

    # Baseline: recompute the union from scratch per round.
    start = time.perf_counter()
    for step in range(rounds):
        database.insert("T", (0, n + step))
        database.delete("T", (0, n + step))
        result = evaluate_naive(D1, database) | evaluate_naive(D2, database)
        len(result)
    return (time.perf_counter() - start) / rounds


def test_ucq_union_maintenance(benchmark):
    reset("EXT-UCQ")
    # Correctness on one size first.
    rng = random.Random(5)
    database = union_database(SIZES[0], rng)
    engine = UnionEngine(UNION, database)
    truth = evaluate_naive(D1, database) | evaluate_naive(D2, database)
    rows = list(engine.enumerate())
    assert len(rows) == len(set(rows))
    assert set(rows) == truth
    assert engine.count() == len(truth)
    assert engine.counting_supported

    experiment = ScalingExperiment(
        title="EXT-UCQ: union round (update + O(1) count + "
        f"enumerate {PREFIX}) vs recompute-the-union",
        sizes=SIZES,
        measure=measure,
        engines=["union_engine", "recompute_union"],
    ).run()
    emit("EXT-UCQ", experiment.render())

    assert experiment.exponent("union_engine") < 0.45
    assert experiment.exponent("recompute_union") > 0.6

    engine = UnionEngine(UNION, union_database(SIZES[-1], random.Random(1)))

    def one_round():
        engine.insert("T", (0, 999_999))
        engine.delete("T", (0, 999_999))
        engine.count()
        recorder = DelayRecorder()
        return recorder.consume(engine.enumerate(), limit=PREFIX)

    benchmark(one_round)

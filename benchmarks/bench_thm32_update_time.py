"""THM32-U — Theorem 3.2: constant update time vs. growing baselines.

Paper claim: a q-hierarchical query is maintainable with update time
poly(ϕ), *independent of n*; recomputation costs Ω(n) per round and a
delta-IVM baseline pays the delta-join size (Θ(n) on hub updates).

Workload: the hub-star database of ``_common`` with update→count
rounds toggling E1 edges at the hub.  Expected shape: the q-hierarchical
series is flat (log–log exponent ≈ 0) while both baselines grow
(exponent ≥ ~0.5); the gap widens with n.
"""

import random

from repro.bench.harness import ScalingExperiment
from repro.cq.zoo import star_query
from repro.interface import make_engine

import _common
from _common import emit, hub_star_database, hub_toggle_commands, reset, scaled

QUERY = star_query(2)
SIZES = scaled([300, 600, 1200, 2400])
ROUNDS = 30


def measure(engine_name: str, n: int, rng: random.Random) -> float:
    """Seconds per update→count round at database size n."""
    database = hub_star_database(n, rng)
    engine = make_engine(engine_name, QUERY, database)
    commands = hub_toggle_commands(n, ROUNDS)

    import time

    start = time.perf_counter()
    for command in commands:
        engine.apply(command)
        engine.count()
    elapsed = time.perf_counter() - start
    return elapsed / len(commands)


def test_thm32_update_time_shapes(benchmark):
    reset("THM32-U")
    experiment = ScalingExperiment(
        title="THM32-U: seconds per update+count round (hub-star workload)",
        sizes=SIZES,
        measure=measure,
        engines=["qhierarchical", "delta_ivm", "recompute"],
    ).run()
    emit("THM32-U", experiment.render())
    emit(
        "THM32-U",
        f"speedup qhierarchical vs recompute at n={SIZES[-1]}: "
        f"{experiment.speedups()[-1]:.1f}x",
    )

    # Shape assertions (who wins, and how the curves bend).
    assert experiment.exponent("qhierarchical") < 0.45
    assert experiment.exponent("delta_ivm") > 0.45
    assert experiment.exponent("recompute") > 0.55
    assert experiment.speedups()[-1] > 3.0

    # pytest-benchmark target: a single O(1) update+count round on the
    # largest database.
    rng = random.Random(0)
    engine = make_engine(
        "qhierarchical", QUERY, hub_star_database(SIZES[-1], rng)
    )
    toggle = hub_toggle_commands(SIZES[-1], 1)

    def one_round():
        for command in toggle:
            engine.apply(command)
        return engine.count()

    benchmark(one_round)

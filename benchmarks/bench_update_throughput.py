"""Update-throughput and preprocessing benchmark for the dynamic engine.

Measures the compiled update-plan layer (PR: compiled plans, zero-aware
incremental counters, bulk preprocessing) against the seed reference
implementation (``QHierarchicalEngine(..., compiled=False)``), across
the query zoo's q-hierarchical queries and three update-stream shapes:

* ``insert`` — insert-only churn (fresh random tuples),
* ``delete`` — delete-heavy: preload, then remove every tuple,
* ``mixed``  — interleaved inserts and effective deletes,
* ``toggle`` — hub toggles on a preloaded star database (the Theorem
  3.2 contrast workload of ``benchmarks/_common.py``).

Two measurement tiers per stream:

* ``engine``    — ``DynamicEngine.apply`` end to end, including the
  shared set-semantics store (identical in both modes);
* ``procedure`` — the paper's *update procedure* alone (Section 6.4),
  entered through the engine's ``_on_insert``/``_on_delete`` hooks.
  Streams are pre-filtered to effective commands, so this isolates
  exactly the code the compiled plans replace.

Preprocessing compares bulk construction (``compiled=True`` with an
initial database → ``bulk_load``) against the seed's insert-by-insert
replay on the same databases.

The ``native_backend`` section compares the vectorized batched kernel
(``backend="vectorized"``, numpy int-interned batches) against the
compiled per-tuple python runners (``backend="python"`` — the committed
PR 2 path) on identical effective streams, again at both tiers: the
``engine`` tier times ``apply_all`` end to end, the ``procedure`` tier
times the update work alone (kernel batches vs runner hooks).  Both
backends are asserted state-identical (count, answer, per-structure
snapshots) before timing.  Without numpy the section is skipped and the
report says so.

GC is disabled inside the timed sections (collected right before), so
collector pauses land on neither side of a ratio.  Every comparison
asserts observational equivalence (count + result set) between the two
modes before its timings are recorded.

Output: a human-readable table on stdout and machine-readable JSON
(default ``BENCH_update_throughput.json`` at the repository root) with
per-case rows, aggregates and the PR's target checks.  ``--quick``
shrinks sizes for the CI smoke run.
"""

from __future__ import annotations

import argparse
import gc
import itertools
import json
import math
import pathlib
import platform
import random
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import QHierarchicalEngine
from repro.core.vectorized import numpy_or_none
from repro.cq import zoo
from repro.cq.analysis import find_violation
from repro.cq.query import ConjunctiveQuery
from repro.storage.database import Database
from repro.storage.updates import UpdateCommand, delete, insert
from repro.workloads.distributions import UniformDomain
from repro.workloads.streams import (
    insert_only_stream,
    mixed_stream,
    star_database,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_update_throughput.json"


def zoo_queries() -> List[Tuple[str, ConjunctiveQuery]]:
    """The q-hierarchical members of the query zoo, plus star shapes."""
    picked: List[Tuple[str, ConjunctiveQuery]] = []
    for name, query in zoo.PAPER_QUERIES.items():
        if find_violation(query) is None:
            picked.append((name, query))
    picked.append(("STAR_3", zoo.star_query(3, free_leaves=3)))
    picked.append(("STAR_5", zoo.star_query(5, free_leaves=5)))
    return picked


# ---------------------------------------------------------------------------
# stream construction (all streams are effective-by-construction)
# ---------------------------------------------------------------------------


def build_streams(
    query: ConjunctiveQuery, count: int, seed: int
) -> Dict[str, List[UpdateCommand]]:
    rng = random.Random(seed)
    dense = UniformDomain(max(8, count // 50))
    inserts = []
    seen = set()
    for command in insert_only_stream(rng, query, count, domain=dense):
        key = (command.relation, command.row)
        if key not in seen:  # keep the stream effective for both tiers
            seen.add(key)
            inserts.append(command)
    deletes = [command.inverse() for command in inserts]
    rng.shuffle(deletes)
    mixed = mixed_stream(rng, query, count, domain=dense)
    return {"insert": inserts, "delete": deletes, "mixed": mixed}


def hot_stream(
    query: ConjunctiveQuery, count: int, seed: int, domain_size: int = 16
) -> List[UpdateCommand]:
    """Hot-key churn: a domain this small folds a batch onto few
    distinct keys, the netting case of the vectorized kernel.  Every
    command is effective by construction (inserts target absent rows,
    deletes live ones), so the procedure tier can replay the stream
    without the set-semantics filter."""
    rng = random.Random(seed)
    relations = [(name, query.arity_of(name)) for name in sorted(query.relations)]
    live: Dict[str, set] = {name: set() for name, _ in relations}
    stream: List[UpdateCommand] = []
    while len(stream) < count:
        name, arity = relations[rng.randrange(len(relations))]
        pool = live[name]
        full = len(pool) >= domain_size**arity
        if pool and (full or rng.random() < 0.45):
            row = rng.choice(sorted(pool))
            pool.discard(row)
            stream.append(delete(name, row))
        else:
            row = tuple(rng.randrange(domain_size) for _ in range(arity))
            if row in pool:
                continue  # an absent row exists: the pool is not full
            pool.add(row)
            stream.append(insert(name, row))
    return stream


def toggle_workload(
    fanout: int, n: int, rounds: int
) -> Tuple[ConjunctiveQuery, Database, List[UpdateCommand]]:
    """Hub toggles on a preloaded star database (all effective)."""
    query = zoo.star_query(fanout, free_leaves=fanout)
    database = star_database(random.Random(3), n, fanout)
    commands: List[UpdateCommand] = []
    for step in range(rounds):
        row = (5, 10_000 + step)
        commands.append(insert("E1", row))
        commands.append(delete("E1", row))
    return query, database, commands


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def time_stream(
    query: ConjunctiveQuery,
    commands: Sequence[UpdateCommand],
    compiled: bool,
    tier: str,
    database: Optional[Database],
    preload: Sequence[UpdateCommand],
    reps: int,
) -> Tuple[float, QHierarchicalEngine]:
    """Best-of-``reps`` seconds to run ``commands`` on a fresh engine."""
    best = math.inf
    engine = None
    for _ in range(reps):
        engine = QHierarchicalEngine(query, database, compiled=compiled)
        for command in preload:
            engine.apply(command)
        if tier == "engine":
            apply = engine.apply
            best = min(best, _timed(lambda: [apply(c) for c in commands]))
        else:
            # The paper's update procedure alone: streams are effective
            # by construction, so the set-semantics store may be kept
            # out of the measurement (it is identical in both modes).
            on_insert = engine._on_insert
            on_delete = engine._on_delete
            ops = [
                (on_insert if c.op == "insert" else on_delete, c.relation, c.row)
                for c in commands
            ]

            def run() -> None:
                for op, rel, row in ops:
                    op(rel, row)

            best = min(best, _timed(run))
    return best, engine


def check_equivalence(
    query: ConjunctiveQuery,
    commands: Sequence[UpdateCommand],
    database: Optional[Database] = None,
) -> None:
    """Both modes must agree observationally after the stream.

    The result set is only materialised when small — on dense star
    databases the count is combinatorial (which is exactly why O(1)
    counting matters); there the O(1)/O(k)-per-probe surfaces are
    compared instead: count, answer, a prefix of the enumeration and
    cross-checked ``contains`` probes.
    """
    fast = QHierarchicalEngine(query, database, compiled=True)
    slow = QHierarchicalEngine(query, database, compiled=False)
    for command in commands:
        fast.apply(command)
        slow.apply(command)
    assert fast.count() == slow.count(), query.name
    assert fast.answer() == slow.answer(), query.name
    if 0 <= fast.count() <= 50_000:
        assert fast.result_set() == slow.result_set(), query.name
    else:
        sample = list(itertools.islice(fast.enumerate(), 500))
        for row in sample:
            assert slow.contains(row), (query.name, row)
        for row in itertools.islice(slow.enumerate(), 500):
            assert fast.contains(row), (query.name, row)


# ---------------------------------------------------------------------------
# benchmark phases
# ---------------------------------------------------------------------------


def bench_updates(count: int, reps: int, quick: bool) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    queries = zoo_queries()
    if quick:
        queries = queries[:3] + [queries[-1]]
    for name, query in queries:
        streams = build_streams(query, count, seed=7)
        check_equivalence(query, streams["mixed"])
        for stream_name, commands in streams.items():
            preload = streams["insert"] if stream_name == "delete" else ()
            for tier in ("engine", "procedure"):
                compiled_s, _ = time_stream(
                    query, commands, True, tier, None, preload, reps
                )
                reference_s, _ = time_stream(
                    query, commands, False, tier, None, preload, reps
                )
                rows.append(
                    {
                        "query": name,
                        "stream": stream_name,
                        "tier": tier,
                        "updates": len(commands),
                        "compiled_ups": len(commands) / compiled_s,
                        "reference_ups": len(commands) / reference_s,
                        "speedup": reference_s / compiled_s,
                    }
                )
    return rows


def bench_toggle(rounds: int, reps: int, quick: bool) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    fanouts = (3,) if quick else (3, 5, 8)
    for fanout in fanouts:
        query, database, commands = toggle_workload(
            fanout, n=200 if quick else 500, rounds=rounds
        )
        check_equivalence(query, commands[:200], database)
        for tier in ("engine", "procedure"):
            compiled_s, _ = time_stream(
                query, commands, True, tier, database, (), reps
            )
            reference_s, _ = time_stream(
                query, commands, False, tier, database, (), reps
            )
            rows.append(
                {
                    "query": f"STAR_{fanout}_HUB",
                    "stream": "toggle",
                    "tier": tier,
                    "updates": len(commands),
                    "compiled_ups": len(commands) / compiled_s,
                    "reference_ups": len(commands) / reference_s,
                    "speedup": reference_s / compiled_s,
                }
            )
    return rows


def _time_native(
    query: ConjunctiveQuery,
    database: Optional[Database],
    commands: Sequence[UpdateCommand],
    backend: str,
    tier: str,
    reps: int,
) -> float:
    """Best-of-``reps`` seconds for one backend at one tier.

    ``engine`` times ``apply_all`` end to end (both backends pay the
    set-semantics store).  ``procedure`` isolates the update work the
    backends actually swap: the vectorized side feeds the kernel the
    same per-relation chunk groups ``apply_all``'s store pass hands it
    (``Database.fold_stream`` builds them while filtering for set
    semantics), the python side runs the compiled per-tuple runner
    hooks over a pre-dispatched ops list — streams are effective by
    construction, so skipping the store pass (and the grouping /
    dispatch work fused into it) is sound and symmetric on both sides.
    """
    from repro.core.engine import _MAX_VECTOR_CHUNK

    best = math.inf
    if tier == "procedure" and backend == "vectorized":
        chunks = []
        for start in range(0, len(commands), _MAX_VECTOR_CHUNK):
            grouped: Dict[str, tuple] = {}
            for c in commands[start : start + _MAX_VECTOR_CHUNK]:
                group = grouped.get(c.relation)
                if group is None:
                    group = ([], [])
                    grouped[c.relation] = group
                group[0].append(c.row)
                group[1].append(1 if c.op == "insert" else -1)
            chunks.append(grouped)
    for _ in range(reps):
        engine = QHierarchicalEngine(query, database, backend=backend)
        if tier == "engine":
            best = min(best, _timed(lambda: engine.apply_all(commands)))
        elif backend == "vectorized":
            kernel = engine._vec

            def run_batches() -> None:
                for grouped in chunks:
                    kernel.apply_groups(grouped)

            best = min(best, _timed(run_batches))
        else:
            on_insert = engine._on_insert
            on_delete = engine._on_delete
            ops = [
                (on_insert if c.op == "insert" else on_delete, c.relation, c.row)
                for c in commands
            ]

            def run_hooks() -> None:
                for op, rel, row in ops:
                    op(rel, row)

            best = min(best, _timed(run_hooks))
    return best


def _native_case(
    name: str,
    stream_name: str,
    query: ConjunctiveQuery,
    database: Optional[Database],
    commands: Sequence[UpdateCommand],
    reps: int,
) -> List[Dict[str, object]]:
    """Equivalence-check one (query, stream), then time both tiers."""
    vectorized = QHierarchicalEngine(query, database, backend="vectorized")
    python = QHierarchicalEngine(query, database, backend="python")
    vectorized.apply_all(commands)
    for command in commands:
        python.apply(command)
    assert vectorized.count() == python.count(), (name, stream_name)
    assert vectorized.answer() == python.answer(), (name, stream_name)
    for sv, sp in zip(vectorized.structures, python.structures):
        assert sv.snapshot() == sp.snapshot(), (name, stream_name)
    rows: List[Dict[str, object]] = []
    for tier in ("engine", "procedure"):
        vectorized_s = _time_native(
            query, database, commands, "vectorized", tier, reps
        )
        python_s = _time_native(query, database, commands, "python", tier, reps)
        rows.append(
            {
                "query": name,
                "stream": stream_name,
                "tier": tier,
                "updates": len(commands),
                "vectorized_ups": len(commands) / vectorized_s,
                "python_ups": len(commands) / python_s,
                "speedup": python_s / vectorized_s,
            }
        )
    return rows


def bench_native_backend(
    count: int, toggle_rounds: int, reps: int, quick: bool
) -> List[Dict[str, object]]:
    """Vectorized batched kernel vs compiled per-tuple python runners.

    Two stream shapes per zoo query — ``mixed`` (dense domain: nearly
    every batch key is distinct, the kernel's worst case) and ``hot``
    (16-value domain: batches fold onto few distinct keys) — plus the
    hub-toggle star workloads, where a batch nets to almost nothing.
    Returns no rows when numpy is unavailable (the report notes it).
    """
    if numpy_or_none() is None:
        return []
    rows: List[Dict[str, object]] = []
    queries = zoo_queries()
    if quick:
        queries = queries[:3] + [queries[-1]]
    for name, query in queries:
        # Measure what ships: queries the auto rule sends to the
        # per-tuple runners (all-eq plan shapes) are recorded as
        # declined, not timed as if vectorized were the default there.
        info = QHierarchicalEngine(query).backend_info()
        if info["backend"] != "vectorized":
            rows.append(
                {
                    "query": name,
                    "stream": "-",
                    "tier": "-",
                    "updates": 0,
                    "declined": info["reason"],
                }
            )
            continue
        streams = build_streams(query, count, seed=13)
        cases = {
            "mixed": streams["mixed"],
            "hot": hot_stream(query, count, seed=13),
        }
        for stream_name, commands in cases.items():
            rows.extend(
                _native_case(name, stream_name, query, None, commands, reps)
            )
    fanouts = (5,) if quick else (3, 5, 8)
    for fanout in fanouts:
        query, database, commands = toggle_workload(
            fanout, n=200 if quick else 500, rounds=toggle_rounds
        )
        rows.extend(
            _native_case(
                f"STAR_{fanout}_HUB", "toggle", query, database, commands, reps
            )
        )
    return rows


def bench_merged_loaders(
    count: int, reps: int, quick: bool
) -> List[Dict[str, object]]:
    """Merged same-relation loaders vs one loader per atom (self-joins).

    Bulk preprocessing on queries with several atoms over one relation:
    the merged loader streams each relation once and walks shared path
    prefixes once per relation, the per-atom layout (the PR-2 state)
    walks them once per atom.  Both are verified state-identical before
    timing.
    """
    queries = [
        ("EXAMPLE_6_1", zoo.EXAMPLE_6_1),
        ("FIGURE_1", zoo.FIGURE_1),
        ("HIERARCHICAL_RRE", zoo.HIERARCHICAL_RRE),
        ("SELFSTAR_3", zoo.selfjoin_star_query(3)),
        ("SELFSTAR_5", zoo.selfjoin_star_query(5)),
    ]
    if quick:
        queries = queries[:2] + [queries[3]]
    rows: List[Dict[str, object]] = []
    rng = random.Random(21)
    for name, query in queries:
        database = Database.empty_like(query)
        domain = UniformDomain(max(8, count // 300))
        for command in insert_only_stream(rng, query, count, domain=domain):
            database.insert(command.relation, command.row)

        merged = QHierarchicalEngine(query, database, merged_loaders=True)
        per_atom = QHierarchicalEngine(query, database, merged_loaders=False)
        assert merged.count() == per_atom.count(), name
        for sm, sp in zip(merged.structures, per_atom.structures):
            assert sm.snapshot() == sp.snapshot(), name

        merged_s = min(
            _timed(
                lambda: QHierarchicalEngine(
                    query, database, merged_loaders=True
                )
            )
            for _ in range(reps)
        )
        per_atom_s = min(
            _timed(
                lambda: QHierarchicalEngine(
                    query, database, merged_loaders=False
                )
            )
            for _ in range(reps)
        )
        rows.append(
            {
                "query": name,
                "rows": database.cardinality,
                "merged_s": merged_s,
                "per_atom_s": per_atom_s,
                "speedup": per_atom_s / merged_s,
            }
        )
    return rows


def bench_preprocessing(
    count: int, reps: int, quick: bool
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    queries = zoo_queries()
    if quick:
        queries = queries[:2]
    rng = random.Random(9)
    for name, query in queries:
        database = Database.empty_like(query)
        domain = UniformDomain(max(8, count // 300))
        for command in insert_only_stream(rng, query, count, domain=domain):
            database.insert(command.relation, command.row)

        bulk = QHierarchicalEngine(query, database, compiled=True)
        replay = QHierarchicalEngine(query, database, compiled=False)
        assert bulk.count() == replay.count(), name
        if 0 <= bulk.count() <= 50_000:
            assert bulk.result_set() == replay.result_set(), name

        bulk_s = min(
            _timed(lambda: QHierarchicalEngine(query, database, compiled=True))
            for _ in range(reps)
        )
        replay_s = min(
            _timed(lambda: QHierarchicalEngine(query, database, compiled=False))
            for _ in range(reps)
        )
        rows.append(
            {
                "query": name,
                "rows": database.cardinality,
                "size": database.size,
                "bulk_s": bulk_s,
                "replay_s": replay_s,
                "rows_per_s_bulk": database.cardinality / bulk_s,
                "rows_per_s_replay": database.cardinality / replay_s,
                "speedup": replay_s / bulk_s,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# aggregation / reporting
# ---------------------------------------------------------------------------


def geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def aggregate(
    update_rows: List[Dict[str, object]],
    pre_rows: List[Dict[str, object]],
    merged_rows: List[Dict[str, object]],
    native_rows: List[Dict[str, object]],
) -> Dict[str, float]:
    engine = [r["speedup"] for r in update_rows if r["tier"] == "engine"]
    procedure = [r["speedup"] for r in update_rows if r["tier"] == "procedure"]
    procedure_ups = [
        r["compiled_ups"] for r in update_rows if r["tier"] == "procedure"
    ]
    pre = [r["speedup"] for r in pre_rows]
    merged = [r["speedup"] for r in merged_rows]
    native_proc = [r["speedup"] for r in native_rows if r["tier"] == "procedure"]
    native_engine = [r["speedup"] for r in native_rows if r["tier"] == "engine"]
    native_all = native_proc + native_engine
    return {
        "update_engine_geomean": round(geomean(engine), 3),
        "update_engine_best": round(max(engine), 3) if engine else 0.0,
        "update_procedure_geomean": round(geomean(procedure), 3),
        "update_procedure_best": round(max(procedure), 3) if procedure else 0.0,
        # The slowest compiled update-procedure rate of the run — the
        # absolute tuples/s guardrail of check_regression.py (a ratio
        # gate alone cannot catch a regressed committed baseline).
        "update_procedure_floor_ups": (
            round(min(procedure_ups), 1) if procedure_ups else 0.0
        ),
        "preprocessing_geomean": round(geomean(pre), 3),
        "preprocessing_best": round(max(pre), 3) if pre else 0.0,
        "merged_loader_geomean": round(geomean(merged), 3),
        "merged_loader_best": round(max(merged), 3) if merged else 0.0,
        # vectorized vs compiled-python; the headline geomean is the
        # procedure tier (the work the backends actually swap).
        "native_backend_geomean": round(geomean(native_proc), 3),
        "native_backend_engine_geomean": round(geomean(native_engine), 3),
        "native_backend_best": (
            round(max(native_all), 3) if native_all else 0.0
        ),
    }


def render_table(
    update_rows, pre_rows, merged_rows, native_rows, aggregates
) -> str:
    lines = ["update throughput (updates/sec, compiled vs seed reference)", ""]
    lines.append(
        f"{'query':<18} {'stream':<7} {'tier':<10} "
        f"{'compiled':>12} {'reference':>12} {'speedup':>8}"
    )
    for r in update_rows:
        lines.append(
            f"{r['query']:<18} {r['stream']:<7} {r['tier']:<10} "
            f"{r['compiled_ups']:>12.0f} {r['reference_ups']:>12.0f} "
            f"{r['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("preprocessing (bulk load vs insert-by-insert replay)")
    lines.append("")
    lines.append(
        f"{'query':<18} {'rows':>8} {'bulk':>10} {'replay':>10} {'speedup':>8}"
    )
    for r in pre_rows:
        lines.append(
            f"{r['query']:<18} {r['rows']:>8} {r['bulk_s']*1000:>8.1f}ms "
            f"{r['replay_s']*1000:>8.1f}ms {r['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("merged same-relation loaders (self-joins, vs per-atom)")
    lines.append("")
    lines.append(
        f"{'query':<18} {'rows':>8} {'merged':>10} {'per-atom':>10} {'speedup':>8}"
    )
    for r in merged_rows:
        lines.append(
            f"{r['query']:<18} {r['rows']:>8} {r['merged_s']*1000:>8.1f}ms "
            f"{r['per_atom_s']*1000:>8.1f}ms {r['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("native backend (vectorized batches vs compiled per-tuple python)")
    lines.append("")
    if native_rows:
        lines.append(
            f"{'query':<18} {'stream':<7} {'tier':<10} "
            f"{'vectorized':>12} {'python':>12} {'speedup':>8}"
        )
        for r in native_rows:
            if "declined" in r:
                lines.append(f"{r['query']:<18} auto declined — {r['declined']}")
                continue
            lines.append(
                f"{r['query']:<18} {r['stream']:<7} {r['tier']:<10} "
                f"{r['vectorized_ups']:>12.0f} {r['python_ups']:>12.0f} "
                f"{r['speedup']:>7.2f}x"
            )
    else:
        lines.append("  skipped — numpy not importable (python fallback only)")
    lines.append("")
    for key, value in aggregates.items():
        suffix = "" if key.endswith("_ups") else "x"
        lines.append(f"{key:<32} {value:,.2f}{suffix}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes: fewer queries, smaller streams, 1 rep",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply stream/database sizes (default 1.0)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"JSON output path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    if args.quick:
        # Preprocessing still needs a non-toy database: below ~10k rows
        # the one-off plan-compilation cost dominates the bulk side.
        update_count, toggle_rounds, pre_count, reps = 2000, 1000, 30000, 1
    else:
        update_count, toggle_rounds, pre_count, reps = 10000, 6000, 60000, 2
    update_count = max(200, int(update_count * args.scale))
    toggle_rounds = max(100, int(toggle_rounds * args.scale))
    pre_count = max(500, int(pre_count * args.scale))

    update_rows = bench_updates(update_count, reps, args.quick)
    update_rows += bench_toggle(toggle_rounds, reps, args.quick)
    pre_rows = bench_preprocessing(pre_count, reps, args.quick)
    merged_rows = bench_merged_loaders(pre_count, reps, args.quick)
    native_rows = bench_native_backend(
        update_count, toggle_rounds, reps, args.quick
    )
    aggregates = aggregate(update_rows, pre_rows, merged_rows, native_rows)
    has_numpy = numpy_or_none() is not None

    quick_note = (
        " (quick smoke sizes understate both sides; authoritative "
        "numbers come from a full run)"
        if args.quick
        else ""
    )
    targets = {
        "update_throughput_3x": {
            "metric": "update_procedure_geomean",
            "value": aggregates["update_procedure_geomean"],
            "met": aggregates["update_procedure_geomean"] >= 3.0,
            "note": "the Section 6.4 update procedure the compiled plans "
            "replace; 'engine' rows additionally include the shared "
            "set-semantics store, identical in both modes" + quick_note,
        },
        "preprocessing_5x": {
            "metric": "preprocessing_best",
            "value": aggregates["preprocessing_best"],
            "met": aggregates["preprocessing_best"] >= 5.0,
            "note": "bulk_load vs insert-by-insert replay on the same "
            "initial database (geomean also reported)" + quick_note,
        },
        "merged_loaders_faster": {
            "metric": "merged_loader_geomean",
            "value": aggregates["merged_loader_geomean"],
            "met": aggregates["merged_loader_geomean"] >= 1.05,
            "note": "one pass per relation (shared path prefixes) vs one "
            "pass per atom on self-join queries, whole-engine "
            "construction time" + quick_note,
        },
        "native_backend_2_5x": {
            "metric": "native_backend_geomean",
            "value": aggregates["native_backend_geomean"],
            "met": aggregates["native_backend_geomean"] >= 2.5,
            "note": (
                "vectorized batched kernel vs the committed compiled "
                "per-tuple python runners, update-procedure tier, "
                "state-asserted identical before timing" + quick_note
                if has_numpy
                else "skipped — numpy not importable, so only the "
                "python fallback ran"
            ),
        },
    }

    report = {
        "meta": {
            "experiment": "update_throughput",
            "quick": args.quick,
            "scale": args.scale,
            "reps": reps,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "numpy": has_numpy,
            "unix_time": int(time.time()),
        },
        "update_throughput": update_rows,
        "preprocessing": pre_rows,
        "merged_loaders": merged_rows,
        "native_backend": native_rows,
        "aggregates": aggregates,
        "targets": targets,
    }

    text = render_table(
        update_rows, pre_rows, merged_rows, native_rows, aggregates
    )
    print(text)
    print()
    for name, target in targets.items():
        state = "MET" if target["met"] else "not met"
        print(f"target {name}: {target['value']:.2f}x ({target['metric']}) — {state}")

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Update-throughput and preprocessing benchmark for the dynamic engine.

Measures the compiled update-plan layer (PR: compiled plans, zero-aware
incremental counters, bulk preprocessing) against the seed reference
implementation (``QHierarchicalEngine(..., compiled=False)``), across
the query zoo's q-hierarchical queries and three update-stream shapes:

* ``insert`` — insert-only churn (fresh random tuples),
* ``delete`` — delete-heavy: preload, then remove every tuple,
* ``mixed``  — interleaved inserts and effective deletes,
* ``toggle`` — hub toggles on a preloaded star database (the Theorem
  3.2 contrast workload of ``benchmarks/_common.py``).

Two measurement tiers per stream:

* ``engine``    — ``DynamicEngine.apply`` end to end, including the
  shared set-semantics store (identical in both modes);
* ``procedure`` — the paper's *update procedure* alone (Section 6.4),
  entered through the engine's ``_on_insert``/``_on_delete`` hooks.
  Streams are pre-filtered to effective commands, so this isolates
  exactly the code the compiled plans replace.

Preprocessing compares bulk construction (``compiled=True`` with an
initial database → ``bulk_load``) against the seed's insert-by-insert
replay on the same databases.

GC is disabled inside the timed sections (collected right before), so
collector pauses land on neither side of a ratio.  Every comparison
asserts observational equivalence (count + result set) between the two
modes before its timings are recorded.

Output: a human-readable table on stdout and machine-readable JSON
(default ``BENCH_update_throughput.json`` at the repository root) with
per-case rows, aggregates and the PR's target checks.  ``--quick``
shrinks sizes for the CI smoke run.
"""

from __future__ import annotations

import argparse
import gc
import itertools
import json
import math
import pathlib
import platform
import random
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import QHierarchicalEngine
from repro.cq import zoo
from repro.cq.analysis import find_violation
from repro.cq.query import ConjunctiveQuery
from repro.storage.database import Database
from repro.storage.updates import UpdateCommand, delete, insert
from repro.workloads.distributions import UniformDomain
from repro.workloads.streams import (
    insert_only_stream,
    mixed_stream,
    star_database,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_update_throughput.json"


def zoo_queries() -> List[Tuple[str, ConjunctiveQuery]]:
    """The q-hierarchical members of the query zoo, plus star shapes."""
    picked: List[Tuple[str, ConjunctiveQuery]] = []
    for name, query in zoo.PAPER_QUERIES.items():
        if find_violation(query) is None:
            picked.append((name, query))
    picked.append(("STAR_3", zoo.star_query(3, free_leaves=3)))
    picked.append(("STAR_5", zoo.star_query(5, free_leaves=5)))
    return picked


# ---------------------------------------------------------------------------
# stream construction (all streams are effective-by-construction)
# ---------------------------------------------------------------------------


def build_streams(
    query: ConjunctiveQuery, count: int, seed: int
) -> Dict[str, List[UpdateCommand]]:
    rng = random.Random(seed)
    dense = UniformDomain(max(8, count // 50))
    inserts = []
    seen = set()
    for command in insert_only_stream(rng, query, count, domain=dense):
        key = (command.relation, command.row)
        if key not in seen:  # keep the stream effective for both tiers
            seen.add(key)
            inserts.append(command)
    deletes = [command.inverse() for command in inserts]
    rng.shuffle(deletes)
    mixed = mixed_stream(rng, query, count, domain=dense)
    return {"insert": inserts, "delete": deletes, "mixed": mixed}


def toggle_workload(
    fanout: int, n: int, rounds: int
) -> Tuple[ConjunctiveQuery, Database, List[UpdateCommand]]:
    """Hub toggles on a preloaded star database (all effective)."""
    query = zoo.star_query(fanout, free_leaves=fanout)
    database = star_database(random.Random(3), n, fanout)
    commands: List[UpdateCommand] = []
    for step in range(rounds):
        row = (5, 10_000 + step)
        commands.append(insert("E1", row))
        commands.append(delete("E1", row))
    return query, database, commands


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------


def _timed(fn) -> float:
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def time_stream(
    query: ConjunctiveQuery,
    commands: Sequence[UpdateCommand],
    compiled: bool,
    tier: str,
    database: Optional[Database],
    preload: Sequence[UpdateCommand],
    reps: int,
) -> Tuple[float, QHierarchicalEngine]:
    """Best-of-``reps`` seconds to run ``commands`` on a fresh engine."""
    best = math.inf
    engine = None
    for _ in range(reps):
        engine = QHierarchicalEngine(query, database, compiled=compiled)
        for command in preload:
            engine.apply(command)
        if tier == "engine":
            apply = engine.apply
            best = min(best, _timed(lambda: [apply(c) for c in commands]))
        else:
            # The paper's update procedure alone: streams are effective
            # by construction, so the set-semantics store may be kept
            # out of the measurement (it is identical in both modes).
            on_insert = engine._on_insert
            on_delete = engine._on_delete
            ops = [
                (on_insert if c.op == "insert" else on_delete, c.relation, c.row)
                for c in commands
            ]

            def run() -> None:
                for op, rel, row in ops:
                    op(rel, row)

            best = min(best, _timed(run))
    return best, engine


def check_equivalence(
    query: ConjunctiveQuery,
    commands: Sequence[UpdateCommand],
    database: Optional[Database] = None,
) -> None:
    """Both modes must agree observationally after the stream.

    The result set is only materialised when small — on dense star
    databases the count is combinatorial (which is exactly why O(1)
    counting matters); there the O(1)/O(k)-per-probe surfaces are
    compared instead: count, answer, a prefix of the enumeration and
    cross-checked ``contains`` probes.
    """
    fast = QHierarchicalEngine(query, database, compiled=True)
    slow = QHierarchicalEngine(query, database, compiled=False)
    for command in commands:
        fast.apply(command)
        slow.apply(command)
    assert fast.count() == slow.count(), query.name
    assert fast.answer() == slow.answer(), query.name
    if 0 <= fast.count() <= 50_000:
        assert fast.result_set() == slow.result_set(), query.name
    else:
        sample = list(itertools.islice(fast.enumerate(), 500))
        for row in sample:
            assert slow.contains(row), (query.name, row)
        for row in itertools.islice(slow.enumerate(), 500):
            assert fast.contains(row), (query.name, row)


# ---------------------------------------------------------------------------
# benchmark phases
# ---------------------------------------------------------------------------


def bench_updates(count: int, reps: int, quick: bool) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    queries = zoo_queries()
    if quick:
        queries = queries[:3] + [queries[-1]]
    for name, query in queries:
        streams = build_streams(query, count, seed=7)
        check_equivalence(query, streams["mixed"])
        for stream_name, commands in streams.items():
            preload = streams["insert"] if stream_name == "delete" else ()
            for tier in ("engine", "procedure"):
                compiled_s, _ = time_stream(
                    query, commands, True, tier, None, preload, reps
                )
                reference_s, _ = time_stream(
                    query, commands, False, tier, None, preload, reps
                )
                rows.append(
                    {
                        "query": name,
                        "stream": stream_name,
                        "tier": tier,
                        "updates": len(commands),
                        "compiled_ups": len(commands) / compiled_s,
                        "reference_ups": len(commands) / reference_s,
                        "speedup": reference_s / compiled_s,
                    }
                )
    return rows


def bench_toggle(rounds: int, reps: int, quick: bool) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    fanouts = (3,) if quick else (3, 5, 8)
    for fanout in fanouts:
        query, database, commands = toggle_workload(
            fanout, n=200 if quick else 500, rounds=rounds
        )
        check_equivalence(query, commands[:200], database)
        for tier in ("engine", "procedure"):
            compiled_s, _ = time_stream(
                query, commands, True, tier, database, (), reps
            )
            reference_s, _ = time_stream(
                query, commands, False, tier, database, (), reps
            )
            rows.append(
                {
                    "query": f"STAR_{fanout}_HUB",
                    "stream": "toggle",
                    "tier": tier,
                    "updates": len(commands),
                    "compiled_ups": len(commands) / compiled_s,
                    "reference_ups": len(commands) / reference_s,
                    "speedup": reference_s / compiled_s,
                }
            )
    return rows


def bench_merged_loaders(
    count: int, reps: int, quick: bool
) -> List[Dict[str, object]]:
    """Merged same-relation loaders vs one loader per atom (self-joins).

    Bulk preprocessing on queries with several atoms over one relation:
    the merged loader streams each relation once and walks shared path
    prefixes once per relation, the per-atom layout (the PR-2 state)
    walks them once per atom.  Both are verified state-identical before
    timing.
    """
    queries = [
        ("EXAMPLE_6_1", zoo.EXAMPLE_6_1),
        ("FIGURE_1", zoo.FIGURE_1),
        ("HIERARCHICAL_RRE", zoo.HIERARCHICAL_RRE),
        ("SELFSTAR_3", zoo.selfjoin_star_query(3)),
        ("SELFSTAR_5", zoo.selfjoin_star_query(5)),
    ]
    if quick:
        queries = queries[:2] + [queries[3]]
    rows: List[Dict[str, object]] = []
    rng = random.Random(21)
    for name, query in queries:
        database = Database.empty_like(query)
        domain = UniformDomain(max(8, count // 300))
        for command in insert_only_stream(rng, query, count, domain=domain):
            database.insert(command.relation, command.row)

        merged = QHierarchicalEngine(query, database, merged_loaders=True)
        per_atom = QHierarchicalEngine(query, database, merged_loaders=False)
        assert merged.count() == per_atom.count(), name
        for sm, sp in zip(merged.structures, per_atom.structures):
            assert sm.snapshot() == sp.snapshot(), name

        merged_s = min(
            _timed(
                lambda: QHierarchicalEngine(
                    query, database, merged_loaders=True
                )
            )
            for _ in range(reps)
        )
        per_atom_s = min(
            _timed(
                lambda: QHierarchicalEngine(
                    query, database, merged_loaders=False
                )
            )
            for _ in range(reps)
        )
        rows.append(
            {
                "query": name,
                "rows": database.cardinality,
                "merged_s": merged_s,
                "per_atom_s": per_atom_s,
                "speedup": per_atom_s / merged_s,
            }
        )
    return rows


def bench_preprocessing(
    count: int, reps: int, quick: bool
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    queries = zoo_queries()
    if quick:
        queries = queries[:2]
    rng = random.Random(9)
    for name, query in queries:
        database = Database.empty_like(query)
        domain = UniformDomain(max(8, count // 300))
        for command in insert_only_stream(rng, query, count, domain=domain):
            database.insert(command.relation, command.row)

        bulk = QHierarchicalEngine(query, database, compiled=True)
        replay = QHierarchicalEngine(query, database, compiled=False)
        assert bulk.count() == replay.count(), name
        if 0 <= bulk.count() <= 50_000:
            assert bulk.result_set() == replay.result_set(), name

        bulk_s = min(
            _timed(lambda: QHierarchicalEngine(query, database, compiled=True))
            for _ in range(reps)
        )
        replay_s = min(
            _timed(lambda: QHierarchicalEngine(query, database, compiled=False))
            for _ in range(reps)
        )
        rows.append(
            {
                "query": name,
                "rows": database.cardinality,
                "size": database.size,
                "bulk_s": bulk_s,
                "replay_s": replay_s,
                "rows_per_s_bulk": database.cardinality / bulk_s,
                "rows_per_s_replay": database.cardinality / replay_s,
                "speedup": replay_s / bulk_s,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# aggregation / reporting
# ---------------------------------------------------------------------------


def geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def aggregate(
    update_rows: List[Dict[str, object]],
    pre_rows: List[Dict[str, object]],
    merged_rows: List[Dict[str, object]],
) -> Dict[str, float]:
    engine = [r["speedup"] for r in update_rows if r["tier"] == "engine"]
    procedure = [r["speedup"] for r in update_rows if r["tier"] == "procedure"]
    pre = [r["speedup"] for r in pre_rows]
    merged = [r["speedup"] for r in merged_rows]
    return {
        "update_engine_geomean": round(geomean(engine), 3),
        "update_engine_best": round(max(engine), 3) if engine else 0.0,
        "update_procedure_geomean": round(geomean(procedure), 3),
        "update_procedure_best": round(max(procedure), 3) if procedure else 0.0,
        "preprocessing_geomean": round(geomean(pre), 3),
        "preprocessing_best": round(max(pre), 3) if pre else 0.0,
        "merged_loader_geomean": round(geomean(merged), 3),
        "merged_loader_best": round(max(merged), 3) if merged else 0.0,
    }


def render_table(update_rows, pre_rows, merged_rows, aggregates) -> str:
    lines = ["update throughput (updates/sec, compiled vs seed reference)", ""]
    lines.append(
        f"{'query':<18} {'stream':<7} {'tier':<10} "
        f"{'compiled':>12} {'reference':>12} {'speedup':>8}"
    )
    for r in update_rows:
        lines.append(
            f"{r['query']:<18} {r['stream']:<7} {r['tier']:<10} "
            f"{r['compiled_ups']:>12.0f} {r['reference_ups']:>12.0f} "
            f"{r['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("preprocessing (bulk load vs insert-by-insert replay)")
    lines.append("")
    lines.append(
        f"{'query':<18} {'rows':>8} {'bulk':>10} {'replay':>10} {'speedup':>8}"
    )
    for r in pre_rows:
        lines.append(
            f"{r['query']:<18} {r['rows']:>8} {r['bulk_s']*1000:>8.1f}ms "
            f"{r['replay_s']*1000:>8.1f}ms {r['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("merged same-relation loaders (self-joins, vs per-atom)")
    lines.append("")
    lines.append(
        f"{'query':<18} {'rows':>8} {'merged':>10} {'per-atom':>10} {'speedup':>8}"
    )
    for r in merged_rows:
        lines.append(
            f"{r['query']:<18} {r['rows']:>8} {r['merged_s']*1000:>8.1f}ms "
            f"{r['per_atom_s']*1000:>8.1f}ms {r['speedup']:>7.2f}x"
        )
    lines.append("")
    for key, value in aggregates.items():
        lines.append(f"{key:<28} {value:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes: fewer queries, smaller streams, 1 rep",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply stream/database sizes (default 1.0)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"JSON output path (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    if args.quick:
        # Preprocessing still needs a non-toy database: below ~10k rows
        # the one-off plan-compilation cost dominates the bulk side.
        update_count, toggle_rounds, pre_count, reps = 2000, 1000, 30000, 1
    else:
        update_count, toggle_rounds, pre_count, reps = 10000, 6000, 60000, 2
    update_count = max(200, int(update_count * args.scale))
    toggle_rounds = max(100, int(toggle_rounds * args.scale))
    pre_count = max(500, int(pre_count * args.scale))

    update_rows = bench_updates(update_count, reps, args.quick)
    update_rows += bench_toggle(toggle_rounds, reps, args.quick)
    pre_rows = bench_preprocessing(pre_count, reps, args.quick)
    merged_rows = bench_merged_loaders(pre_count, reps, args.quick)
    aggregates = aggregate(update_rows, pre_rows, merged_rows)

    quick_note = (
        " (quick smoke sizes understate both sides; authoritative "
        "numbers come from a full run)"
        if args.quick
        else ""
    )
    targets = {
        "update_throughput_3x": {
            "metric": "update_procedure_geomean",
            "value": aggregates["update_procedure_geomean"],
            "met": aggregates["update_procedure_geomean"] >= 3.0,
            "note": "the Section 6.4 update procedure the compiled plans "
            "replace; 'engine' rows additionally include the shared "
            "set-semantics store, identical in both modes" + quick_note,
        },
        "preprocessing_5x": {
            "metric": "preprocessing_best",
            "value": aggregates["preprocessing_best"],
            "met": aggregates["preprocessing_best"] >= 5.0,
            "note": "bulk_load vs insert-by-insert replay on the same "
            "initial database (geomean also reported)" + quick_note,
        },
        "merged_loaders_faster": {
            "metric": "merged_loader_geomean",
            "value": aggregates["merged_loader_geomean"],
            "met": aggregates["merged_loader_geomean"] >= 1.05,
            "note": "one pass per relation (shared path prefixes) vs one "
            "pass per atom on self-join queries, whole-engine "
            "construction time" + quick_note,
        },
    }

    report = {
        "meta": {
            "experiment": "update_throughput",
            "quick": args.quick,
            "scale": args.scale,
            "reps": reps,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "unix_time": int(time.time()),
        },
        "update_throughput": update_rows,
        "preprocessing": pre_rows,
        "merged_loaders": merged_rows,
        "aggregates": aggregates,
        "targets": targets,
    }

    text = render_table(update_rows, pre_rows, merged_rows, aggregates)
    print(text)
    print()
    for name, target in targets.items():
        state = "MET" if target["met"] else "not met"
        print(f"target {name}: {target['value']:.2f}x ({target['metric']}) — {state}")

    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""PREP — linear preprocessing and the static/dynamic crossover.

Paper claim (Theorem 3.2 preamble): the preprocessing phase costs
poly(ϕ)·O(||D0||) — linear in the database.  Measured: the engine
construction time scales with exponent ≈ 1.

The second artefact is the *amortisation point* the introduction argues
for: a one-shot evaluation is cheaper served statically, but after
roughly ``preprocess / (recompute_round − update_round)`` rounds the
dynamic engine has paid for itself.  The table reports that break-even
round count per n — it stays roughly constant (both numerator and
denominator are Θ(n)), i.e. dynamic wins after O(1) rounds.
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import growth_exponent
from repro.cq.zoo import star_query
from repro.interface import make_engine

from _common import emit, hub_star_database, hub_toggle_commands, reset, scaled

QUERY = star_query(2)
SIZES = scaled([400, 800, 1600, 3200])


def test_preprocessing_linear_and_crossover(benchmark):
    reset("PREP")
    rows = []
    preprocess_times = []
    for n in SIZES:
        rng = random.Random(n)
        database = hub_star_database(n, rng)

        start = time.perf_counter()
        engine = make_engine("qhierarchical", QUERY, database)
        preprocess = time.perf_counter() - start
        preprocess_times.append(preprocess)

        # Per-round costs for the crossover estimate.
        commands = hub_toggle_commands(n, 10)
        start = time.perf_counter()
        for command in commands:
            engine.apply(command)
            engine.count()
        fast_round = (time.perf_counter() - start) / len(commands)

        slow = make_engine("recompute", QUERY, database)
        start = time.perf_counter()
        for command in commands:
            slow.apply(command)
            slow.count()
        slow_round = (time.perf_counter() - start) / len(commands)

        breakeven = preprocess / max(slow_round - fast_round, 1e-12)
        rows.append(
            [
                n,
                format_time(preprocess),
                format_time(fast_round),
                format_time(slow_round),
                f"{breakeven:.1f}",
            ]
        )

    emit(
        "PREP",
        format_table(
            [
                "n",
                "preprocess (qh)",
                "qh round",
                "recompute round",
                "break-even rounds",
            ],
            rows,
            title="PREP: preprocessing cost and static→dynamic crossover",
        ),
    )

    exponent = growth_exponent(SIZES, preprocess_times)
    emit("PREP", f"preprocessing growth exponent: {exponent:+.2f} (paper: linear)")
    assert 0.6 < exponent < 1.45

    database = hub_star_database(SIZES[0], random.Random(9))
    benchmark.pedantic(
        lambda: make_engine("qhierarchical", QUERY, database),
        rounds=3,
        iterations=1,
    )

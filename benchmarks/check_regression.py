"""CI perf-regression gate: fresh bench JSON vs the committed baselines.

The repository root carries the authoritative benchmark trajectories
(``BENCH_update_throughput.json``, ``BENCH_serving.json``, both from
full runs).  CI re-runs the benches in ``--quick`` mode and this script
compares the *tracked metrics* of the fresh JSON against the committed
baseline, failing the job when any of them regresses beyond a
tolerance.

Tracked metrics are deliberately **ratios** (speedup geomeans, the
cursor flatness ratio), not absolute updates/sec: ratios compare the
same code against its own in-process baseline, so they are largely
independent of runner hardware and of the ``--quick`` sizing, which is
what makes a quick CI run comparable against a committed full-run
baseline at all.  Absolute throughputs are still recorded in the JSON
artifacts (and the nightly full run) — they are just not gated.

Tolerance: default 30% (``--tolerance 0.30``), generous on purpose —
shared CI runners are noisy and the quick sizes amplify variance.  The
override knob for a PR that intentionally trades one metric away::

    python benchmarks/check_regression.py ... --tolerance 0.5

or ``BENCH_REGRESSION_TOLERANCE=0.5`` in the workflow environment
(the CLI flag wins).  A tracked metric missing from the *baseline* is
skipped with a note (older baselines predate newer benches); missing
from the *fresh* run it fails — the bench stopped emitting something
it should.

Machine-readable output: ``--json-out gate.json`` writes one verdict
record per tracked metric (experiment, metric, fresh/baseline values,
bound, status) plus the overall outcome — what dashboards and the
nightly workflow consume.  When ``GITHUB_STEP_SUMMARY`` is set (any
GitHub Actions job), the same verdicts are appended to the job summary
as a markdown table, so the gate is readable without log digging.

Exit status: 0 all tracked metrics within tolerance, 1 regression(s),
2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (baseline file, fresh-run CLI flag) per experiment.
EXPERIMENTS = {
    "update_throughput": REPO_ROOT / "BENCH_update_throughput.json",
    "serving": REPO_ROOT / "BENCH_serving.json",
}

#: experiment → list of (json dotted path, direction, mode[, requires]).
#:
#: ``direction`` — ``higher`` means a drop is a regression; ``lower``
#: the reverse (cursor flatness: 1.0 is perfect, growth means paging
#: degrades).
#:
#: ``mode`` — ``"relative"`` gates against the committed baseline value
#: with the tolerance; a float gates against that **absolute** bound
#: instead.  Relative gating needs the metric to be scale-robust (the
#: compiled-vs-reference speedup geomeans barely move between --quick
#: and full sizes).  Metrics that *grow with the data size* — the O(δ)
#: capture speedup is ~O(|result|), bulk preprocessing gains with
#: volume — would always look "regressed" when a quick run meets a
#: full-run baseline, so they get absolute guardrails: generous enough
#: for quick sizes on a noisy runner, tight enough to turn red when the
#: optimisation is actually broken (speedup collapsing towards 1).
#:
#: ``requires`` (optional 4th element) — dotted path that must be
#: truthy in the *fresh* run for the metric to apply; otherwise the
#: metric is skipped with a note.  Used for the no-numpy CI leg, where
#: the vectorized section legitimately never runs.
TRACKED: Dict[str, List[Tuple[str, ...]]] = {
    "update_throughput": [
        ("aggregates.update_engine_geomean", "higher", "relative"),
        ("aggregates.update_procedure_geomean", "higher", "relative"),
        # Absolute updates/sec floor for the compiled per-tuple
        # procedures (slowest query in the suite).  Scale-dependent by
        # nature, so the bound sits far below any healthy runner —
        # local quick runs clear 300k — and only trips when the
        # compiled path degenerates to interpreter-speed dispatch.
        ("aggregates.update_procedure_floor_ups", "higher", 25000.0),
        ("aggregates.preprocessing_geomean", "higher", 1.5),
        ("aggregates.merged_loader_geomean", "higher", "relative"),
        # Vectorized-vs-python speedup of the native backend.  Batch
        # amortization grows with the stream sizes (~2.7x at --quick,
        # ~3.8x full), so like preprocessing this gets an absolute
        # guardrail: quick runs on a noisy runner clear it with ~2x
        # headroom, while a kernel that stops beating the per-tuple
        # runners (ratio collapsing towards 1) turns it red.  Skipped
        # when the fresh run had no numpy (meta.numpy false) — the
        # no-numpy CI leg proves the fallback, not the kernel.
        (
            "aggregates.native_backend_geomean",
            "higher",
            1.5,
            "meta.numpy",
        ),
    ],
    "serving": [
        ("cursor_resume.cursor_last_over_first", "lower", 3.0),
        ("subscription_delta.speedup", "higher", 10.0),
        ("sharded_writes.speedup_at_max_shards", "higher", 1.25),
        # The cluster-vs-threads ratio holds its own in --quick runs
        # (both sides measured in the same process on the same sizes),
        # but shared CI runners with 2 vCPUs squeeze a 4-process
        # cluster much harder than 4 threads — the guardrail is set
        # where only a genuinely broken transport (ratio collapsing
        # towards or below 1) trips it.
        ("multiprocess_shards.speedup_vs_inprocess_best", "higher", 1.1),
        ("async_dispatch.writer_speedup", "higher", 1.5),
        # Supervised failover: recovery of a SIGKILLed worker (respawn
        # + journal replay) must stay a bounded stall.  Absolute bound:
        # recovery time is dominated by process spawn + replay, not by
        # the --quick workload sizing, and 5s is an order of magnitude
        # above a healthy runner while a hung/broken recovery path
        # (blocked replay, lost notify) blows straight past it.
        ("failover.recovery_seconds", "lower", 5.0),
        # Snapshot-consistent cross-shard reads: the double-collect pin
        # must stay cheap next to moving the same rows (absolute ratio,
        # scale-robust: both sides transfer identical volume), and the
        # pin-retry loop must converge under a concurrent writer within
        # its budget (8 = the escalated write-gated final attempt) —
        # max_pin_attempts blowing past it means the escape hatch broke.
        ("snapshot_reads.overhead_vs_plain", "lower", 1.5),
        ("snapshot_reads.max_pin_attempts", "lower", 8.0),
        # Observability must stay near-free on the write path: the
        # instrumented server (registry counters, sampled guarantee
        # probes, engine series) may cost at most 5% over the
        # observe=False no-op fast path.  Absolute ratio, scale-robust:
        # both sides run the identical stream in the same process.
        ("observability_overhead.overhead_ratio", "lower", 1.05),
        # Parameterized views: one view + binding index vs a registered
        # view copy per binding.  Both guardrails are absolute ratios
        # and scale-robust: memory_ratio divides two measurements of
        # the same workload (one-view bytes over extrapolated
        # per-binding bytes — 5% is the headline guarantee, real runs
        # sit orders of magnitude below), and fanout_flatness divides
        # the per-update cost with thousands of bound subscribers by
        # the cost with four — the single O(δ) fan-out pass keeps it
        # near 1, so 5.0 only trips when fan-out degenerates to
        # per-subscriber re-evaluation.
        ("parameterized_views.memory_ratio", "lower", 0.05),
        ("parameterized_views.fanout_flatness", "lower", 5.0),
    ],
}


def dig(blob: Dict[str, object], path: str) -> Optional[float]:
    node: object = blob
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def dig_flag(blob: Dict[str, object], path: str) -> bool:
    """Truthiness of an arbitrary node (``dig`` rejects booleans)."""
    node: object = blob
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return False
        node = node[key]
    return bool(node)


def evaluate_experiment(
    name: str,
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float,
    baseline_name: str = "baseline",
    fresh_name: str = "fresh",
) -> List[Dict[str, object]]:
    """One machine-readable verdict record per tracked metric.

    ``status`` is ``"ok"``, ``"regressed"``, ``"skipped"`` (relative
    metric absent from the baseline) or ``"missing"`` (absent from the
    fresh run — counted as a regression).
    """
    records: List[Dict[str, object]] = []
    for entry in TRACKED[name]:
        path, direction, mode = entry[:3]
        requires = entry[3] if len(entry) > 3 else None
        record: Dict[str, object] = {
            "experiment": name,
            "metric": path,
            "direction": direction,
            "mode": "relative" if mode == "relative" else "absolute",
            "tolerance": tolerance if mode == "relative" else None,
        }
        if requires is not None and not dig_flag(fresh, requires):
            record.update(
                status="skipped",
                baseline=None,
                fresh=None,
                bound=None,
                note=f"{requires} is falsy in {fresh_name} "
                "(feature unavailable on this runner)",
            )
            records.append(record)
            continue
        base_value = dig(baseline, path)
        record["baseline"] = base_value
        if mode == "relative" and base_value is None:
            record.update(
                status="skipped",
                fresh=None,
                bound=None,
                note=f"not in {baseline_name} (predates this metric?)",
            )
            records.append(record)
            continue
        fresh_value = dig(fresh, path)
        record["fresh"] = fresh_value
        if fresh_value is None:
            record.update(
                status="missing",
                bound=None,
                note=f"missing from {fresh_name}; the bench stopped "
                "emitting it",
            )
            records.append(record)
            continue
        if mode == "relative":
            limit = (
                base_value * (1.0 - tolerance)
                if direction == "higher"
                else base_value * (1.0 + tolerance)
            )
        else:
            limit = float(mode)  # scale-dependent: absolute guardrail
        ok = (
            fresh_value >= limit
            if direction == "higher"
            else fresh_value <= limit
        )
        record.update(status="ok" if ok else "regressed", bound=limit)
        records.append(record)
    return records


def _record_line(record: Dict[str, object]) -> str:
    name = record["experiment"]
    path = record["metric"]
    if record["status"] == "skipped":
        return f"  skip {name}:{path} — {record['note']}"
    if record["status"] == "missing":
        return f"  {name}:{path} — {record['note']}"
    against = (
        f"baseline {record['baseline']:.3f}"
        if record["mode"] == "relative"
        else "absolute guardrail"
    )
    op = ">=" if record["direction"] == "higher" else "<="
    verdict = "ok" if record["status"] == "ok" else "REGRESSED"
    return (
        f"  {name}:{path} — fresh {record['fresh']:.3f} vs {against} "
        f"(need {op} {record['bound']:.3f}): {verdict}"
    )


def _load_and_evaluate(
    name: str,
    baseline_path: pathlib.Path,
    fresh_path: pathlib.Path,
    tolerance: float,
) -> List[Dict[str, object]]:
    """Read both JSON files and evaluate one experiment's tracked set."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    return evaluate_experiment(
        name,
        baseline,
        fresh,
        tolerance,
        baseline_name=baseline_path.name,
        fresh_name=fresh_path.name,
    )


def _regression_lines(records: List[Dict[str, object]]) -> List[str]:
    return [
        _record_line(record)
        for record in records
        if record["status"] in ("regressed", "missing")
    ]


def check_experiment(
    name: str,
    baseline_path: pathlib.Path,
    fresh_path: pathlib.Path,
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes) for one experiment's tracked set."""
    records = _load_and_evaluate(name, baseline_path, fresh_path, tolerance)
    notes = [_record_line(record) for record in records]
    return _regression_lines(records), notes


def render_step_summary(
    records: List[Dict[str, object]], tolerance: float
) -> str:
    """A GitHub job-summary markdown table of the gate's verdicts."""
    regressed = sum(
        1 for r in records if r["status"] in ("regressed", "missing")
    )
    headline = (
        "all tracked metrics within tolerance"
        if not regressed
        else f"{regressed} tracked metric(s) regressed"
    )
    lines = [
        "## Perf-regression gate",
        "",
        f"**{headline}** (tolerance {tolerance:.0%})",
        "",
        "| metric | fresh | bound | mode | verdict |",
        "|---|---|---|---|---|",
    ]
    icons = {
        "ok": "✅ ok",
        "regressed": "❌ regressed",
        "missing": "❌ missing",
        "skipped": "⏭ skipped",
    }
    for record in records:
        fresh = (
            f"{record['fresh']:.3f}" if record.get("fresh") is not None else "—"
        )
        bound = (
            f"{'≥' if record['direction'] == 'higher' else '≤'} "
            f"{record['bound']:.3f}"
            if record.get("bound") is not None
            else "—"
        )
        lines.append(
            f"| `{record['experiment']}:{record['metric']}` | {fresh} "
            f"| {bound} | {record['mode']} | {icons[str(record['status'])]} |"
        )
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-update-throughput",
        type=pathlib.Path,
        help="fresh bench_update_throughput.py JSON to compare",
    )
    parser.add_argument(
        "--fresh-serving",
        type=pathlib.Path,
        help="fresh bench_serving.py JSON to compare",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed relative regression (default 0.30; env override "
        "BENCH_REGRESSION_TOLERANCE, this flag wins)",
    )
    parser.add_argument(
        "--json-out",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable verdicts (one record per "
        "tracked metric plus the overall outcome) to this path",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.30"))
    if not 0 <= tolerance < 1:
        print(f"tolerance must be in [0, 1), got {tolerance}")
        return 2

    jobs: List[Tuple[str, pathlib.Path]] = []
    if args.fresh_update_throughput is not None:
        jobs.append(("update_throughput", args.fresh_update_throughput))
    if args.fresh_serving is not None:
        jobs.append(("serving", args.fresh_serving))
    if not jobs:
        print(
            "nothing to check: pass --fresh-update-throughput and/or "
            "--fresh-serving"
        )
        return 2

    all_regressions: List[str] = []
    all_records: List[Dict[str, object]] = []
    print(f"perf-regression gate (tolerance {tolerance:.0%})")
    for name, fresh_path in jobs:
        baseline_path = EXPERIMENTS[name]
        for path, label in ((baseline_path, "baseline"), (fresh_path, "fresh")):
            if not path.is_file():
                print(f"  {name}: {label} JSON missing: {path}")
                return 2
        records = _load_and_evaluate(name, baseline_path, fresh_path, tolerance)
        all_records.extend(records)
        print("\n".join(_record_line(record) for record in records))
        all_regressions.extend(_regression_lines(records))

    if args.json_out is not None:
        verdict_blob = {
            "tolerance": tolerance,
            "ok": not all_regressions,
            "metrics": all_records,
            "regressions": all_regressions,
        }
        args.json_out.write_text(
            json.dumps(verdict_blob, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote machine-readable verdicts to {args.json_out}")

    # Inside GitHub Actions, post the verdict table into the job
    # summary so the nightly/CI gate is readable without log digging.
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as summary:
            summary.write(render_step_summary(all_records, tolerance))

    if all_regressions:
        print()
        print(f"{len(all_regressions)} tracked metric(s) regressed:")
        print("\n".join(all_regressions))
        print(
            "\nIf this trade-off is intentional, raise the tolerance "
            "(--tolerance / BENCH_REGRESSION_TOLERANCE) for this run and "
            "refresh the committed baseline with a full bench run in the "
            "same PR."
        )
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CI perf-regression gate: fresh bench JSON vs the committed baselines.

The repository root carries the authoritative benchmark trajectories
(``BENCH_update_throughput.json``, ``BENCH_serving.json``, both from
full runs).  CI re-runs the benches in ``--quick`` mode and this script
compares the *tracked metrics* of the fresh JSON against the committed
baseline, failing the job when any of them regresses beyond a
tolerance.

Tracked metrics are deliberately **ratios** (speedup geomeans, the
cursor flatness ratio), not absolute updates/sec: ratios compare the
same code against its own in-process baseline, so they are largely
independent of runner hardware and of the ``--quick`` sizing, which is
what makes a quick CI run comparable against a committed full-run
baseline at all.  Absolute throughputs are still recorded in the JSON
artifacts (and the nightly full run) — they are just not gated.

Tolerance: default 30% (``--tolerance 0.30``), generous on purpose —
shared CI runners are noisy and the quick sizes amplify variance.  The
override knob for a PR that intentionally trades one metric away::

    python benchmarks/check_regression.py ... --tolerance 0.5

or ``BENCH_REGRESSION_TOLERANCE=0.5`` in the workflow environment
(the CLI flag wins).  A tracked metric missing from the *baseline* is
skipped with a note (older baselines predate newer benches); missing
from the *fresh* run it fails — the bench stopped emitting something
it should.

Exit status: 0 all tracked metrics within tolerance, 1 regression(s),
2 usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (baseline file, fresh-run CLI flag) per experiment.
EXPERIMENTS = {
    "update_throughput": REPO_ROOT / "BENCH_update_throughput.json",
    "serving": REPO_ROOT / "BENCH_serving.json",
}

#: experiment → list of (json dotted path, direction, mode).
#:
#: ``direction`` — ``higher`` means a drop is a regression; ``lower``
#: the reverse (cursor flatness: 1.0 is perfect, growth means paging
#: degrades).
#:
#: ``mode`` — ``"relative"`` gates against the committed baseline value
#: with the tolerance; a float gates against that **absolute** bound
#: instead.  Relative gating needs the metric to be scale-robust (the
#: compiled-vs-reference speedup geomeans barely move between --quick
#: and full sizes).  Metrics that *grow with the data size* — the O(δ)
#: capture speedup is ~O(|result|), bulk preprocessing gains with
#: volume — would always look "regressed" when a quick run meets a
#: full-run baseline, so they get absolute guardrails: generous enough
#: for quick sizes on a noisy runner, tight enough to turn red when the
#: optimisation is actually broken (speedup collapsing towards 1).
TRACKED: Dict[str, List[Tuple[str, str, object]]] = {
    "update_throughput": [
        ("aggregates.update_engine_geomean", "higher", "relative"),
        ("aggregates.update_procedure_geomean", "higher", "relative"),
        ("aggregates.preprocessing_geomean", "higher", 1.5),
        ("aggregates.merged_loader_geomean", "higher", "relative"),
    ],
    "serving": [
        ("cursor_resume.cursor_last_over_first", "lower", 3.0),
        ("subscription_delta.speedup", "higher", 10.0),
        ("sharded_writes.speedup_at_max_shards", "higher", 1.25),
        ("async_dispatch.writer_speedup", "higher", 1.5),
    ],
}


def dig(blob: Dict[str, object], path: str) -> Optional[float]:
    node: object = blob
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def check_experiment(
    name: str,
    baseline_path: pathlib.Path,
    fresh_path: pathlib.Path,
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes) for one experiment's tracked set."""
    regressions: List[str] = []
    notes: List[str] = []
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
    for path, direction, mode in TRACKED[name]:
        base_value = dig(baseline, path)
        if mode == "relative" and base_value is None:
            notes.append(
                f"  skip {name}:{path} — not in baseline "
                f"{baseline_path.name} (predates this metric?)"
            )
            continue
        fresh_value = dig(fresh, path)
        if fresh_value is None:
            regressions.append(
                f"  {name}:{path} — missing from the fresh run "
                f"({fresh_path.name}); the bench stopped emitting it"
            )
            continue
        if mode == "relative":
            limit = (
                base_value * (1.0 - tolerance)
                if direction == "higher"
                else base_value * (1.0 + tolerance)
            )
            against = f"baseline {base_value:.3f}"
        else:
            limit = float(mode)  # scale-dependent: absolute guardrail
            against = "absolute guardrail"
        if direction == "higher":
            ok = fresh_value >= limit
            bound = f">= {limit:.3f}"
        else:
            ok = fresh_value <= limit
            bound = f"<= {limit:.3f}"
        verdict = "ok" if ok else "REGRESSED"
        line = (
            f"  {name}:{path} — fresh {fresh_value:.3f} vs {against} "
            f"(need {bound}): {verdict}"
        )
        notes.append(line)
        if not ok:
            regressions.append(line)
    return regressions, notes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-update-throughput",
        type=pathlib.Path,
        help="fresh bench_update_throughput.py JSON to compare",
    )
    parser.add_argument(
        "--fresh-serving",
        type=pathlib.Path,
        help="fresh bench_serving.py JSON to compare",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed relative regression (default 0.30; env override "
        "BENCH_REGRESSION_TOLERANCE, this flag wins)",
    )
    args = parser.parse_args(argv)

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("BENCH_REGRESSION_TOLERANCE", "0.30"))
    if not 0 <= tolerance < 1:
        print(f"tolerance must be in [0, 1), got {tolerance}")
        return 2

    jobs: List[Tuple[str, pathlib.Path]] = []
    if args.fresh_update_throughput is not None:
        jobs.append(("update_throughput", args.fresh_update_throughput))
    if args.fresh_serving is not None:
        jobs.append(("serving", args.fresh_serving))
    if not jobs:
        print(
            "nothing to check: pass --fresh-update-throughput and/or "
            "--fresh-serving"
        )
        return 2

    all_regressions: List[str] = []
    print(f"perf-regression gate (tolerance {tolerance:.0%})")
    for name, fresh_path in jobs:
        baseline_path = EXPERIMENTS[name]
        for path, label in ((baseline_path, "baseline"), (fresh_path, "fresh")):
            if not path.is_file():
                print(f"  {name}: {label} JSON missing: {path}")
                return 2
        regressions, notes = check_experiment(
            name, baseline_path, fresh_path, tolerance
        )
        print("\n".join(notes))
        all_regressions.extend(regressions)

    if all_regressions:
        print()
        print(f"{len(all_regressions)} tracked metric(s) regressed:")
        print("\n".join(all_regressions))
        print(
            "\nIf this trade-off is intentional, raise the tolerance "
            "(--tolerance / BENCH_REGRESSION_TOLERANCE) for this run and "
            "refresh the committed baseline with a full bench run in the "
            "same PR."
        )
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""API-BATCH — transactional batches with net-effect compression.

The Session hot-path optimisation: a churny stream (most commands are
insert/delete pairs toggling a small hot set of tuples) is applied to
the same three live views — the Theorem 3.2 engine, the UCQ union
engine and the delta-IVM fallback — once command-by-command and once
through ``session.batch()``.  Compression cancels every pair inside the
window, so the per-view update fan-out (the expensive part: the
delta-IVM view pays a delta join per effective command) runs only for
the net changes that survive.

Measured: identical final results per view, the compression ratio of
the stream, and the wall-clock speedup of the batched application.
"""

import random
import time

from repro.api import Session
from repro.bench.reporting import format_table, format_time

from _common import emit, reset, scaled

VIEWS = {
    # engine auto-selection covers all three dichotomy branches.
    "feed": "V(x, y) :- R(x, y), S(x)",                      # qhierarchical
    "alerts": "U(x, y) :- R(x, y), S(x); U(x, y) :- T(x, y)",  # ucq_union
    "audit": "H(x, y) :- S(x), R(x, y), W(y)",               # delta_ivm
}

STREAM_SIZES = scaled([1000, 2000, 4000])
HOT_TUPLES = 25
CHURN = 0.9  # fraction of command pairs that toggle a hot tuple


def build_session() -> Session:
    session = Session()
    for name, text in VIEWS.items():
        session.view(name, text)
    return session


def churny_stream(pairs: int, rng: random.Random):
    """~2·pairs commands; CHURN of the pairs cancel within the stream."""
    from repro.storage.updates import delete, insert

    hot = [("R", (i, i + 1)) for i in range(HOT_TUPLES)]
    commands = []
    fresh = 10_000
    for _ in range(pairs):
        if rng.random() < CHURN:
            relation, row = hot[rng.randrange(len(hot))]
            commands.append(insert(relation, row))
            commands.append(delete(relation, row))
        else:
            # A persistent edge plus its endpoints' unary facts, so all
            # three views keep producing output tuples.
            fresh += 1
            commands.append(insert("R", (fresh, fresh + 1)))
            commands.append(insert("S", (fresh,)))
            commands.append(insert("T", (fresh, fresh + 1)))
            commands.append(insert("W", (fresh + 1,)))
    return commands


def test_batch_net_effect_compression(benchmark):
    reset("API-BATCH")
    rows = []
    speedups = []
    for pairs in STREAM_SIZES:
        commands = churny_stream(pairs, random.Random(pairs))

        sequential = build_session()
        start = time.perf_counter()
        sequential.apply_all(commands)
        per_command = time.perf_counter() - start

        batched = build_session()
        start = time.perf_counter()
        with batched.batch() as batch:
            batch.apply_all(commands)
        per_batch = time.perf_counter() - start

        # The optimisation must be invisible in the results.
        for name in VIEWS:
            assert batched[name].result_set() == sequential[name].result_set()
        assert batched.database == sequential.database

        stats = batch.stats
        speedup = per_command / per_batch
        speedups.append(speedup)
        rows.append(
            [
                len(commands),
                stats["net"],
                f"{len(commands) / max(stats['net'], 1):.1f}x",
                format_time(per_command),
                format_time(per_batch),
                f"{speedup:.1f}x",
            ]
        )

    emit(
        "API-BATCH",
        format_table(
            [
                "commands",
                "net changes",
                "compression",
                "per-command",
                "batched",
                "speedup",
            ],
            rows,
            title="API-BATCH: churny stream through session.batch() vs "
            "command-by-command (3 live views)",
        ),
    )

    # The headline claim: batching a churny stream beats per-command
    # application, and does so more clearly as the stream grows.
    assert max(speedups) > 2.0
    assert all(speedup > 1.2 for speedup in speedups)

    # pytest-benchmark probe: one mid-size batched application.
    commands = churny_stream(STREAM_SIZES[0], random.Random(7))

    def one_batched_replay():
        session = build_session()
        with session.batch() as batch:
            batch.apply_all(commands)
        return batch.stats["net"]

    benchmark(one_batched_replay)

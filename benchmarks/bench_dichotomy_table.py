"""DICHO — the classification table behind Theorems 1.1–1.3.

Regenerates, for every query the paper names, the verdicts its three
dichotomies assign: enumerability (Thm 1.1, self-join-free only),
Boolean answering (Thm 1.2, via the core), and counting (Thm 1.3, via
the core).  The benchmark times the full classification pipeline
(hierarchy tests + core computation + q-tree construction).
"""

from repro.bench.reporting import format_table
from repro.cq import zoo
from repro.cq.analysis import classify

from _common import emit, reset


def verdict_word(value):
    if value is True:
        return "easy"
    if value is False:
        return "hard"
    return "open"


def test_dichotomy_classification_table(benchmark):
    reset("DICHO")
    rows = []
    for name, query in zoo.PAPER_QUERIES.items():
        result = classify(query)
        rows.append(
            [
                name,
                str(query),
                "yes" if result.q_hierarchical else "no",
                "yes" if result.hierarchical else "no",
                verdict_word(result.enumeration_tractable),
                verdict_word(result.boolean_tractable),
                verdict_word(result.counting_tractable),
            ]
        )
    table = format_table(
        [
            "query",
            "definition",
            "q-hier",
            "hier",
            "enum (Thm 1.1)",
            "boolean (Thm 1.2)",
            "count (Thm 1.3)",
        ],
        rows,
        title="DICHO: the paper's dichotomies on its named queries",
    )
    emit("DICHO", table)

    # Spot-check the paper's headline statements.
    verdicts = {row[0]: row for row in rows}
    assert verdicts["S_E_T"][4] == "hard"  # Thm 3.3 example
    assert verdicts["E_T"][5] == "easy"  # ∃x ϕE-T is q-hierarchical
    assert verdicts["E_T"][6] == "hard"  # Lemma 5.5
    assert verdicts["LOOP_TRIANGLE"][5] == "easy"  # core is ∃x Exx
    assert verdicts["PHI_1"][4] == "open"  # self-join frontier
    assert verdicts["PHI_2"][4] == "open"  # resolved positively by Lemma A.2
    assert verdicts["EXAMPLE_6_1"][4] == "easy"

    def classify_zoo():
        return [classify(q) for q in zoo.PAPER_QUERIES.values()]

    benchmark(classify_zoo)

"""FIG1 — regenerate Figure 1: two q-trees for the same query.

Paper artefact: Figure 1 shows two valid q-trees for
``ϕ(x1, x2, x3) = ∃x4 ∃x5 (E x1 x2 ∧ R x4 x1 x2 x1 ∧ R x5 x3 x2 x1)``,
one rooted at ``x1``, one at ``x2``.  The benchmark times the Lemma 4.2
construction and prints both trees.
"""

from repro.core.qtree import build_q_tree
from repro.core.render import render_q_tree
from repro.cq import zoo

from _common import emit, reset


def test_fig1_two_q_trees(benchmark):
    reset("FIG1")
    left = build_q_tree(zoo.FIGURE_1, prefer=("x1",))
    right = build_q_tree(zoo.FIGURE_1, prefer=("x2",))

    # Paper shape: both roots admissible, free variables on top.
    assert left.root == "x1" and right.root == "x2"
    assert left.is_valid() and right.is_valid()
    assert set(left.children["x2"]) == {"x3", "x4"}
    assert set(right.children["x1"]) == {"x3", "x4"}

    emit("FIG1", "Figure 1 (left): q-tree rooted at x1")
    emit("FIG1", render_q_tree(left))
    emit("FIG1", "\nFigure 1 (right): q-tree rooted at x2")
    emit("FIG1", render_q_tree(right))

    benchmark(lambda: build_q_tree(zoo.FIGURE_1, prefer=("x1",)))

"""FREP — the f-representation claim of Section 3, measured.

Paper claim: "The dynamic data structure that is computed by our
algorithm can be viewed as an f-representation of the query result"
(Olteanu–Závodný [31]).  :mod:`repro.core.factorized` exports that
representation; this bench measures its succinctness: on the
two-free-leaf star the flat result has Θ(n²) symbols while the
factorized export has Θ(n) — the compression ratio grows linearly, with
export time linear in the *structure*, not the result.
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import growth_exponent
from repro.core.engine import QHierarchicalEngine
from repro.core.factorized import compression_ratio, factorize, flat_size
from repro.cq.zoo import star_query
from repro.storage.database import Database

from _common import emit, reset, scaled

QUERY = star_query(2, free_leaves=2)
SIZES = scaled([50, 100, 200, 400])


def star_db(n: int) -> Database:
    return Database.from_dict(
        {
            "S": [(0,)],
            "E1": [(0, i) for i in range(n)],
            "E2": [(0, i) for i in range(n)],
        }
    )


def test_frep_compression(benchmark):
    reset("FREP")
    rows = []
    ratios = []
    for n in SIZES:
        engine = QHierarchicalEngine(QUERY, star_db(n))
        structure = engine.structures[0]

        start = time.perf_counter()
        expression = factorize(structure)
        export_time = time.perf_counter() - start

        assert expression.count() == n * n == structure.count()
        ratio = compression_ratio(structure)
        ratios.append(ratio)
        rows.append(
            [
                n,
                flat_size(structure),
                expression.size(),
                f"{ratio:.1f}x",
                format_time(export_time),
            ]
        )

    emit(
        "FREP",
        format_table(
            ["n", "flat symbols", "factorized symbols", "ratio", "export"],
            rows,
            title="FREP: f-representation export of the star result "
            "(n² tuples, Θ(n) representation)",
        ),
    )
    # The ratio itself must grow ~linearly in n.
    assert growth_exponent(SIZES, ratios) > 0.8

    engine = QHierarchicalEngine(QUERY, star_db(SIZES[-1]))
    benchmark(lambda: factorize(engine.structures[0]))

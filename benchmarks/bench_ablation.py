"""ABL — ablations of the Section 6 design choices.

DESIGN.md calls out two load-bearing pieces of the data structure; each
gets an ablation showing what breaks without it:

* **Fit lists** (ABL-FIT).  The lists contain *only* fit items, so the
  enumeration never visits a dead branch.  The ablated enumerator scans
  all *present* items and filters by weight — on an adversarial
  database where most items are present-but-unfit (R-tuples with no
  matching S-tuple), its full-enumeration cost grows linearly while the
  fit-list enumeration stays flat.

* **C̃ weights** (ABL-COUNT).  Without the Section 6.5 counters, the
  only exact count is by enumeration; its cost grows with the result
  size while ``count()`` stays at two dictionary reads.
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import growth_exponent
from repro.core.engine import QHierarchicalEngine
from repro.cq.parser import parse_query
from repro.storage.database import Database

from _common import emit, reset, scaled

# Both atoms are represented by the same q-tree node (y), so an item
# [y, (x, y)] is present when R *or* S holds but fit only when both do.
QUERY = parse_query("Q(x, y) :- R(x, y), S(x, y)")
SIZES = scaled([500, 1000, 2000, 4000])


def adversarial_database(n: int) -> Database:
    """n present y-items under one x, only one of them fit."""
    return Database.from_dict(
        {
            "R": [(0, i) for i in range(n)],
            "S": [(0, 0)],
        }
    )


def ablated_enumerate(structure):
    """Enumeration WITHOUT fit lists: scan present items, filter."""
    root = structure.qtree.root
    (child,) = structure.qtree.children[root]
    for root_item in structure.items_at(root):
        if root_item.weight == 0:
            continue
        for child_item in structure.items_at(child):
            if child_item.weight == 0:
                continue
            if child_item.key[: len(root_item.key)] != root_item.key:
                continue
            yield (child_item.key[0], child_item.key[1])


def test_ablation_fit_lists(benchmark):
    reset("ABL")
    rows = []
    with_lists, without_lists = [], []
    repeats = 7
    for n in SIZES:
        engine = QHierarchicalEngine(QUERY, adversarial_database(n))
        structure = engine.structures[0]

        real_times, ablated_times = [], []
        for _ in range(repeats):
            start = time.perf_counter()
            real = list(structure.enumerate())
            real_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            ablated = list(ablated_enumerate(structure))
            ablated_times.append(time.perf_counter() - start)
        t_real = min(real_times)  # min: least-noise estimate
        t_ablated = min(ablated_times)

        assert set(real) == set(ablated) == {(0, 0)}
        with_lists.append(t_real)
        without_lists.append(t_ablated)
        rows.append([n, format_time(t_real), format_time(t_ablated)])

    emit(
        "ABL",
        format_table(
            ["n (unfit items)", "fit lists", "ablated (scan+filter)"],
            rows,
            title="ABL-FIT: full enumeration cost, 1 result among n-1 "
            "unfit items",
        ),
    )
    assert growth_exponent(SIZES, with_lists) < 0.5
    assert growth_exponent(SIZES, without_lists) > 0.6

    engine = QHierarchicalEngine(QUERY, adversarial_database(SIZES[-1]))
    benchmark(lambda: list(engine.structures[0].enumerate()))


def test_ablation_count_weights(benchmark):
    """ABL-COUNT: O(1) C̃ counters vs. counting by enumeration."""
    rows = []
    o1_counts, enum_counts = [], []
    for n in SIZES:
        # A dense database: result size Θ(n).
        database = Database.from_dict(
            {
                "R": [(i, (i * 3) % n) for i in range(n)],
                "S": [(i, (i * 3) % n) for i in range(n)],
            }
        )
        engine = QHierarchicalEngine(QUERY, database)

        fast_times, slow_times = [], []
        for _ in range(5):
            start = time.perf_counter()
            fast = engine.count()
            fast_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            slow = sum(1 for _ in engine.enumerate())
            slow_times.append(time.perf_counter() - start)
        t_fast, t_slow = min(fast_times), min(slow_times)

        assert fast == slow == n
        o1_counts.append(t_fast)
        enum_counts.append(t_slow)
        rows.append([n, format_time(t_fast), format_time(t_slow)])

    emit(
        "ABL",
        format_table(
            ["n", "count() via weights", "count via enumeration"],
            rows,
            title="ABL-COUNT: O(1) counters vs counting by enumeration",
        ),
    )
    assert growth_exponent(SIZES, o1_counts) < 0.5
    assert growth_exponent(SIZES, enum_counts) > 0.6

    engine = QHierarchicalEngine(
        QUERY,
        Database.from_dict(
            {"R": [(i, i) for i in range(SIZES[0])], "S": [(i, i) for i in range(SIZES[0])]}
        ),
    )
    benchmark(engine.count)

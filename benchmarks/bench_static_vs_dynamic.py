"""SEC12 — "statically easy, dynamically hard" (Section 1.2).

The paper's framing result: ``ϕ_E-T`` is free-connex acyclic, so the
Bagan–Durand–Grandjean machinery enumerates it with constant delay
after linear *static* preprocessing — yet Theorem 3.3 forbids any
dynamic algorithm with sublinear update time.  q-hierarchicality is
exactly what separates the lucky queries.

Measured: for ϕ_E-T, the static enumerator's per-tuple delay stays flat
while its preprocessing (which a dynamic deployment would re-pay after
every update) grows linearly; the only dynamic options are the
baselines, whose per-update cost also grows.  For the q-hierarchical
variant (all variables free), the dynamic engine eliminates the
re-preprocessing entirely.

The dynamic side goes through the Session API: registering ϕ_E-T as a
live view lets the planner itself demonstrate the dichotomy — it
auto-selects the delta-IVM baseline for ϕ_E-T (not q-hierarchical) and
the Theorem 3.2 engine for the quantifier-free variant.
"""

import random
import time

from repro.api import Session
from repro.bench.reporting import format_table, format_time
from repro.bench.timing import DelayRecorder, growth_exponent
from repro.cq import zoo
from repro.eval_static.freeconnex import FreeConnexEnumerator
from repro.storage.database import Database

from _common import emit, reset, scaled

SIZES = scaled([500, 1000, 2000, 4000])


def e_t_database(n: int, rng: random.Random) -> Database:
    edges = {(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)}
    targets = [(t,) for t in range(0, n, 2)]
    return Database.from_dict({"E": sorted(edges), "T": targets})


def test_static_easy_dynamic_hard(benchmark):
    reset("SEC12")
    rows = []
    preprocess_times, delays, update_times = [], [], []
    for n in SIZES:
        rng = random.Random(n)
        database = e_t_database(n, rng)

        # Static side: BDG preprocessing + constant-delay enumeration.
        start = time.perf_counter()
        enumerator = FreeConnexEnumerator(zoo.E_T, database)
        preprocess = time.perf_counter() - start
        recorder = DelayRecorder()
        produced = recorder.consume(enumerator.enumerate(), limit=500)
        assert produced > 0
        assert enumerator.constant_delay

        # Dynamic side: a Session view; the planner auto-selects the
        # delta-IVM baseline (ϕ_E-T is not q-hierarchical), hub updates.
        session = Session()
        view = session.view("et", zoo.E_T)
        assert view.engine_name == "delta_ivm"
        session.ingest(database)
        hub = 1  # target vertex with many E partners
        for i in range(3 * n // 10):
            session.insert("E", (i % n, hub))
        rounds = 20
        start = time.perf_counter()
        for step in range(rounds):
            if step % 2 == 0:
                session.insert("T", (hub,))
            else:
                session.delete("T", (hub,))
            view.count()
        per_update = (time.perf_counter() - start) / rounds

        preprocess_times.append(preprocess)
        delays.append(recorder.median_delay)
        update_times.append(per_update)
        rows.append(
            [
                n,
                format_time(preprocess),
                format_time(recorder.median_delay),
                format_time(per_update),
            ]
        )

    emit(
        "SEC12",
        format_table(
            [
                "n",
                "static preprocess (BDG)",
                "static per-tuple delay",
                "dynamic per-update (delta IVM)",
            ],
            rows,
            title="SEC12: ϕ_E-T — statically constant-delay, dynamically "
            "linear per update",
        ),
    )

    assert growth_exponent(SIZES, delays) < 0.45  # static delay flat
    assert growth_exponent(SIZES, preprocess_times) > 0.6  # re-preprocessing is linear
    assert growth_exponent(SIZES, update_times) > 0.5  # dynamic updates grow

    emit(
        "SEC12",
        "\nq-hierarchical contrast: the quantifier-free variant "
        "ϕ_E-T_qf needs no re-preprocessing at all —",
    )
    database = e_t_database(SIZES[-1], random.Random(0))
    session = Session()
    fast = session.view("et_qf", zoo.E_T_QF)
    assert fast.engine_name == "qhierarchical"  # the planner's other branch
    session.ingest(database)
    start = time.perf_counter()
    rounds = 50
    for step in range(rounds):
        if step % 2 == 0:
            session.insert("T", (1,))
        else:
            session.delete("T", (1,))
        fast.count()
    per_round = (time.perf_counter() - start) / rounds
    emit(
        "SEC12",
        f"ϕ_E-T_qf dynamic round at n={SIZES[-1]}: {format_time(per_round)}",
    )

    rng = random.Random(4)
    database = e_t_database(SIZES[0], rng)
    benchmark.pedantic(
        lambda: FreeConnexEnumerator(zoo.E_T, database),
        rounds=3,
        iterations=1,
    )

"""LEMA1 — Lemma A.1: the self-join query ϕ1 is OMv-hard to enumerate.

Paper claim: enumerating ``ϕ1(x,y) = (Exx ∧ Exy ∧ Eyy)`` with
O(n^{1-ε}) update time and delay would solve OuMv in O(n^{3-ε}).  The
reduction encodes the matrix as a bipartite graph and the vectors as
loops; each round reads at most ``2n+1`` output tuples.  Run with the
baselines, checked bit-exactly, cost growth reported.
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import growth_exponent
from repro.ivm import DeltaIVMEngine, RecomputeEngine
from repro.lowerbounds.omv import solve_oumv_naive
from repro.lowerbounds.reductions import OuMvPhi1Reduction
from repro.workloads.matrices import random_oumv_instance

from _common import emit, reset, scaled

SIZES = scaled([8, 12, 18, 27])


def test_lemma_a1_oumv_via_phi1(benchmark):
    reset("LEMA1")
    rows = []
    per_round = []
    for n in SIZES:
        rng = random.Random(n * 7)
        instance = random_oumv_instance(rng, n=n, vector_density=0.5)
        expected = solve_oumv_naive(instance)

        elapsed = float("inf")
        for _ in range(2):  # best-of-2 damps scheduler noise
            reduction = OuMvPhi1Reduction(DeltaIVMEngine)
            start = time.perf_counter()
            got = reduction.solve(instance)
            elapsed = min(elapsed, time.perf_counter() - start)
            assert got == expected
        per_round.append(elapsed / n)

        slow = OuMvPhi1Reduction(RecomputeEngine)
        start = time.perf_counter()
        assert slow.solve(instance) == expected
        slow_elapsed = time.perf_counter() - start

        rows.append(
            [
                n,
                format_time(elapsed / n),
                format_time(slow_elapsed / n),
                reduction.updates_issued,
            ]
        )

    emit(
        "LEMA1",
        format_table(
            ["n", "delta_ivm / round", "recompute / round", "updates issued"],
            rows,
            title="LEMA1: OuMv solved through enumerating ϕ1 (self-join)",
        ),
    )
    exponent = growth_exponent(SIZES, per_round)
    emit("LEMA1", f"per-round growth exponent [delta_ivm]: {exponent:+.2f}")
    assert exponent > 0.6

    rng = random.Random(3)
    instance = random_oumv_instance(rng, n=SIZES[0])
    reduction = OuMvPhi1Reduction(DeltaIVMEngine)
    benchmark.pedantic(
        lambda: reduction.solve(instance), rounds=3, iterations=1
    )

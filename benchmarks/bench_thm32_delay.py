"""THM32-E — Theorem 3.2(a): constant-delay enumeration.

Paper claim: after linear preprocessing the result of a q-hierarchical
query can be enumerated with delay poly(ϕ) — independent of n — and the
enumeration can restart immediately after each O(1) update.

Measured shape: median and p99 per-tuple delay of the q-hierarchical
engine stay flat across n, while the recompute baseline's *time to
first tuple* grows linearly (it must evaluate before it can emit).
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import DelayRecorder, growth_exponent
from repro.cq.zoo import star_query
from repro.interface import make_engine

from _common import emit, hub_star_database, reset, scaled

QUERY = star_query(2, free_leaves=1)  # S(x) ∧ E1(x,y1) ∧ E2(x,y2), free (x,y1)
SIZES = scaled([300, 600, 1200, 2400])
LIMIT = 1000  # tuples consumed per enumeration pass


def test_thm32_constant_delay(benchmark):
    reset("THM32-E")
    rows = []
    medians, p99s, firsts = [], [], []
    for n in SIZES:
        rng = random.Random(n)
        database = hub_star_database(n, rng)
        fast = make_engine("qhierarchical", QUERY, database)
        recorder = DelayRecorder()
        recorder.consume(fast.enumerate(), limit=LIMIT)

        slow = make_engine("recompute", QUERY, database)
        start = time.perf_counter()
        next(iter(slow.enumerate()))
        first_tuple = time.perf_counter() - start

        medians.append(recorder.median_delay)
        p99s.append(recorder.percentile_delay(99))
        firsts.append(first_tuple)
        rows.append(
            [
                n,
                format_time(recorder.median_delay),
                format_time(recorder.percentile_delay(99)),
                format_time(first_tuple),
            ]
        )

    emit(
        "THM32-E",
        format_table(
            ["n", "qh median delay", "qh p99 delay", "recompute first tuple"],
            rows,
            title="THM32-E: per-tuple delay vs n",
        ),
    )

    assert growth_exponent(SIZES, medians) < 0.45
    assert growth_exponent(SIZES, firsts) > 0.5

    engine = make_engine(
        "qhierarchical", QUERY, hub_star_database(SIZES[-1], random.Random(1))
    )

    def enumerate_prefix():
        recorder = DelayRecorder()
        return recorder.consume(engine.enumerate(), limit=LIMIT)

    benchmark(enumerate_prefix)

"""THM32-C — Theorem 3.2(b): O(1) counting under updates.

Paper claim: ``|ϕ(D)|`` is available in constant time at every moment,
maintained through the ``C̃`` weights of Section 6.5 (the query here has
a quantified leaf, so plain valuation counts would over-count).

Measured shape: count() latency of the q-hierarchical engine is flat in
n; the recompute baseline's count grows linearly.  Counts agree.
"""

import random
import time

from repro.bench.harness import ScalingExperiment
from repro.cq.zoo import star_query
from repro.interface import make_engine

from _common import emit, hub_star_database, hub_toggle_commands, reset, scaled

QUERY = star_query(2, free_leaves=1)  # y2 stays quantified: exercises C̃
SIZES = scaled([300, 600, 1200, 2400])


def measure(engine_name: str, n: int, rng: random.Random) -> float:
    database = hub_star_database(n, rng)
    engine = make_engine(engine_name, QUERY, database)
    repeats = 20
    total = 0.0
    for command in hub_toggle_commands(n, repeats):
        engine.apply(command)  # dirty the caches between counts
        start = time.perf_counter()
        engine.count()
        total += time.perf_counter() - start
    return total / (2 * repeats)


def test_thm32_constant_count(benchmark):
    reset("THM32-C")
    # Cross-engine value check first.
    rng = random.Random(7)
    database = hub_star_database(SIZES[0], rng)
    fast = make_engine("qhierarchical", QUERY, database)
    slow = make_engine("recompute", QUERY, database)
    assert fast.count() == slow.count() > 0

    experiment = ScalingExperiment(
        title="THM32-C: seconds per count() after an update",
        sizes=SIZES,
        measure=measure,
        engines=["qhierarchical", "recompute"],
    ).run()
    emit("THM32-C", experiment.render())

    assert experiment.exponent("qhierarchical") < 0.4
    assert experiment.exponent("recompute") > 0.55

    engine = make_engine(
        "qhierarchical", QUERY, hub_star_database(SIZES[-1], random.Random(2))
    )
    benchmark(engine.count)

"""FIG2 — regenerate Figure 2: the annotated q-tree of Example 6.1.

Paper artefact: Figure 2 shows the q-tree of
``ϕ = (Rxyz ∧ Rxyz' ∧ Exy ∧ Exy' ∧ Sxyz)`` with the ``rep(v)`` and
``atoms(v)`` sets at every node.  The benchmark asserts the exact tree
shape and rep-sets and prints the annotated rendering.
"""

from repro.core.qtree import build_q_tree
from repro.core.render import render_q_tree
from repro.cq import zoo

from _common import emit, reset


def test_fig2_annotated_q_tree(benchmark):
    reset("FIG2")
    tree = build_q_tree(zoo.EXAMPLE_6_1)

    assert tree.root == "x"
    assert tree.children["x"] == ["y", "y'"]
    assert tree.children["y"] == ["z", "z'"]

    atoms = zoo.EXAMPLE_6_1.atoms
    rep_sets = {
        node: sorted(str(atoms[i]) for i in tree.rep[node])
        for node in tree.parent
    }
    assert rep_sets == {
        "x": [],
        "y": ["E(x, y)"],
        "y'": ["E(x, y')"],
        "z": ["R(x, y, z)", "S(x, y, z)"],
        "z'": ["R(x, y, z')"],
    }

    emit("FIG2", "Figure 2: q-tree for Example 6.1 with rep/atoms sets")
    emit("FIG2", render_q_tree(tree, annotate=True))

    benchmark(lambda: build_q_tree(zoo.EXAMPLE_6_1))

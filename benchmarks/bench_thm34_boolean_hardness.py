"""THM34 — Theorem 3.4 / Lemma 5.3: OuMv through Boolean answering.

Paper claim: answering the Boolean ``ϕ'_S-E-T`` (non-q-hierarchical
core) with O(n^{1-ε}) update and O(n^{2-ε}) answer time would solve
OuMv in O(n^{3-ε}).  We run the reduction with both baselines, check
bit-exactness against the direct OuMv solver, and measure the per-round
cost growth (super-linear, as the conjecture demands of any real
implementation).
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.bench.timing import growth_exponent
from repro.cq import zoo
from repro.ivm import DeltaIVMEngine, RecomputeEngine
from repro.lowerbounds.omv import solve_oumv_naive, solve_oumv_numpy
from repro.lowerbounds.reductions import OuMvBooleanReduction
from repro.workloads.matrices import random_oumv_instance

from _common import emit, reset, scaled

SIZES = scaled([8, 12, 18, 27])


def test_thm34_oumv_via_boolean_answering(benchmark):
    reset("THM34")
    rows = []
    per_round = {"delta_ivm": [], "recompute": []}
    for n in SIZES:
        rng = random.Random(n * 13)
        instance = random_oumv_instance(rng, n=n)
        expected = solve_oumv_naive(instance)

        timings = {}
        for name, engine_cls in [
            ("delta_ivm", DeltaIVMEngine),
            ("recompute", RecomputeEngine),
        ]:
            best = float("inf")
            for _ in range(2):  # best-of-2 damps scheduler noise
                reduction = OuMvBooleanReduction(zoo.S_E_T_BOOLEAN, engine_cls)
                start = time.perf_counter()
                got = reduction.solve(instance)
                elapsed = time.perf_counter() - start
                assert got == expected
                best = min(best, elapsed)
            timings[name] = best
            per_round[name].append(best / n)

        start = time.perf_counter()
        solve_oumv_numpy(instance)
        direct = time.perf_counter() - start

        rows.append(
            [
                n,
                format_time(timings["delta_ivm"] / n),
                format_time(timings["recompute"] / n),
                format_time(direct / n),
                reduction.updates_issued,
            ]
        )

    emit(
        "THM34",
        format_table(
            [
                "n",
                "delta_ivm / round",
                "recompute / round",
                "numpy direct / round",
                "updates issued",
            ],
            rows,
            title="THM34: OuMv solved through Boolean answering of ϕ'_S-E-T",
        ),
    )

    for name, series in per_round.items():
        exponent = growth_exponent(SIZES, series)
        emit("THM34", f"per-round growth exponent [{name}]: {exponent:+.2f}")
        assert exponent > 0.6, name

    rng = random.Random(1)
    instance = random_oumv_instance(rng, n=SIZES[0])
    reduction = OuMvBooleanReduction(zoo.S_E_T_BOOLEAN, DeltaIVMEngine)
    benchmark.pedantic(
        lambda: reduction.solve(instance), rounds=3, iterations=1
    )

"""FIG3 — regenerate Figure 3: the data structure for Example 6.1.

Paper artefact: Figure 3(a) draws the items and weights for D0
(``C_start = 23``); Figure 3(b) the state after ``insert E(b, p)``
(``C_start = 38``).  The benchmark asserts every printed weight and
times exactly the transition the figure depicts (one insert, and the
inverse delete to return to (a)).
"""

from repro.core.engine import QHierarchicalEngine
from repro.core.render import render_structure
from repro.cq import zoo

from _common import emit, reset

EXAMPLE_E = sorted([("a", "e"), ("a", "f"), ("b", "d"), ("b", "g"), ("b", "h")])
EXAMPLE_S = sorted(
    [("a", "e", "a"), ("a", "e", "b"), ("a", "f", "c"), ("b", "g", "b"), ("b", "p", "a")]
)
EXAMPLE_R = sorted(
    EXAMPLE_S
    + [("a", "e", "c"), ("b", "g", "a"), ("b", "g", "c"), ("b", "p", "b"), ("b", "p", "c")]
)


def build_engine() -> QHierarchicalEngine:
    engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
    for row in EXAMPLE_E:
        engine.insert("E", row)
    for row in EXAMPLE_R:
        engine.insert("R", row)
    for row in EXAMPLE_S:
        engine.insert("S", row)
    return engine


def test_fig3_structure_states(benchmark):
    reset("FIG3")
    engine = build_engine()
    structure = engine.structures[0]

    # Figure 3(a) weights.
    assert structure.c_start == 23
    assert structure.item("x", ("a",)).weight == 14
    assert structure.item("x", ("b",)).weight == 9
    assert structure.item("y", ("a", "e")).weight == 6
    assert structure.item("y", ("b", "p")).weight == 0  # present, unfit

    emit("FIG3", "Figure 3(a): structure for D0")
    emit("FIG3", render_structure(structure))

    engine.insert("E", ("b", "p"))

    # Figure 3(b) weights.
    assert structure.c_start == 38
    assert structure.item("x", ("b",)).weight == 24
    assert structure.item("y", ("b", "p")).weight == 3

    emit("FIG3", "\nFigure 3(b): structure after insert E(b, p)")
    emit("FIG3", render_structure(structure))

    engine.delete("E", ("b", "p"))
    assert structure.c_start == 23

    def figure_transition():
        engine.insert("E", ("b", "p"))
        engine.delete("E", ("b", "p"))

    benchmark(figure_transition)

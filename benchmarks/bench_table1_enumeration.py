"""TAB1 — regenerate Table 1: the enumeration of ϕ(D0).

Paper artefact: Table 1 lists the 23 result tuples of Example 6.1 in
the exact order Algorithm 1 visits them (document order x, y, z, z',
y'; rightmost fastest).  The benchmark asserts the full sequence and
times one complete constant-delay enumeration pass.
"""

from repro.bench.reporting import format_table
from repro.core.engine import QHierarchicalEngine
from repro.core.enumeration import algorithm1
from repro.cq import zoo

from _common import emit, reset
from bench_fig3_structure import build_engine

# Table 1 in display order (x, y, z, z', y'), 23 columns.
TABLE_1_DISPLAY = [
    ("a", "e", "a", "a", "e"), ("a", "e", "a", "a", "f"),
    ("a", "e", "a", "b", "e"), ("a", "e", "a", "b", "f"),
    ("a", "e", "a", "c", "e"), ("a", "e", "a", "c", "f"),
    ("a", "e", "b", "a", "e"), ("a", "e", "b", "a", "f"),
    ("a", "e", "b", "b", "e"), ("a", "e", "b", "b", "f"),
    ("a", "e", "b", "c", "e"), ("a", "e", "b", "c", "f"),
    ("a", "f", "c", "c", "e"), ("a", "f", "c", "c", "f"),
    ("b", "g", "b", "a", "d"), ("b", "g", "b", "a", "g"),
    ("b", "g", "b", "a", "h"), ("b", "g", "b", "b", "d"),
    ("b", "g", "b", "b", "g"), ("b", "g", "b", "b", "h"),
    ("b", "g", "b", "c", "d"), ("b", "g", "b", "c", "g"),
    ("b", "g", "b", "c", "h"),
]
# The query's output order is (x, y, z, y', z').
TABLE_1_ROWS = [(x, y, z, yp, zp) for (x, y, z, zp, yp) in TABLE_1_DISPLAY]


def test_table1_enumeration_order(benchmark):
    reset("TAB1")
    engine = build_engine()
    structure = engine.structures[0]

    rows = list(engine.enumerate())
    assert rows == TABLE_1_ROWS
    assert list(algorithm1(structure)) == TABLE_1_ROWS

    # Print in the paper's row-per-variable layout.
    emit("TAB1", "Table 1: enumeration of ϕ(D0) (paper layout)")
    display = list(zip(*TABLE_1_DISPLAY))
    table = format_table(
        ["var"] + [str(i + 1) for i in range(len(TABLE_1_DISPLAY))],
        [
            [name] + list(values)
            for name, values in zip(["x", "y", "z", "z'", "y'"], display)
        ],
    )
    emit("TAB1", table)

    benchmark(lambda: list(engine.enumerate()))

"""THM35 — Theorem 3.5 / Lemmas 5.5 + 5.8: OV through dynamic counting.

Paper claim: maintaining ``|ϕ_E-T(D)|`` with O(n^{1-ε}) update and
count time would solve OV in subquadratic time, contradicting
OV/SETH.  The executable reduction drives the full Lemma 5.8 stack —
``(k+1)·2^k`` replicated engines, Vandermonde solves, inclusion–
exclusion — at the paper's dimension ``d = ⌈log2 n⌉``, is checked
bit-exactly against the direct solver, and its cost is reported next
to the O(n²d) direct evaluations.
"""

import random
import time

from repro.bench.reporting import format_table, format_time
from repro.cq import zoo
from repro.ivm import DeltaIVMEngine
from repro.lowerbounds.counting_lemma import Lemma58Counter
from repro.lowerbounds.ov import log_dimension, solve_ov_naive, solve_ov_numpy
from repro.lowerbounds.reductions import OVCountingReduction
from repro.workloads.matrices import random_ov_instance

from _common import emit, reset, scaled

SIZES = scaled([6, 10, 16, 24])


def test_thm35_ov_via_counting(benchmark):
    reset("THM35")
    rows = []
    for n in SIZES:
        rng = random.Random(n * 31)
        instance = random_ov_instance(rng, n=n, density=0.6)
        expected = solve_ov_naive(instance)

        reduction = OVCountingReduction(zoo.E_T, DeltaIVMEngine)
        start = time.perf_counter()
        got = reduction.solve(instance)
        via_counting = time.perf_counter() - start
        assert got == expected

        start = time.perf_counter()
        solve_ov_naive(instance)
        naive = time.perf_counter() - start
        start = time.perf_counter()
        solve_ov_numpy(instance)
        vectorised = time.perf_counter() - start

        rows.append(
            [
                n,
                log_dimension(n),
                "yes" if expected else "no",
                format_time(via_counting),
                format_time(naive),
                format_time(vectorised),
                reduction.updates_issued,
            ]
        )

    emit(
        "THM35",
        format_table(
            [
                "n",
                "d",
                "orthogonal pair",
                "via dynamic counting",
                "naive direct",
                "numpy direct",
                "updates issued",
            ],
            rows,
            title="THM35: OV solved through dynamic counting of ϕ_E-T "
            "(Lemma 5.8 stack)",
        ),
    )

    # The Lemma 5.8 fan-out is (k+1)·2^k = 4 engines for k = 1.
    counter = Lemma58Counter(
        zoo.E_T, DeltaIVMEngine, {"x": {("a", 1)}}
    )
    emit("THM35", f"Lemma 5.8 auxiliary engines: {counter.engine_count} (k=1)")
    assert counter.engine_count == 4

    rng = random.Random(2)
    instance = random_ov_instance(rng, n=SIZES[0], density=0.6)
    reduction = OVCountingReduction(zoo.E_T, DeltaIVMEngine)
    benchmark.pedantic(
        lambda: reduction.solve(instance), rounds=3, iterations=1
    )


def test_thm35_case_i_oumv_via_counting(benchmark):
    """Theorem 3.5's *first* case: the core violates condition (i).

    The paper's motivating example: counting ``ϕ1(x,y) = (Exx ∧ Exy ∧
    Eyy)`` is hard although its Boolean version is trivial (core ∃x
    Exx).  The OuMv reduction goes through Lemma 5.8's good-homomorphism
    counting; run for real and checked bit-exactly.
    """
    import time

    from repro.lowerbounds.omv import solve_oumv_naive
    from repro.lowerbounds.reductions import OuMvCountingReduction
    from repro.workloads.matrices import random_oumv_instance

    rows = []
    for n in [5, 8, 12]:
        rng = random.Random(n * 17)
        instance = random_oumv_instance(rng, n=n)
        expected = solve_oumv_naive(instance)
        reduction = OuMvCountingReduction(zoo.PHI_1, DeltaIVMEngine)
        start = time.perf_counter()
        got = reduction.solve(instance)
        elapsed = time.perf_counter() - start
        assert got == expected
        rows.append(
            [n, format_time(elapsed / n), reduction.updates_issued]
        )
    emit(
        "THM35",
        format_table(
            ["n", "per round (delta_ivm inside Lemma 5.8)", "updates issued"],
            rows,
            title="THM35 case (i): OuMv via counting ϕ1 — Boolean version "
            "is trivial, counting is not",
        ),
    )

    rng = random.Random(3)
    instance = random_oumv_instance(rng, n=5)
    reduction = OuMvCountingReduction(zoo.PHI_1, DeltaIVMEngine)
    benchmark.pedantic(
        lambda: reduction.solve(instance), rounds=2, iterations=1
    )

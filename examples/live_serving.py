"""Live serving: cursors, delta subscriptions and a concurrent writer.

A miniature "social feed under write traffic" built on the serving
layer (:mod:`repro.serve`):

* one :class:`~repro.serve.Server` front door, thread-safe via its
  reader–writer protocol;
* a **subscription** streaming the O(δ) per-update result deltas of
  the feed view (what a push notifier consumes);
* **resumable cursors** paging the feed in constant delay per tuple —
  including a parameter-bound cursor (``user=...``) pinned via the
  q-tree, and a snapshot cursor that keeps serving the pre-update
  result while a writer thread races it;
* a plain cursor **revalidating** across a burst of beyond-frontier
  writes (delta-aware: it re-anchors its walk and keeps serving the
  live result), then getting **precisely invalidated** by the one
  write that removes a tuple it already emitted;
* async dispatch: the push notifier's deltas are delivered by the
  server's worker pool instead of the writer thread.

Run with ``PYTHONPATH=src python examples/live_serving.py``.
"""

from __future__ import annotations

import random
import threading

from repro import CursorInvalidatedError, Server


def main() -> None:
    # 2 shards (this example has one view, so sharding is just shown
    # wired up) and 2 dispatch workers delivering deltas off-thread.
    server = Server(shards=2, dispatch_workers=2)
    # All three variables free keeps the query q-hierarchical, so the
    # view gets the Theorem 3.2 engine: O(1) counts, constant-delay
    # cursors, O(δ) subscription deltas.  (Project ``author`` away and
    # the planner would route to the delta-IVM fallback instead — same
    # serving surface, weaker guarantees.)
    feed = server.view(
        "feed",
        "Feed(author, user, post) :- Follows(user, author), Posted(author, post)",
    )
    print("=== plan (note the delta row and the cursor-binding hint) ===")
    print(server.explain("feed"))

    # Preload: everyone follows a few authors, authors post.
    rng = random.Random(7)
    users = [f"user{i}" for i in range(40)]
    authors = [f"author{i}" for i in range(12)]
    with server.session.batch() as batch:
        for user in users:
            for author in rng.sample(authors, 3):
                batch.insert("Follows", (user, author))
        for author in authors:
            for post in range(6):
                batch.insert("Posted", (author, f"{author}_p{post}"))
    print(f"\npreloaded: |feed| = {server.count('feed')}")

    # A subscriber sees every result change as an O(δ) delta.
    notifier = server.subscribe("feed")

    # A bound cursor: author3's slice of the feed.  ``author`` is the
    # q-tree root, so the binding is pinned with O(1) probes — the
    # free-access-pattern style of serving.
    bound = server.open_cursor("feed", binding={"author": "author3"})
    print(f"\nauthor3's slice, first page: {server.fetch(bound, 4)}")

    # Writer thread races the readers through the dispatcher.
    def writer() -> None:
        for step in range(30):
            author = rng.choice(authors)
            server.insert("Posted", (author, f"{author}_live{step}"))

    # A snapshot cursor pins the pre-write result; a plain cursor
    # revalidates across the inserts (their deltas land beyond its
    # frontier) and keeps serving the live result.
    snapshot = server.open_cursor("feed", snapshot=True)
    plain = server.open_cursor("feed")
    emitted = server.fetch(plain, 5)

    thread = threading.Thread(target=writer)
    thread.start()
    thread.join()

    pinned = []
    while True:
        page = server.fetch(snapshot, 256)
        if not page:
            break
        pinned.extend(page)
    print(f"\nsnapshot cursor served {len(pinned)} pre-write tuples")
    print(f"live view now has {server.count('feed')} tuples")

    server.fetch(plain, 5)  # survived all 30 writes
    state = server.cursor_state(plain)
    print(
        f"plain cursor revalidated {state.revalidations}x across the "
        "writer burst and kept paging"
    )

    # Deleting a tuple the cursor already emitted is the one genuinely
    # invalidating write — reported precisely.
    author, _user, post = emitted[0]
    server.delete("Posted", (author, post))
    try:
        server.fetch(plain, 5)
    except CursorInvalidatedError as error:
        print(f"\nplain cursor: {error.invalidation.describe()}")

    deltas = server.poll(notifier)
    moved = sum(d.size for d in deltas)
    print(
        f"\nnotifier drained {len(deltas)} deltas covering {moved} "
        f"result changes, e.g. {deltas[0]}"
    )

    print(f"\nserver stats: {server.stats()}")

    # The observability layer saw all of the above: per-view update
    # cost and page delay distributions, delta-dispatch lag, cursor
    # lifecycle counters — one registry, one scrape.
    from repro.obs.registry import snapshot_quantile

    snapshot = server.session.metrics.snapshot()
    print("\n=== metrics summary (repro.obs) ===")
    for key, value in sorted(snapshot["counters"].items()):
        if value:
            print(f"  {key} = {value}")
    for key, state in sorted(snapshot["histograms"].items()):
        if state["count"]:
            p50 = snapshot_quantile(state, 0.50)
            p95 = snapshot_quantile(state, 0.95)
            print(
                f"  {key}: n={state['count']} "
                f"p50={p50 * 1e6:.3g}µs p95={p95 * 1e6:.3g}µs"
            )
    print("\n=== observed vs promised (explain) ===")
    print(server.explain("feed"))


if __name__ == "__main__":
    main()

"""Replay Example 6.1 of the paper, end to end.

Run:  python examples/paper_example_6_1.py

Builds the database D0 from Example 6.1, prints Figure 2 (annotated
q-tree), Figure 3(a) (the item structure with weights, C_start = 23),
Table 1 (the enumeration order), then inserts E(b, p) and prints
Figure 3(b) (C_start = 38) — every number matching the PDF.
"""

from repro import QHierarchicalEngine, render_q_tree, render_structure
from repro.bench.reporting import format_table
from repro.core.enumeration import algorithm1
from repro.cq import zoo

E = sorted([("a", "e"), ("a", "f"), ("b", "d"), ("b", "g"), ("b", "h")])
S = sorted(
    [("a", "e", "a"), ("a", "e", "b"), ("a", "f", "c"), ("b", "g", "b"), ("b", "p", "a")]
)
R = sorted(
    S + [("a", "e", "c"), ("b", "g", "a"), ("b", "g", "c"), ("b", "p", "b"), ("b", "p", "c")]
)


def main():
    print(f"query (Example 6.1): {zoo.EXAMPLE_6_1}\n")

    engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
    for row in E:
        engine.insert("E", row)
    for row in R:
        engine.insert("R", row)
    for row in S:
        engine.insert("S", row)
    structure = engine.structures[0]

    print("Figure 2 — the q-tree:")
    print(render_q_tree(structure.qtree, annotate=True))

    print("\nFigure 3(a) — the data structure for D0:")
    print(render_structure(structure))
    assert structure.c_start == 23

    print("\nTable 1 — enumeration of ϕ(D0) via Algorithm 1:")
    rows = list(algorithm1(structure))
    display = [(x, y, z, zp, yp) for (x, y, z, yp, zp) in rows]
    print(
        format_table(
            ["var"] + [str(i + 1) for i in range(len(display))],
            [
                [name] + list(column)
                for name, column in zip(
                    ["x", "y", "z", "z'", "y'"], zip(*display)
                )
            ],
        )
    )
    assert len(rows) == 23

    print("\ninsert E(b, p) ...")
    engine.insert("E", ("b", "p"))
    print("\nFigure 3(b) — the data structure for D1:")
    print(render_structure(structure))
    assert structure.c_start == 38
    print(f"\n|ϕ(D1)| = {engine.count()}  (paper: 38)")


if __name__ == "__main__":
    main()

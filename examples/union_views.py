"""Scenario: a unified alert view — unions of CQs plus f-rep export.

Run:  python examples/union_views.py

Exercises the two extensions built on top of the paper:

* ``UnionEngine`` (the Section 7 outlook): one alert stream defined as
  a *union* of q-hierarchical rules, maintained with constant update
  time, O(1) inclusion–exclusion counting and duplicate-free
  constant-delay enumeration (via the O(1) membership primitive of the
  Section 6 structure).
* ``factorize`` (the Section 3 f-representation remark): exporting a
  rule's current result as a factorized expression whose size can be
  exponentially smaller than the flat listing.
"""

import random

from repro import QHierarchicalEngine, parse_query
from repro.core.factorized import compression_ratio, factorize, flat_size
from repro.extensions.ucq import UnionEngine, UnionOfCQs

# Two alert rules over a shared event schema, same output (device, evt).
RULE_FLAGGED = parse_query(
    "Alert(device, evt) :- Event(device, evt), Flagged(device)"
)
RULE_CRITICAL = parse_query(
    "Alert(device, evt) :- Critical(device, evt)"
)

DEVICES = 300
EVENTS = 2500

rng = random.Random(13)


def main():
    union = UnionOfCQs([RULE_FLAGGED, RULE_CRITICAL], name="Alerts")
    engine = UnionEngine(union)
    print(f"view: {union}")
    print(
        f"O(1) counting available: {engine.counting_supported} "
        f"({len(engine.intersection_engines)} intersection engine(s))\n"
    )

    for device in range(0, DEVICES, 7):
        engine.insert("Flagged", (device,))

    live = []
    for _ in range(EVENTS):
        if live and rng.random() < 0.25:
            relation, row = live.pop(rng.randrange(len(live)))
            engine.delete(relation, row)
            continue
        device = rng.randrange(DEVICES)
        evt = rng.randrange(10_000)
        relation = "Critical" if rng.random() < 0.2 else "Event"
        row = (device, evt)
        if engine.insert(relation, row):
            live.append((relation, row))

    print(f"alerts live right now:   {engine.count()} (O(1))")
    rows = list(engine.enumerate())
    assert len(rows) == len(set(rows)) == engine.count()
    print(f"enumerated, no dups:     {len(rows)} tuples")
    sample = rows[:3]
    for row in sample:
        assert engine.contains(row)
    print(f"membership spot-checks:  {sample} all O(1)-confirmed\n")

    # f-representation export of the flagged-device rule.
    flagged_engine = engine.disjunct_engines[0]
    structure = flagged_engine.structures[0]
    expression = factorize(structure)
    print("f-representation of the Flagged rule (Section 3 remark):")
    print(f"  flat listing:      {flat_size(structure)} symbols")
    print(f"  factorized export: {expression.size()} symbols")
    print(f"  compression:       {compression_ratio(structure):.1f}x")
    assert expression.count() == structure.count()


if __name__ == "__main__":
    main()

"""Scenario: a unified alert view — the Session API over a UCQ.

Run:  python examples/union_views.py

One alert stream defined as a *union* of q-hierarchical rules,
registered as a live view on a :class:`repro.Session`: the planner
classifies the union, selects ``ucq_union`` (per-disjunct Theorem 3.2
engines, O(1) inclusion–exclusion counting, duplicate-free
constant-delay enumeration) and ``explain()`` states the guarantees.
The churny event stream is applied through a transactional
``session.batch()``, so cancelled insert/delete pairs never even reach
the engines.  The f-rep export (the Section 3 remark) still works on
the engine underneath the view.
"""

import random

from repro import Session
from repro.core.factorized import compression_ratio, factorize, flat_size

# Two alert rules over a shared event schema, same output (device, evt).
ALERTS = """
    Alert(device, evt) :- Event(device, evt), Flagged(device)
    Alert(device, evt) :- Critical(device, evt)
"""

DEVICES = 300
EVENTS = 2500

rng = random.Random(13)


def main():
    session = Session()
    alerts = session.view("alerts", ALERTS)
    print(alerts.explain().render())
    print()

    for device in range(0, DEVICES, 7):
        session.insert("Flagged", (device,))

    # The event stream arrives in transactional batches; net-effect
    # compression drops every insert/delete pair that cancels within a
    # batch before any engine sees it.
    live = []
    buffered = net = 0
    for start in range(0, EVENTS, 500):
        with session.batch() as batch:
            for _ in range(min(500, EVENTS - start)):
                if live and rng.random() < 0.25:
                    relation, row = live.pop(rng.randrange(len(live)))
                    batch.delete(relation, row)
                    continue
                device = rng.randrange(DEVICES)
                evt = rng.randrange(10_000)
                relation = "Critical" if rng.random() < 0.2 else "Event"
                row = (device, evt)
                batch.insert(relation, row)
                live.append((relation, row))
        buffered += batch.stats["buffered"]
        net += batch.stats["net"]
    print(f"stream compression:      {buffered} commands → {net} net changes")

    print(f"alerts live right now:   {alerts.count()} (O(1))")
    rows = list(alerts.enumerate())
    assert len(rows) == len(set(rows)) == alerts.count()
    print(f"enumerated, no dups:     {len(rows)} tuples")
    sample = rows[:3]
    for row in sample:
        assert alerts.contains(row)
    print(f"membership spot-checks:  {sample} all O(1)-confirmed\n")

    # f-representation export of the flagged-device rule.
    flagged_engine = alerts.engine.disjunct_engines[0]
    structure = flagged_engine.structures[0]
    expression = factorize(structure)
    print("f-representation of the Flagged rule (Section 3 remark):")
    print(f"  flat listing:      {flat_size(structure)} symbols")
    print(f"  factorized export: {expression.size()} symbols")
    print(f"  compression:       {compression_ratio(structure):.1f}x")
    assert expression.count() == structure.count()


if __name__ == "__main__":
    main()

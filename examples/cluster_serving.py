"""One workload, two serving backends: threads vs worker processes.

The serving layer has two front doors with the same surface:

* ``session.serve(backend="threads")`` — the in-process sharded
  :class:`~repro.serve.Server` (PR 4): N reader–writer shards under
  one interpreter, so the GIL bounds CPU-parallel write scaling;
* ``session.serve(backend="processes")`` — a
  :class:`~repro.serve.ShardCluster` (one worker **process** per
  shard behind a length-prefixed socket transport) fronted by a
  :class:`~repro.serve.ClusterClient`.  Same
  ``view/insert/batch/open_cursor/fetch/subscribe/poll`` calls; the
  shards burn real cores.

This example runs the *identical* workload — view registration after
serving starts, a preloaded session migrating into the backend, single
inserts, a transactional batch, cursor paging, a delta subscription —
against both backends and then proves they are interchangeable:

* the **subscription replay is byte-identical**: both backends emit the
  same delta log (same commands, same added/removed tuples, same
  epochs), and replaying it reproduces the final result;
* counts, result sets and the order-independent **result digests**
  match across the process boundary.

Run with ``PYTHONPATH=src python examples/cluster_serving.py``.
(The ``__main__`` guard matters: the cluster spawns worker processes,
which re-import this module under the ``spawn`` start method.)
"""

from __future__ import annotations

from repro import Session


def build_session() -> Session:
    """The pre-serving state: one view and some rows to migrate."""
    session = Session()
    session.view(
        "feed",
        "Feed(author, user, post) :- Follows(user, author), Posted(author, post)",
    )
    with session.batch() as batch:
        for user in range(6):
            for author in (user % 3, (user + 1) % 3):
                batch.insert("Follows", (f"user{user}", f"author{author}"))
        for author in range(3):
            batch.insert("Posted", (f"author{author}", f"seed{author}"))
    return session


def run_workload(backend: str):
    """The same serving choreography on either backend."""
    front = build_session().serve(backend=backend, shards=2)
    try:
        # Registration after serving started (routing revalidates).
        front.view("tags", "Tagged(post, tag) :- Tags(post, tag)")
        notifier = front.subscribe("feed")

        # Live writes: singles, then a transactional cross-view batch.
        for step in range(8):
            front.insert("Posted", (f"author{step % 3}", f"live{step}"))
        from repro.storage.updates import delete, insert

        front.batch(
            [
                insert("Tags", ("seed0", "intro")),
                insert("Posted", ("author1", "batched")),
                delete("Posted", ("author0", "live0")),
            ]
        )

        # Cursor paging over the live view.
        cursor = front.open_cursor("feed")
        pages = []
        while True:
            page = front.fetch(cursor, 16)
            if not page:
                break
            pages.extend(page)
        front.close_cursor(cursor)

        # Drain the notifier: this is the byte-identical artefact.
        replay_log = [
            (str(d.command), d.epoch, tuple(d.added), tuple(d.removed))
            for d in front.poll(notifier)
        ]
        mirror = set()
        for _command, _epoch, added, removed in replay_log:
            mirror |= set(added)
            mirror -= set(removed)

        return {
            "backend": backend,
            "count": front.count("feed"),
            "paged": sorted(pages),
            "result": front.result_set("feed"),
            "digest": front.result_digest("feed"),
            "tags": front.result_set("tags"),
            "replay_log": replay_log,
            "replay_additions": mirror,
        }
    finally:
        front.close()  # for "processes" this also terminates the workers


def main() -> None:
    threads = run_workload("threads")
    processes = run_workload("processes")

    print("== same workload, two backends ==")
    for report in (threads, processes):
        print(
            f"{report['backend']:>9}: |feed| = {report['count']}, "
            f"deltas = {len(report['replay_log'])}, "
            f"digest = {report['digest'][:16]}…"
        )

    assert threads["count"] == processes["count"]
    assert threads["result"] == processes["result"]
    assert threads["paged"] == processes["paged"]
    assert threads["tags"] == processes["tags"]
    assert threads["digest"] == processes["digest"]
    # The delta logs agree event for event — byte-identical replay.
    assert threads["replay_log"] == processes["replay_log"]
    # And replaying the additions reproduces the live additions subset.
    assert threads["replay_additions"] == processes["replay_additions"]
    print(
        "\nsubscription replay byte-identical across backends "
        f"({len(threads['replay_log'])} deltas), digests match — "
        "the process boundary is invisible to clients"
    )


if __name__ == "__main__":
    main()

"""Scenario: network alerting, on both sides of the dichotomy.

Run:  python examples/network_monitoring.py

A security monitor watches a link stream.  Two alert rules:

* RULE A (hard): "a watchlisted source talks to a watchlisted target"
  — exactly the paper's ``ϕ'_S-E-T = ∃x∃y (Sx ∧ Exy ∧ Ty)``.  Not
  q-hierarchical: Theorem 3.4 says *no* engine can maintain it with
  sublinear updates (conditional on OMv).  The library refuses, names
  the witness, and we fall back to delta IVM, whose per-update cost is
  data-dependent.

* RULE B (easy): "a watchlisted source talks to anyone" —
  ``∃y (Sx ∧ Exy)`` per source, q-hierarchical, maintained in O(1).

The point: the dichotomy is a *design tool* — `classify` tells you
before deployment which alerts can be cheap.
"""

import random
import time

from repro import (
    DeltaIVMEngine,
    NotQHierarchicalError,
    QHierarchicalEngine,
    classify,
    find_violation,
    parse_query,
)

RULE_A = parse_query("AlertA() :- Watchsrc(x), Link(x, y), Watchdst(y)")
RULE_B = parse_query("AlertB(x) :- Watchsrc(x), Link(x, y)")

HOSTS = 600
EVENTS = 4000

rng = random.Random(7)


def main():
    print("RULE A:", RULE_A)
    verdict = classify(RULE_A)
    print(
        f"  q-hierarchical: {verdict.q_hierarchical}; "
        f"boolean maintenance tractable: {verdict.boolean_tractable}"
    )
    print(f"  witness: {find_violation(RULE_A).describe()}")
    try:
        QHierarchicalEngine(RULE_A)
    except NotQHierarchicalError:
        print("  -> dynamic engine refuses; falling back to delta IVM\n")

    print("RULE B:", RULE_B)
    print(f"  q-hierarchical: {classify(RULE_B).q_hierarchical}\n")

    rule_a = DeltaIVMEngine(RULE_A)
    rule_b = QHierarchicalEngine(RULE_B)

    # Shared watchlists: a handful of hot hosts.
    for host in range(0, HOSTS, 10):
        rule_a.insert("Watchsrc", (host,))
        rule_b.insert("Watchsrc", (host,))
    for host in range(5, HOSTS, 10):
        rule_a.insert("Watchdst", (host,))

    alerts_a = alerts_b = 0
    time_a = time_b = 0.0
    live = []
    for _ in range(EVENTS):
        if live and rng.random() < 0.3:
            link = live.pop(rng.randrange(len(live)))
            op = "delete"
        else:
            link = (rng.randrange(HOSTS), rng.randrange(HOSTS))
            live.append(link)
            op = "insert"

        start = time.perf_counter()
        getattr(rule_a, op)("Link", link)
        fired_a = rule_a.answer()
        time_a += time.perf_counter() - start

        start = time.perf_counter()
        getattr(rule_b, op)("Link", link)
        fired_b = rule_b.answer()
        time_b += time.perf_counter() - start

        alerts_a += fired_a
        alerts_b += fired_b

    print(f"events processed:      {EVENTS}")
    print(f"rounds with RULE A on: {alerts_a}   with RULE B on: {alerts_b}")
    print(
        f"per-event cost:        RULE A (delta IVM) "
        f"{time_a / EVENTS * 1e6:.1f}µs | RULE B (q-hierarchical) "
        f"{time_b / EVENTS * 1e6:.1f}µs"
    )
    print(
        "\nRULE B's cost is independent of the number of hosts; RULE A's\n"
        "grows with the watchlists' degrees — and Theorem 3.4 says no\n"
        "clever engine can fix that (conditional on the OMv conjecture)."
    )


if __name__ == "__main__":
    main()

"""Scenario: a social feed view maintained under heavy churn.

Run:  python examples/social_feed.py

The workload the paper's introduction motivates: a materialised view
(`who sees which post`) over relations that change constantly.  We
stream follows/unfollows and posts/deletions, and compare the paper's
engine against recompute-from-scratch on identical update sequences.
The dynamic engine answers `count()` after every single update — the
recompute baseline visibly cannot.
"""

import random
import time

from repro import QHierarchicalEngine, RecomputeEngine, parse_query

QUERY = parse_query(
    "Feed(user, author, post) :- Follows(user, author), Posted(author, post)"
)

USERS = 400
CHURN = 3000

rng = random.Random(42)


def random_command(live_follows, live_posts):
    """Draw one update: follow/unfollow/post/delete-post."""
    kind = rng.random()
    if kind < 0.35 or not live_follows:
        edge = (f"u{rng.randrange(USERS)}", f"u{rng.randrange(USERS)}")
        live_follows.add(edge)
        return ("insert", "Follows", edge)
    if kind < 0.5:
        edge = rng.choice(sorted(live_follows))
        live_follows.discard(edge)
        return ("delete", "Follows", edge)
    if kind < 0.85 or not live_posts:
        post = (f"u{rng.randrange(USERS)}", f"p{rng.randrange(10 * USERS)}")
        live_posts.add(post)
        return ("insert", "Posted", post)
    post = rng.choice(sorted(live_posts))
    live_posts.discard(post)
    return ("delete", "Posted", post)


def run(engine, commands, query_every=1):
    """Replay the stream, asking for the count after every update."""
    start = time.perf_counter()
    for index, (op, relation, row) in enumerate(commands):
        getattr(engine, op)(relation, row)
        if index % query_every == 0:
            engine.count()
    return time.perf_counter() - start


def main():
    live_follows, live_posts = set(), set()
    commands = [
        random_command(live_follows, live_posts) for _ in range(CHURN)
    ]

    fast = QHierarchicalEngine(QUERY)
    fast_time = run(fast, commands)

    slow = RecomputeEngine(QUERY)
    # Give the baseline a head start: only query every 50 updates.
    slow_time = run(slow, commands, query_every=50)

    assert fast.count() == slow.count()
    print(f"updates streamed:        {CHURN}")
    print(f"final |Feed|:            {fast.count()}")
    print(
        f"dynamic engine:          {fast_time:.3f}s "
        f"(count after EVERY update)"
    )
    print(
        f"recompute baseline:      {slow_time:.3f}s "
        f"(count only every 50th update)"
    )
    print(
        f"per-update cost:         "
        f"{fast_time / CHURN * 1e6:.1f}µs dynamic vs "
        f"{slow_time / (CHURN / 50) * 1e6:.1f}µs per recompute round"
    )

    # Constant-delay peek at the first few feed entries.
    print("sample of the live feed:")
    for row, _ in zip(fast.enumerate(), range(5)):
        print("  ", row)


if __name__ == "__main__":
    main()

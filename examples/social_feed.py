"""Scenario: a social feed served from a Session under heavy churn.

Run:  python examples/social_feed.py

The workload the paper's introduction motivates: a materialised view
(`who sees which post`) over relations that change constantly.  The
feed is a live view on a :class:`repro.Session` — the planner
recognises the query as q-hierarchical and auto-selects the Theorem 3.2
engine, so ``count()`` stays O(1) after every single update.  A second
view registered with ``engine="recompute"`` serves as the baseline on
the identical stream, and the same stream replayed through a
``session.batch()`` shows net-effect compression discarding the churn
that cancels out.
"""

import random
import time

from repro import Session
from repro.storage.updates import UpdateCommand

QUERY = "Feed(user, author, post) :- Follows(user, author), Posted(author, post)"

USERS = 400
CHURN = 3000

rng = random.Random(42)


def random_command(live_follows, live_posts):
    """Draw one update: follow/unfollow/post/delete-post."""
    kind = rng.random()
    if kind < 0.35 or not live_follows:
        edge = (f"u{rng.randrange(USERS)}", f"u{rng.randrange(USERS)}")
        live_follows.add(edge)
        return UpdateCommand("insert", "Follows", edge)
    if kind < 0.5:
        edge = rng.choice(sorted(live_follows))
        live_follows.discard(edge)
        return UpdateCommand("delete", "Follows", edge)
    if kind < 0.85 or not live_posts:
        post = (f"u{rng.randrange(USERS)}", f"p{rng.randrange(10 * USERS)}")
        live_posts.add(post)
        return UpdateCommand("insert", "Posted", post)
    post = rng.choice(sorted(live_posts))
    live_posts.discard(post)
    return UpdateCommand("delete", "Posted", post)


def run(session, view, commands, query_every=1):
    """Replay the stream, asking for the count after every update."""
    start = time.perf_counter()
    for index, command in enumerate(commands):
        session.apply(command)
        if index % query_every == 0:
            view.count()
    return time.perf_counter() - start


def main():
    live_follows, live_posts = set(), set()
    commands = [
        random_command(live_follows, live_posts) for _ in range(CHURN)
    ]

    fast_session = Session()
    fast = fast_session.view("feed", QUERY)  # auto → qhierarchical
    print(f"planner picked:          {fast.engine_name}")
    fast_time = run(fast_session, fast, commands)

    slow_session = Session()
    slow = slow_session.view("feed", QUERY, engine="recompute")
    # Give the baseline a head start: only query every 50 updates.
    slow_time = run(slow_session, slow, commands, query_every=50)

    assert fast.count() == slow.count()
    print(f"updates streamed:        {CHURN}")
    print(f"final |Feed|:            {fast.count()}")
    print(
        f"dynamic engine:          {fast_time:.3f}s "
        f"(count after EVERY update)"
    )
    print(
        f"recompute baseline:      {slow_time:.3f}s "
        f"(count only every 50th update)"
    )
    print(
        f"per-update cost:         "
        f"{fast_time / CHURN * 1e6:.1f}µs dynamic vs "
        f"{slow_time / (CHURN / 50) * 1e6:.1f}µs per recompute round"
    )

    # The same stream, batched: insert/delete pairs that cancel within
    # the window never reach the engine at all.
    batch_session = Session()
    batch_view = batch_session.view("feed", QUERY)
    with batch_session.batch() as batch:
        batch.apply_all(commands)
    assert batch_view.count() == fast.count()
    stats = batch.stats
    print(
        f"batched replay:          {stats['buffered']} commands → "
        f"{stats['net']} net changes ({stats['applied']} applied)"
    )

    # Constant-delay peek at the first few feed entries.
    print("sample of the live feed:")
    for row, _ in zip(fast.enumerate(), range(5)):
        print("  ", row)


if __name__ == "__main__":
    main()

"""Scenario: sliding-window analytics with O(1) counting.

Run:  python examples/streaming_window.py

A click-stream dashboard over a sliding window.  Two live metrics:

* ``Active(campaign, user) :- Click(campaign, user), Live(campaign)``
  — active pairs; quantifier-free, counted via the ``C`` weights.
* ``Reach(campaign) :- Click(campaign, user), Live(campaign)``
  — *distinct* live campaigns with any windowed traffic; the user
  variable is quantified, so this exercises the ``C̃`` machinery of
  Section 6.5 (valuation counts would over-count busy campaigns).

Both are q-hierarchical, so both counters refresh in O(1) after every
single event — inserts and the window-expiry *deletes* alike, which is
the fully dynamic setting the paper targets.

A cautionary note printed at the end: adding a ``Login(user)`` guard to
``Active`` recreates the paper's hard ϕ_S-E-T pattern, and `classify`
flags it before any engine is built.
"""

import random
import time
from collections import deque

from repro import QHierarchicalEngine, classify, parse_query

ACTIVE = parse_query(
    "Active(campaign, user) :- Click(campaign, user), Live(campaign)"
)
REACH = parse_query(
    "Reach(campaign) :- Click(campaign, user), Live(campaign)"
)
TEMPTING_BUT_HARD = parse_query(
    "Active(campaign, user) :- Click(campaign, user), Live(campaign), Login(user)"
)

WINDOW = 2000
EVENTS = 12000
CAMPAIGNS = 50
USERS = 500

rng = random.Random(3)


def main():
    for query in (ACTIVE, REACH):
        print(f"query: {query}  (q-hierarchical: "
              f"{classify(query).q_hierarchical})")
    print()

    active = QHierarchicalEngine(ACTIVE)
    reach = QHierarchicalEngine(REACH)
    for campaign in range(CAMPAIGNS):
        active.insert("Live", (campaign,))
        reach.insert("Live", (campaign,))

    expiring = deque()
    peak_pairs = peak_reach = 0
    start = time.perf_counter()
    for _ in range(EVENTS):
        if len(expiring) >= WINDOW:
            old = expiring.popleft()
            active.delete("Click", old)
            reach.delete("Click", old)
        click = (rng.randrange(CAMPAIGNS), rng.randrange(USERS))
        if active.insert("Click", click):
            reach.insert("Click", click)
            expiring.append(click)
        # O(1) dashboard refresh on every event:
        peak_pairs = max(peak_pairs, active.count())
        peak_reach = max(peak_reach, reach.count())
    elapsed = time.perf_counter() - start

    print(f"events processed:    {EVENTS} (window {WINDOW})")
    print(f"peak active pairs:   {peak_pairs}")
    print(f"peak campaign reach: {peak_reach} (of {CAMPAIGNS})")
    print(f"current counts:      pairs={active.count()} reach={reach.count()}")
    print(
        f"cost per event:      {elapsed / EVENTS * 1e6:.1f}µs "
        "(2 engines, update + O(1) counts)"
    )

    # Toggle a campaign off and watch both metrics react instantly.
    pairs_before, reach_before = active.count(), reach.count()
    active.delete("Live", (0,))
    reach.delete("Live", (0,))
    print(
        f"pause campaign 0:    pairs {pairs_before} -> {active.count()}, "
        f"reach {reach_before} -> {reach.count()}"
    )

    print(
        "\nbeware: guarding Active by Login(user) looks harmless but is "
        "the paper's ϕ_S-E-T pattern:"
    )
    verdict = classify(TEMPTING_BUT_HARD)
    print(
        f"  {TEMPTING_BUT_HARD}\n  q-hierarchical: "
        f"{verdict.q_hierarchical} -> maintenance is OMv-hard (Thm 3.3)"
    )


if __name__ == "__main__":
    main()

"""Quickstart: maintain a conjunctive query under updates.

Run:  python examples/quickstart.py

Covers the whole public surface in a minute: parse a query, check it is
q-hierarchical, build the dynamic engine, stream updates, and use the
three O(1)/constant-delay operations of Theorem 3.2 — plus what happens
when a query is *outside* the tractable class.
"""

from repro import (
    NotQHierarchicalError,
    QHierarchicalEngine,
    classify,
    parse_query,
    render_q_tree,
)
from repro.core.qtree import build_q_tree

# ---------------------------------------------------------------------------
# 1. A q-hierarchical query: who posted what, among people I follow.
# ---------------------------------------------------------------------------
query = parse_query(
    "Feed(me, author, post) :- Follows(me, author), Posted(author, post)"
)
print(f"query: {query}")

verdict = classify(query)
print(
    f"q-hierarchical: {verdict.q_hierarchical}  "
    f"(enumeration {verdict.enumeration_tractable}, "
    f"counting tractable: {verdict.counting_tractable})"
)

for component in query.connected_components():
    print("\nq-tree (Lemma 4.2):")
    print(render_q_tree(build_q_tree(component)))

# ---------------------------------------------------------------------------
# 2. Preprocess (empty), then update — each command costs O(poly(ϕ)).
# ---------------------------------------------------------------------------
engine = QHierarchicalEngine(query)
engine.insert("Follows", ("me", "ada"))
engine.insert("Follows", ("me", "grace"))
engine.insert("Posted", ("ada", "p1"))
engine.insert("Posted", ("ada", "p2"))
engine.insert("Posted", ("grace", "p3"))
engine.insert("Posted", ("turing", "p4"))  # not followed: no output

print(f"\n|feed| = {engine.count()}  (O(1) at any moment)")
print("feed tuples (constant delay):")
for row in engine.enumerate():
    print("  ", row)

# Deletes are symmetric — unfollow and the feed shrinks immediately.
engine.delete("Follows", ("me", "ada"))
print(f"after unfollow: |feed| = {engine.count()}")
assert engine.count() == 1

# ---------------------------------------------------------------------------
# 3. A non-q-hierarchical query is refused with the exact reason.
# ---------------------------------------------------------------------------
hard = parse_query("Q(x, y) :- S(x), E(x, y), T(y)")  # the paper's ϕ_S-E-T
try:
    QHierarchicalEngine(hard)
except NotQHierarchicalError as error:
    print(f"\nrefused: {error}")
    print(
        "Theorem 3.3: no engine can maintain this with O(n^(1-ε)) "
        "updates unless the OMv conjecture fails."
    )

"""A guided tour of the paper's dichotomies on its own example queries.

Run:  python examples/dichotomy_tour.py

For every query the paper names, prints where it falls in the three
dichotomies (Theorems 1.1–1.3), the Definition 3.1 violation witness if
any, the homomorphic core when it differs, and the q-tree when one
exists.
"""

from repro import (
    classify,
    find_violation,
    homomorphic_core,
    parse_query,
    render_q_tree,
)
from repro.bench.reporting import format_table
from repro.cq import zoo
from repro.core.qtree import try_build_q_tree


def verdict_word(value):
    if value is True:
        return "easy"
    if value is False:
        return "hard"
    return "open"


def main():
    rows = []
    for name, query in zoo.PAPER_QUERIES.items():
        result = classify(query)
        rows.append(
            [
                name,
                "yes" if result.q_hierarchical else "no",
                verdict_word(result.enumeration_tractable),
                verdict_word(result.boolean_tractable),
                verdict_word(result.counting_tractable),
            ]
        )
    print(
        format_table(
            ["query", "q-hier", "enum 1.1", "boolean 1.2", "count 1.3"],
            rows,
            title="The dichotomies (Theorems 1.1-1.3) on the paper's queries",
        )
    )

    print("\n--- why ϕ_S-E-T is hard " + "-" * 40)
    print(find_violation(zoo.S_E_T).describe())

    print("\n--- why ϕ_E-T enumerates badly but answers fine " + "-" * 16)
    print(find_violation(zoo.E_T).describe())
    print(
        "but its Boolean version ∃x ϕ_E-T is q-hierarchical:",
        try_build_q_tree(zoo.E_T_BOOLEAN) is not None,
    )

    print("\n--- cores can rescue Boolean queries " + "-" * 27)
    print(f"query: {zoo.LOOP_TRIANGLE}")
    print(f"core:  {homomorphic_core(zoo.LOOP_TRIANGLE)}")
    print("the core is q-hierarchical, so Boolean answering is O(1).")

    print("\n--- a q-tree, when it exists " + "-" * 35)
    print(f"query: {zoo.EXAMPLE_6_1}")
    tree = try_build_q_tree(zoo.EXAMPLE_6_1)
    print(render_q_tree(tree, annotate=True))

    print("\n--- the self-join frontier (Section 7 / Appendix A) " + "-" * 12)
    print(f"ϕ1 = {zoo.PHI_1}: enumeration OMv-hard (Lemma A.1)")
    print(f"ϕ2 = {zoo.PHI_2}: constant-delay maintainable (Lemma A.2)")
    print("both are non-q-hierarchical — the dichotomy is open with self-joins.")


if __name__ == "__main__":
    main()

"""Multiprocess shard cluster: differential, routing, 2PC and crash tests.

The oracle everywhere is the in-process :class:`repro.serve.Server` fed
the identical command stream: the cluster must agree on results, deltas
(byte-identical replay) and error behaviour, while its shards live in
separate worker processes behind the socket transport.
"""

import random
import threading
import time

import pytest

from repro import Server, Session
from repro.errors import (
    ClusterError,
    CursorInvalidatedError,
    EngineStateError,
    SchemaError,
    UpdateError,
    WorkerCrashedError,
)
from repro.serve.cluster import ShardCluster, query_to_text
from repro.storage.updates import delete, insert

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def cluster():
    with ShardCluster(workers=2) as deployment:
        yield deployment


@pytest.fixture(scope="module")
def client(cluster):
    with cluster.client() as facade:
        yield facade


def unique(prefix, _counter=[0]):
    _counter[0] += 1
    return f"{prefix}{_counter[0]}"


def effective_stream(relation, count, domain, seed):
    rng = random.Random(seed)
    live, commands = [], []
    for step in range(count):
        if live and rng.random() < 0.35:
            commands.append(delete(relation, live.pop(rng.randrange(len(live)))))
        else:
            row = (step, rng.randrange(domain))
            live.append(row)
            commands.append(insert(relation, row))
    return commands


# ---------------------------------------------------------------------------
# text round-trip (the registration wire format)
# ---------------------------------------------------------------------------


def test_query_to_text_roundtrips_cq_and_ucq():
    from repro.api.planner import parse_view

    cq = parse_view("Q(x, y) :- E(x, y), T(y)")
    assert query_to_text(cq) == str(cq)
    ucq = parse_view("Q(x) :- R(x, y); Q(x) :- S(x)")
    text = query_to_text(ucq)
    assert ";" in text and "∪" not in text
    reparsed = parse_view(text)
    assert query_to_text(reparsed) == text
    assert query_to_text("Q(x) :- E(x, x)") == "Q(x) :- E(x, x)"


# ---------------------------------------------------------------------------
# differential: cluster vs in-process server on one command stream
# ---------------------------------------------------------------------------


def test_cluster_matches_inprocess_server(client):
    va, vb = unique("diff_a"), unique("diff_b")
    ra, rb, shared = unique("RA"), unique("RB"), unique("RS")
    qa = f"V(x, y) :- {ra}(x, y), {shared}(y)"
    qb = f"V(x, y) :- {rb}(x, y), {shared}(y)"

    oracle = Server(Session())
    for name, query in ((va, qa), (vb, qb)):
        oracle.view(name, query)
        client.view(name, query)
    oracle_subs = {name: oracle.subscribe(name) for name in (va, vb)}
    cluster_subs = {name: client.subscribe(name) for name in (va, vb)}

    rng = random.Random(11)
    commands = []
    for value in range(8):
        commands.append(insert(shared, (value,)))
    commands += effective_stream(ra, 120, 8, 7)
    commands += effective_stream(rb, 120, 8, 9)
    rng.shuffle(commands)

    for command in commands:
        assert client.apply(command) == oracle.apply(command)

    for name in (va, vb):
        assert client.count(name) == oracle.count(name)
        assert client.answer(name) == oracle.answer(name)
        expected = oracle.session[name].result_set()
        assert client.result_set(name) == expected
        assert (
            client.result_digest(name)
            == oracle.session[name].engine.result_digest()
        )
        ours = client.poll(cluster_subs[name])
        theirs = oracle.poll(oracle_subs[name])
        assert [
            (d.view, d.epoch, d.command, d.added, d.removed) for d in ours
        ] == [
            (d.view, d.epoch, d.command, d.added, d.removed) for d in theirs
        ]
        # replaying the cluster's delta log reproduces the result
        mirror = set()
        for d in ours:
            mirror |= set(d.added)
            mirror -= set(d.removed)
        assert mirror == expected
    assert client.epochs()[va] == oracle.epochs()[va]


def test_contains_and_explain_round_trip(client):
    name, rel = unique("probe"), unique("RP")
    client.view(name, f"V(x) :- {rel}(x)")
    client.insert(rel, (3,))
    assert client.contains(name, (3,))
    assert not client.contains(name, (4,))
    assert "qhierarchical" in client.explain(name)


# ---------------------------------------------------------------------------
# routing: fan-out, shared relations, backfill, schema mirroring
# ---------------------------------------------------------------------------


def test_shared_relation_fans_out_and_backfills(client):
    shared = unique("RF")
    first = unique("fan_a")
    client.view(first, f"V(x) :- {shared}(x)")
    client.insert(shared, (1,))
    client.insert(shared, (2,))
    # The second view lands on the other worker and must be preloaded
    # with the shared relation's existing rows (registration backfill).
    second = unique("fan_b")
    info = client.view(second, f"W(x) :- {shared}(x)")
    assert client.result_set(second) == {(1,), (2,)}
    # Subsequent writes fan out to both workers' views.
    client.insert(shared, (3,))
    assert client.result_set(first) == client.result_set(second) == {
        (1,),
        (2,),
        (3,),
    }
    assert info.relations == (shared,)


def test_unknown_relation_mirrors_session_error(client):
    with pytest.raises(SchemaError, match="no registered view uses relation"):
        client.insert(unique("NOPE"), (1,))


def test_duplicate_view_name_rejected(client):
    name, rel = unique("dup"), unique("RD")
    client.view(name, f"V(x) :- {rel}(x)")
    with pytest.raises(EngineStateError, match="already exists"):
        client.view(name, f"V(x) :- {rel}(x)")


def test_cross_worker_arity_conflict_rejected(client):
    rel = unique("RC")
    client.view(unique("ar_a"), f"V(x) :- {rel}(x)")
    bad = unique("ar_b")
    with pytest.raises(SchemaError, match="already serves"):
        client.view(bad, f"W(x, y) :- {rel}(x, y)")
    # the doomed registration was rolled back remotely
    with pytest.raises(EngineStateError, match="no view named"):
        client.count(bad)


def test_unknown_view_and_handles(client):
    with pytest.raises(EngineStateError, match="no view named"):
        client.count(unique("ghost"))
    with pytest.raises(EngineStateError, match="unknown cursor handle"):
        client.fetch(999_999, 10)
    with pytest.raises(EngineStateError, match="unknown subscription handle"):
        client.poll(999_999)


def test_drop_view_releases_routing(client):
    name, rel = unique("dropme"), unique("RX")
    client.view(name, f"V(x) :- {rel}(x)")
    client.insert(rel, (1,))
    client.drop_view(name)
    with pytest.raises(EngineStateError, match="no view named"):
        client.count(name)
    with pytest.raises(SchemaError):
        client.insert(rel, (2,))


# ---------------------------------------------------------------------------
# cursors over the wire
# ---------------------------------------------------------------------------


def test_cursor_pages_concatenate_to_result(client):
    name, rel = unique("page"), unique("RG")
    client.view(name, f"V(x, y) :- {rel}(x, y)")
    rows = {(i, i % 5) for i in range(57)}
    client.batch([insert(rel, row) for row in rows])
    cursor = client.open_cursor(name)
    seen = []
    while True:
        page = client.fetch(cursor, 10)
        if not page:
            break
        seen.extend(page)
    assert len(seen) == len(rows)
    assert set(seen) == rows
    client.close_cursor(cursor)
    with pytest.raises(EngineStateError, match="unknown cursor handle"):
        client.fetch(cursor, 1)


def test_cursor_binding_and_snapshot(client):
    name, rel = unique("bind"), unique("RB2")
    client.view(name, f"V(x, y) :- {rel}(x, y)")
    client.batch([insert(rel, (i % 3, i)) for i in range(30)])
    bound = client.open_cursor(name, binding={"x": 1})
    rows = client.fetch(bound, 100)
    assert rows and all(row[0] == 1 for row in rows)
    snap = client.open_cursor(name, snapshot=True)
    before = client.count(name)
    client.insert(rel, (1, 999))
    pinned = []
    while True:
        page = client.fetch(snap, 16)
        if not page:
            break
        pinned.extend(page)
    assert len(pinned) == before  # the snapshot pinned pre-write results


def test_cursor_invalidation_report_crosses_the_wire(client):
    name, rel = unique("inv"), unique("RI")
    client.view(name, f"V(x, y) :- {rel}(x, y)")
    client.batch([insert(rel, (i, 0)) for i in range(20)])
    cursor = client.open_cursor(name)
    emitted = client.fetch(cursor, 3)
    client.delete(rel, emitted[0])
    with pytest.raises(CursorInvalidatedError) as excinfo:
        client.fetch(cursor, 3)
    report = excinfo.value.invalidation
    assert report is not None
    assert report.view == name
    assert report.fetched == 3
    assert "delete" in str(report.command)
    assert report.invalidated_epoch > report.opened_epoch


def test_cursor_revalidates_across_beyond_frontier_writes(client):
    name, rel = unique("reval"), unique("RV")
    client.view(name, f"V(x, y) :- {rel}(x, y)")
    client.batch([insert(rel, (i, 0)) for i in range(10)])
    cursor = client.open_cursor(name)
    first = client.fetch(cursor, 2)
    client.insert(rel, (100, 1))  # beyond the cursor's frontier
    rest = client.fetch(cursor, 100)
    assert set(first) | set(rest) == client.result_set(name)


# ---------------------------------------------------------------------------
# subscriptions: ordering, barrier, concurrent writers
# ---------------------------------------------------------------------------


def test_subscription_replay_under_concurrent_writers(client):
    name, rel = unique("live"), unique("RL")
    client.view(name, f"V(x, y) :- {rel}(x, y)")
    handle = client.subscribe(name)
    streams = [
        [
            insert(rel, (1_000 * i + n, n % 4))
            for n in range(60)
        ]
        for i in range(3)
    ]
    threads = [
        threading.Thread(target=lambda s=s: [client.apply(c) for c in s])
        for s in streams
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    deltas = client.poll(handle)
    mirror = set()
    epochs = []
    for delta in deltas:
        mirror |= set(delta.added)
        mirror -= set(delta.removed)
        epochs.append(delta.epoch)
    assert epochs == sorted(epochs)
    assert mirror == client.result_set(name)


def test_poll_observes_writes_that_returned(client):
    name, rel = unique("sync"), unique("RY")
    client.view(name, f"V(x) :- {rel}(x)")
    handle = client.subscribe(name)
    for value in range(25):
        client.insert(rel, (value,))
        # the barrier makes every returned write visible to the poll
        deltas = client.poll(handle)
        assert deltas and deltas[-1].added == ((value,),)


def test_client_side_callback_and_dispatch_pool(cluster):
    with cluster.client(dispatch_workers=2) as facade:
        name, rel = unique("cb"), unique("RCB")
        facade.view(name, f"V(x) :- {rel}(x)")
        seen = []
        handle = facade.subscribe(name, callback=lambda d: seen.append(d))
        for value in range(30):
            facade.insert(rel, (value,))
        facade.drain()
        assert [d.added for d in seen] == [((v,),) for v in range(30)]
        facade.poll(handle)


def test_unsubscribe_stops_the_stream(client):
    name, rel = unique("unsub"), unique("RU")
    client.view(name, f"V(x) :- {rel}(x)")
    handle = client.subscribe(name)
    client.insert(rel, (1,))
    assert len(client.poll(handle)) == 1
    client.unsubscribe(handle)
    client.insert(rel, (2,))
    with pytest.raises(EngineStateError, match="unknown subscription"):
        client.poll(handle)


# ---------------------------------------------------------------------------
# transactional batches across shards
# ---------------------------------------------------------------------------


def test_single_worker_batch_uses_local_transaction(client):
    name, rel = unique("loc"), unique("RLB")
    client.view(name, f"V(x) :- {rel}(x)")
    stats = client.batch(
        [insert(rel, (1,)), insert(rel, (2,)), delete(rel, (1,))]
    )
    assert stats["applied"] == 1  # net effect: only (2,) lands
    assert client.result_set(name) == {(2,)}


def test_cross_shard_batch_commits_atomically(client):
    va, vb = unique("tx_a"), unique("tx_b")
    ra, rb = unique("RTA"), unique("RTB")
    client.view(va, f"V(x) :- {ra}(x)")
    client.view(vb, f"V(x) :- {rb}(x)")
    assert client._worker_of_view(va) != client._worker_of_view(vb)
    stats = client.batch(
        [insert(ra, (1,)), insert(rb, (2,)), insert(ra, (3,)), delete(ra, (3,))]
    )
    assert client.result_set(va) == {(1,)}
    assert client.result_set(vb) == {(2,)}
    assert stats["applied"] == 2


def test_cross_shard_batch_validation_failure_rolls_back(client):
    va, vb = unique("rb_a"), unique("rb_b")
    ra, rb = unique("RRA"), unique("RRB")
    client.view(va, f"V(x) :- {ra}(x)")
    client.view(vb, f"V(x) :- {rb}(x)")
    client.insert(ra, (0,))
    client.insert(rb, (0,))
    with pytest.raises(UpdateError, match="arity"):
        client.batch(
            [insert(ra, (1,)), insert(rb, (2, "too-wide"))]
        )
    # nothing from the doomed batch landed anywhere
    assert client.result_set(va) == {(0,)}
    assert client.result_set(vb) == {(0,)}
    # and both workers still serve (no lock was leaked by the abort)
    client.insert(ra, (5,))
    client.insert(rb, (6,))
    assert client.count(va) == 2
    assert client.count(vb) == 2


# ---------------------------------------------------------------------------
# worker crashes (kill -9 chaos)
# ---------------------------------------------------------------------------


@pytest.fixture
def crashable():
    with ShardCluster(workers=2) as deployment:
        with deployment.client() as facade:
            yield deployment, facade


def _await_death(cluster, index, timeout=5.0):
    deadline = time.monotonic() + timeout
    while cluster.workers[index].alive() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert not cluster.workers[index].alive()


def test_worker_crash_mid_prepare_rolls_back(crashable):
    cluster, facade = crashable
    facade.view("a", "V(x) :- RA(x)")
    facade.view("b", "V(x) :- RB(x)")
    facade.insert("RA", (0,))
    facade.insert("RB", (0,))
    survivor = facade._worker_of_view("a")
    victim = facade._worker_of_view("b")
    assert survivor != victim

    def kill_victim(_client):
        cluster.kill_worker(victim)
        _await_death(cluster, victim)

    facade._test_pause_after_prepare = kill_victim
    with pytest.raises(WorkerCrashedError, match="rolled back") as excinfo:
        facade.batch([insert("RA", (1,)), insert("RB", (1,))])
    facade._test_pause_after_prepare = None
    assert excinfo.value.worker == victim
    assert "b" in excinfo.value.views
    # the survivor observed a rollback: its staged half never applied
    assert facade.result_set("a") == {(0,)}
    # and it keeps serving reads and writes
    facade.insert("RA", (7,))
    assert facade.count("a") == 2


def test_worker_crash_during_prepare_phase_rolls_back(crashable):
    cluster, facade = crashable
    facade.view("a", "V(x) :- RA(x)")
    facade.view("b", "V(x) :- RB(x)")
    facade.insert("RA", (0,))
    facade.insert("RB", (0,))
    low = min(facade._worker_of_view("a"), facade._worker_of_view("b"))
    high = max(facade._worker_of_view("a"), facade._worker_of_view("b"))
    # Kill the higher-id worker first: its prepare (second in ascending
    # order) fails, and the already-prepared lower worker must abort.
    cluster.kill_worker(high)
    _await_death(cluster, high)
    with pytest.raises(WorkerCrashedError, match="rolled back"):
        facade.batch([insert("RA", (1,)), insert("RB", (1,))])
    surviving_view = "a" if facade._worker_of_view("a") == low else "b"
    relation = "RA" if surviving_view == "a" else "RB"
    assert facade.result_set(surviving_view) == {(0,)}
    facade.insert(relation, (9,))
    assert facade.count(surviving_view) == 2


def test_crashed_worker_cursor_raises_precise_error(crashable):
    cluster, facade = crashable
    facade.view("a", "V(x) :- RA(x)")
    facade.view("b", "V(x) :- RB(x)")
    facade.batch([insert("RB", (i,)) for i in range(10)])
    cursor = facade.open_cursor("b")
    assert facade.fetch(cursor, 3)
    sub = facade.subscribe("b")
    victim = facade._worker_of_view("b")
    cluster.kill_worker(victim)
    _await_death(cluster, victim)
    with pytest.raises(WorkerCrashedError) as excinfo:
        facade.fetch(cursor, 3)
    message = str(excinfo.value)
    assert f"shard worker {victim}" in message
    assert "b" in excinfo.value.views
    assert "cursor" in message  # the precise context: which handle died
    with pytest.raises(WorkerCrashedError):
        facade.poll(sub)
    with pytest.raises(WorkerCrashedError):
        facade.count("b")
    # the other shard is untouched
    assert facade.count("a") == 0
    assert victim in facade.dead_workers


def test_cluster_close_terminates_workers():
    cluster = ShardCluster(workers=2)
    pids = [handle.pid for handle in cluster.workers]
    assert all(pid is not None for pid in pids)
    cluster.close()
    cluster.close()  # idempotent
    for handle in cluster.workers:
        assert not handle.alive()


# ---------------------------------------------------------------------------
# Session.serve backend selection
# ---------------------------------------------------------------------------


def test_session_serve_threads_backend():
    session = Session()
    server = session.serve(backend="threads", shards=2)
    assert isinstance(server, Server)
    assert server.session is session
    assert server.shards == 2


def test_session_serve_unknown_backend():
    with pytest.raises(EngineStateError, match="unknown serving backend"):
        Session().serve(backend="quantum")


def test_session_serve_processes_skips_orphaned_relations():
    # drop_view keeps the relation's rows in the session's shared
    # store; migrating must skip them (no cluster view could see them)
    # instead of raising SchemaError on the unroutable relation.
    session = Session()
    session.view("gone", "V(x) :- Orphan(x)")
    session.insert("Orphan", (1,))
    session.drop_view("gone")
    session.view("kept", "W(x) :- Keep(x)")
    session.insert("Keep", (2,))
    facade = session.serve(backend="processes", shards=2)
    try:
        assert facade.result_set("kept") == {(2,)}
        with pytest.raises(EngineStateError, match="no view named"):
            facade.count("gone")
    finally:
        facade.close()


def test_session_serve_processes_migrates_views_and_rows():
    session = Session()
    session.view("feed", "V(x, y) :- E(x, y), T(y)")
    session.view("tags", "W(x) :- G(x)")
    for value in range(4):
        session.insert("T", (value,))
    session.insert("E", (1, 2))
    session.insert("E", (9, 3))
    session.insert("G", ("tag",))
    facade = session.serve(backend="processes", shards=2)
    try:
        assert facade.owns_cluster
        for name in ("feed", "tags"):
            assert facade.result_set(name) == session[name].result_set()
            assert (
                facade.result_digest(name) == session[name].result_digest()
            )
        # the cluster keeps serving updates with the same engines
        facade.insert("E", (4, 0))
        assert facade.count("feed") == session["feed"].count() + 1
        cluster = facade._cluster
    finally:
        facade.close()
    for handle in cluster.workers:
        assert not handle.alive()


# ---------------------------------------------------------------------------
# supervision chaos: kill -9 under a supervisor degrades to a bounded stall
# ---------------------------------------------------------------------------


@pytest.fixture
def supervised():
    from repro.serve.journal import CommandJournal
    from repro.serve.supervisor import Supervisor

    with ShardCluster(workers=2) as deployment:
        journal = CommandJournal()
        with deployment.client(journal=journal) as facade:
            supervisor = Supervisor(
                deployment, facade, journal=journal, heartbeat=0.1
            ).start()
            try:
                yield deployment, facade, supervisor
            finally:
                supervisor.stop()


def _await_recovery(facade, supervisor, count=1, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not facade.dead_workers and len(supervisor.recoveries) >= count:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"no recovery after {timeout}s: dead={facade.dead_workers}, "
        f"recoveries={supervisor.recoveries}"
    )


def test_kill9_mid_stream_recovers_byte_identical(supervised):
    cluster, facade, supervisor = supervised
    oracle = Server(Session())
    views = {"sup_a": "V(x, y) :- SA(x, y)", "sup_b": "W(x, y) :- SB(x, y)"}
    for name, query in views.items():
        facade.view(name, query)
        oracle.view(name, query)
    victim = facade._worker_of_view("sup_b")
    commands = effective_stream("SA", 150, 9, 21) + effective_stream(
        "SB", 150, 9, 22
    )
    random.Random(5).shuffle(commands)
    for step, command in enumerate(commands):
        if step == 90:
            cluster.kill_worker(victim)  # SIGKILL, mid-write-stream
        # Supervised: the apply stalls while the supervisor respawns
        # and replays, then retries — never a WorkerCrashedError.
        assert facade.apply(command) == oracle.apply(command)
    _await_recovery(facade, supervisor)
    for name in views:
        assert facade.result_set(name) == oracle.session[name].result_set()
        assert (
            facade.result_digest(name)
            == oracle.session[name].engine.result_digest()
        )
    assert supervisor.recoveries[0]["worker"] == victim
    assert cluster.restarts[victim] >= 1
    assert facade.dead_workers == ()


def test_repeated_kills_of_same_worker(supervised):
    cluster, facade, supervisor = supervised
    oracle = Server(Session())
    facade.view("rk", "V(x) :- RK(x)")
    oracle.view("rk", "V(x) :- RK(x)")
    victim = facade._worker_of_view("rk")
    value = 0
    for round_no in range(1, 4):
        for _ in range(10):
            facade.insert("RK", (value,))
            oracle.insert("RK", (value,))
            value += 1
        cluster.kill_worker(victim)
        facade.insert("RK", (value,))  # stalls through the recovery
        oracle.insert("RK", (value,))
        value += 1
        _await_recovery(facade, supervisor, count=round_no)
    assert facade.result_digest("rk") == oracle.session[
        "rk"
    ].engine.result_digest()
    assert cluster.restarts[victim] == 3
    assert supervisor.journal.epoch == 3
    stats = facade.cluster_stats()
    assert stats[victim]["restarts"] == 3
    assert stats[victim]["incarnation"] == 3


def test_recovered_worker_handles_report_precisely(supervised):
    from repro.errors import WorkerRecoveredError

    cluster, facade, supervisor = supervised
    facade.view("wr", "V(x) :- WR(x)")
    facade.batch([insert("WR", (i,)) for i in range(20)])
    victim = facade._worker_of_view("wr")
    cursor = facade.open_cursor("wr")
    assert facade.fetch(cursor, 5)
    sub = facade.subscribe("wr")
    cluster.kill_worker(victim)
    _await_death(cluster, victim)
    _await_recovery(facade, supervisor)
    # Result state survived the crash; per-handle state did not, and
    # says so precisely instead of pretending or crashing permanently.
    with pytest.raises(WorkerRecoveredError) as excinfo:
        facade.fetch(cursor, 5)
    assert excinfo.value.worker == victim
    assert "wr" in excinfo.value.views
    assert excinfo.value.journal_epoch == supervisor.journal.epoch
    with pytest.raises(WorkerRecoveredError):
        facade.poll(sub)
    facade.unsubscribe(sub)  # stale: cleans up locally without error
    reopened = facade.open_cursor("wr")
    assert set(facade.fetch(reopened, 100)) == facade.result_set("wr")
    assert set(facade.fetch(reopened, 100)) == set()  # exhausted
    fresh = facade.subscribe("wr")
    facade.insert("WR", (99,))
    deltas = facade.poll(fresh)
    assert deltas and deltas[-1].added == ((99,),)


def test_unsupervised_client_still_fails_fast(crashable):
    cluster, facade = crashable
    facade.view("ff", "V(x) :- FF(x)")
    victim = facade._worker_of_view("ff")
    cluster.kill_worker(victim)
    _await_death(cluster, victim)
    with pytest.raises(WorkerCrashedError):
        facade.insert("FF", (1,))


def test_max_restarts_declares_unrecoverable():
    from repro.serve.journal import CommandJournal
    from repro.serve.supervisor import Supervisor

    with ShardCluster(workers=2) as cluster:
        journal = CommandJournal()
        with cluster.client(journal=journal) as facade:
            facade.view("mr", "V(x) :- MR(x)")
            facade.insert("MR", (1,))
            victim = facade._worker_of_view("mr")
            supervisor = Supervisor(
                cluster, facade, journal=journal, max_restarts=2
            )
            # Attach without start(): the test drives sweeps manually,
            # so no background thread races the assertions.
            facade.attach_supervisor(supervisor)
            try:
                for _ in range(2):
                    cluster.kill_worker(victim)
                    _await_death(cluster, victim)
                    facade._mark_dead(victim, ClusterError("chaos"))
                    assert supervisor.sweep() == [victim]
                cluster.kill_worker(victim)
                _await_death(cluster, victim)
                facade._mark_dead(victim, ClusterError("chaos"))
                assert supervisor.sweep() == []
                with pytest.raises(WorkerCrashedError, match="gave up"):
                    facade.insert("MR", (2,))
                # the untouched worker keeps serving
                other = 1 - victim
                facade.view("mr2", "W(x) :- MR2(x)")
                assert facade._worker_of_view("mr2") == other
            finally:
                supervisor.stop()


# ---------------------------------------------------------------------------
# live view migration
# ---------------------------------------------------------------------------


@pytest.fixture
def fresh():
    with ShardCluster(workers=2) as deployment:
        with deployment.client() as facade:
            yield deployment, facade


def test_migrate_view_moves_rows_subs_and_routing(fresh):
    _cluster, facade = fresh
    facade.view("mg", "V(x, y) :- MG(x, y)")
    facade.batch([insert("MG", (i, i % 3)) for i in range(12)])
    sub = facade.subscribe("mg")
    cursor = facade.open_cursor("mg")
    assert facade.fetch(cursor, 4)
    source = facade._worker_of_view("mg")
    before = facade.result_digest("mg")
    version = facade.stats()["routing_version"]

    target = facade.migrate_view("mg")
    assert target != source
    assert facade._worker_of_view("mg") == target
    assert facade.stats()["routing_version"] == version + 1
    assert facade.result_digest("mg") == before
    # writes route to the new home and deltas still flow
    facade.insert("MG", (50, 0))
    deltas = facade.poll(sub)
    assert deltas and deltas[-1].added == ((50, 0),)
    # the cursor pages worker-side state that did not move: precise error
    with pytest.raises(CursorInvalidatedError, match="migrated"):
        facade.fetch(cursor, 4)
    reopened = facade.open_cursor("mg")
    assert set(facade.fetch(reopened, 100)) == facade.result_set("mg")


def test_migrate_view_under_concurrent_write_stream(fresh):
    _cluster, facade = fresh
    oracle = Server(Session())
    for api in (facade, oracle):
        api.view("mw", "V(x, y) :- MW(x, y)")
    commands = effective_stream("MW", 240, 7, 33)
    sub = facade.subscribe("mw")
    errors = []

    def writer():
        try:
            for command in commands:
                facade.apply(command)
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    thread = threading.Thread(target=writer)
    thread.start()
    moves = 0
    while thread.is_alive():
        facade.migrate_view("mw")
        moves += 1
        time.sleep(0.005)
    thread.join()
    assert not errors
    for command in commands:
        oracle.apply(command)
    assert moves >= 2
    assert facade.result_digest("mw") == oracle.session[
        "mw"
    ].engine.result_digest()
    # no delta was lost across any hop: the replayed log converges
    mirror = set()
    for delta in facade.poll(sub):
        mirror |= set(delta.added)
        mirror -= set(delta.removed)
    assert mirror == facade.result_set("mw")


def test_migrate_view_to_same_worker_is_noop(fresh):
    _cluster, facade = fresh
    facade.view("ms", "V(x) :- MS(x)")
    source = facade._worker_of_view("ms")
    assert facade.migrate_view("ms", target=source) == source
    with pytest.raises(EngineStateError, match="no view named"):
        facade.migrate_view("nope")


# ---------------------------------------------------------------------------
# cluster_stats: the operational load surface
# ---------------------------------------------------------------------------


def test_cluster_stats_reports_load(fresh):
    _cluster, facade = fresh
    facade.view("cs_a", "V(x) :- CSA(x)")
    facade.view("cs_b", "W(x) :- CSB(x)")
    facade.batch([insert("CSA", (i,)) for i in range(5)])
    stats = facade.cluster_stats()
    assert set(stats) == {0, 1, "supervisor"}
    assert stats["supervisor"] is None  # the fresh rig runs unsupervised
    total_views = total_rows = 0
    for worker, info in stats.items():
        if worker == "supervisor":
            continue
        assert info["pid"] == facade.ping()[worker]
        assert info["restarts"] == 0
        assert info["pending"] >= 0
        total_views += info["views"]
        total_rows += info["rows"]
    assert total_views == 2
    assert total_rows == 5
    assert facade.stats()["cluster"] == stats


# ---------------------------------------------------------------------------
# interactions the chaos drive surfaced: stale handles vs migration,
# oversize frames vs worker liveness
# ---------------------------------------------------------------------------


def test_migrate_view_skips_stale_incarnation_subs(supervised):
    from repro.errors import WorkerRecoveredError

    cluster, facade, supervisor = supervised
    facade.view("sm", "V(x) :- SM(x)")
    facade.insert("SM", (1,))
    victim = facade._worker_of_view("sm")
    stale = facade.subscribe("sm")
    cluster.kill_worker(victim)
    _await_death(cluster, victim)
    _await_recovery(facade, supervisor)
    # The stale subscription died with the old incarnation; migration
    # must neither drain nor resurrect it — and must not trip over it.
    target = facade.migrate_view("sm")
    assert target != victim
    assert facade.result_set("sm") == {(1,)}
    with pytest.raises(WorkerRecoveredError):
        facade.poll(stale)
    live = facade.subscribe("sm")
    facade.insert("SM", (2,))
    deltas = facade.poll(live)
    assert deltas and deltas[-1].added == ((2,),)


@pytest.mark.parametrize("multiplex", [False, True])
def test_oversize_frames_do_not_condemn_the_worker(monkeypatch, multiplex):
    from repro.errors import FrameTooLargeError

    monkeypatch.setenv("REPRO_MAX_FRAME", "4096")
    with ShardCluster(workers=1) as deployment:
        with deployment.client(multiplex=multiplex) as facade:
            facade.view("of", "V(x, y) :- OF(x, y)")
            # Outgoing direction: the request never hits the wire, the
            # caller hears about the payload, the channel stays up.
            with pytest.raises(FrameTooLargeError, match="frame cap"):
                facade.insert("OF", (1, "x" * 8000))
            assert facade.dead_workers == ()
            for i in range(400):
                assert facade.insert("OF", (i, "y" * 16))
            # Reply direction: the worker converts the oversize reply
            # into an error instead of dropping the connection (which
            # would be diagnosed as a crash).
            with pytest.raises(FrameTooLargeError, match="frame cap"):
                facade.result_set("of")
            assert facade.dead_workers == ()
            assert facade.count("of") == 400

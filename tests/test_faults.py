"""Deterministic fault injection: scripted drops, delays, freezes and
truncations against the cluster transport, plus the seeded chaos
differential the nightly matrix replays.

Every scenario here is a *script*, not a race: the same
:class:`~repro.serve.faults.FaultPlan` hits the same frames every run,
so the deadline/retry machinery is exercised on cue and the final
state can be compared byte-for-byte against the in-process oracle.
"""

import os
import signal
import socket
import threading
import time

import pytest

from repro import Server
from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    WorkerCrashedError,
)
from repro.serve.cluster import ShardCluster
from repro.serve.faults import Fault, FaultPlan, FaultyConnection
from repro.serve.journal import CommandJournal
from repro.serve.supervisor import Supervisor
from repro.serve.transport import Connection, get_codec
from repro.storage.updates import delete, insert

pytestmark = pytest.mark.cluster

CHAOS_SEEDS = [11, 23]
if os.environ.get("REPRO_CHAOS_SEED"):
    CHAOS_SEEDS = [int(os.environ["REPRO_CHAOS_SEED"])]


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------


def test_randomized_plan_is_deterministic_per_seed():
    a = FaultPlan.randomized(seed=42)
    b = FaultPlan.randomized(seed=42)
    assert a.faults == b.faults
    assert a.seed == 42 and len(a) == 6
    assert "seed=42" in repr(a)
    c = FaultPlan.randomized(seed=43)
    assert c.faults != a.faults


def test_fault_validation():
    with pytest.raises(ClusterError, match="unknown fault action"):
        Fault(action="explode", frame=1)
    with pytest.raises(ClusterError, match="unknown fault direction"):
        Fault(action="drop", frame=1, direction="sideways")
    with pytest.raises(ClusterError, match="unknown fault channel"):
        Fault(action="drop", frame=1, channel="carrier-pigeon")
    with pytest.raises(ClusterError, match="1-based"):
        Fault(action="drop", frame=0)
    with pytest.raises(ClusterError, match="direction='send'"):
        Fault(action="truncate", frame=1, direction="recv")
    with pytest.raises(ClusterError, match="delay="):
        Fault(action="delay", frame=1)
    with pytest.raises(ClusterError, match="duration="):
        Fault(action="freeze", frame=1)


def test_plan_wrap_only_installs_when_faults_match():
    plan = FaultPlan(
        faults=(Fault(action="drop", frame=1, worker=0, channel="request"),)
    )
    left, right = socket.socketpair()
    try:
        conn = Connection(left, get_codec("json"))
        assert plan.wrap(conn, 1, "request", lambda: None) is conn
        assert plan.wrap(conn, 0, "push", lambda: None) is conn
        wrapped = plan.wrap(conn, 0, "request", lambda: None)
        assert isinstance(wrapped, FaultyConnection)
        assert "pending=1" in repr(wrapped)
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# FaultyConnection frame accounting over a raw socketpair
# ---------------------------------------------------------------------------


def test_faulty_connection_drops_duplicates_and_counts_frames():
    left, right = socket.socketpair()
    peer = Connection(right, get_codec("json"))
    conn = FaultyConnection(
        Connection(left, get_codec("json")),
        [
            Fault(action="drop", frame=2, direction="send"),
            Fault(action="duplicate", frame=3, direction="send"),
            Fault(action="duplicate", frame=2, direction="recv"),
        ],
        lambda: None,
    )
    try:
        conn.send({"n": 1})
        conn.send({"n": 2})  # dropped: the peer never sees it
        conn.send({"n": 3})  # duplicated: the peer sees it twice
        assert peer.recv() == {"n": 1}
        assert peer.recv() == {"n": 3}
        assert peer.recv() == {"n": 3}
        peer.send({"r": 1})
        peer.send({"r": 2})
        assert conn.recv() == {"r": 1}
        assert conn.recv() == {"r": 2}  # duplicated inbound ...
        assert conn.recv() == {"r": 2}  # ... replayed on the next read
        assert ("send", 2, "drop") in conn.fired
        assert ("send", 3, "duplicate") in conn.fired
        assert ("recv", 2, "duplicate") in conn.fired
    finally:
        conn.close()
        peer.close()


# ---------------------------------------------------------------------------
# cluster-level scripted faults
#
# Frame ordinals on a worker's request channel are deterministic:
# 1 = hello reply, then one reply per request in issue order.
# ---------------------------------------------------------------------------


def test_dropped_reply_times_out_and_blind_retry_succeeds():
    plan = FaultPlan(
        faults=(
            # frame 4 = the reply to the first count() after hello(1),
            # view(2), insert(3) — dropped, so the mux deadline fires
            # and the retry-safe read is blindly re-sent.
            Fault(action="drop", frame=4, worker=0, channel="request"),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(
            request_timeout=0.5, retry_budget=2, faults=plan
        ) as facade:
            facade.view("dr", "V(x) :- DR(x)")
            facade.insert("DR", (1,))
            started = time.monotonic()
            assert facade.count("dr") == 1
            elapsed = time.monotonic() - started
            # one deadline (0.5s) plus backoff, then the retry answered
            assert elapsed >= 0.5
            # the channel was never condemned: workers all alive
            assert not facade.dead_workers


def test_dropped_write_reply_raises_instead_of_blind_retry():
    plan = FaultPlan(
        faults=(
            # frame 3 = the reply to the insert — writes are not
            # retry-safe (a blind re-send could double-apply against a
            # non-idempotent journal verdict), so the deadline surfaces.
            Fault(action="drop", frame=3, worker=0, channel="request"),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(
            request_timeout=0.4, retry_budget=3, faults=plan
        ) as facade:
            facade.view("wr", "V(x) :- WR(x)")
            with pytest.raises(DeadlineExceededError) as info:
                facade.insert("WR", (1,))
            error = info.value
            assert error.details["op"] == "insert"
            assert error.details["worker"] == 0
            assert error.details["elapsed"] >= 0.4
            assert "not retry-safe" in str(error)
            # Only the *reply* was lost: the worker applied the write,
            # which is exactly why writes must not be blindly re-sent.
            assert facade.count("wr") == 1
            assert not facade.dead_workers


def test_injected_delay_does_not_starve_other_worker_lanes():
    plan = FaultPlan(
        faults=(
            # frame 4 on worker 0 = the reply to the slow thread's
            # count — held for 0.6s in worker 0's reader lane.
            Fault(
                action="delay",
                frame=4,
                worker=0,
                channel="request",
                delay=0.6,
            ),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(faults=plan) as facade:
            facade.view("la", "V(x) :- LA(x)")  # worker 0
            facade.view("lb", "W(x) :- LB(x)")  # worker 1
            facade.insert("LA", (1,))
            facade.insert("LB", (2,))
            slow_elapsed = []

            def slow_read():
                started = time.monotonic()
                assert facade.count("la") == 1
                slow_elapsed.append(time.monotonic() - started)

            thread = threading.Thread(target=slow_read)
            thread.start()
            try:
                time.sleep(0.05)  # let the slow count get in flight
                started = time.monotonic()
                for _ in range(5):
                    assert facade.count("lb") == 1
                fast_elapsed = time.monotonic() - started
            finally:
                thread.join()
            # worker 1's lane answered while worker 0's reply was held
            assert slow_elapsed[0] >= 0.5
            assert fast_elapsed < 0.5


def test_frozen_worker_trips_deadline_then_recovers_after_thaw():
    plan = FaultPlan(
        faults=(
            # freeze fires as frame 3 (the insert reply) passes:
            # SIGSTOP for 0.6s, SIGCONT from a timer thread.
            Fault(
                action="freeze",
                frame=3,
                worker=0,
                channel="request",
                duration=0.6,
            ),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(
            request_timeout=0.25, retry_budget=6, faults=plan
        ) as facade:
            facade.view("fz", "V(x) :- FZ(x)")
            facade.insert("FZ", (1,))
            started = time.monotonic()
            assert facade.count("fz") == 1
            elapsed = time.monotonic() - started
            # at least one 0.25s deadline fired while the worker was
            # stopped; the retries converged once it thawed
            assert elapsed >= 0.25
            assert not facade.dead_workers


def test_truncated_request_condemns_the_channel():
    plan = FaultPlan(
        faults=(
            # frame 3 (send) = the insert request: half the payload
            # goes out and the connection slams shut — the worker sees
            # a mid-frame EOF, the client a crashed channel.
            Fault(
                action="truncate",
                frame=3,
                worker=0,
                channel="request",
                direction="send",
            ),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(faults=plan) as facade:
            facade.view("tr", "V(x) :- TR(x)")
            with pytest.raises(WorkerCrashedError) as info:
                facade.insert("TR", (1,))
            assert info.value.details["worker"] == 0
            assert 0 in facade.dead_workers


# ---------------------------------------------------------------------------
# the seeded chaos differential
# ---------------------------------------------------------------------------


def _oracle_final_state(commands, views):
    oracle = Server(shards=1)
    try:
        for name, text in views:
            oracle.view(name, text)
        for command in commands:
            if command.op == "insert":
                oracle.insert(command.relation, command.row)
            else:
                oracle.delete(command.relation, command.row)
        return {
            name: sorted(oracle.result_set(name), key=repr)
            for name, _ in views
        }
    finally:
        oracle.close()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_differential_with_faults_and_failover(seed):
    """The full gauntlet, scripted from one seed: dropped and delayed
    reply frames, a ``kill -9`` mid-stream with supervised journal
    replay, a writer that retries its own deadlines — and at the end a
    pinned snapshot that must be **byte-identical** to the frozen
    in-process oracle, including paging order across a mid-fetch kill.
    """
    plan = FaultPlan.randomized(seed=seed, count=8, frames=36, max_delay=0.04)
    views = [("cha", "V(x) :- CHA(x)"), ("chb", "W(x) :- CHB(x)")]
    commands = []
    for i in range(50):
        commands.append(insert("CHA" if i % 2 == 0 else "CHB", (i,)))
        if i % 9 == 8:
            commands.append(delete("CHA" if i % 2 == 0 else "CHB", (i,)))
    expected = _oracle_final_state(commands, views)

    with ShardCluster(workers=2) as deployment:
        journal = CommandJournal()
        with deployment.client(
            journal=journal,
            request_timeout=1.0,
            retry_budget=4,
            faults=plan,
        ) as facade:
            supervisor = Supervisor(
                deployment, facade, journal=journal, heartbeat=0.1
            ).start()
            try:
                for name, text in views:
                    facade.view(name, text)
                for step, command in enumerate(commands):
                    # writes are not blindly retried by the transport;
                    # the *caller* owns the retry, and set semantics
                    # plus the journal fold make it exactly-once
                    for attempt in range(6):
                        try:
                            if command.op == "insert":
                                facade.insert(command.relation, command.row)
                            else:
                                facade.delete(command.relation, command.row)
                            break
                        except DeadlineExceededError:
                            if attempt == 5:
                                raise
                    if step == 25:
                        os.kill(
                            facade.ping()[facade._worker_of_view("cha")],
                            signal.SIGKILL,
                        )
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if not facade.dead_workers:
                        break
                    time.sleep(0.02)
                assert not facade.dead_workers

                snap = facade.snapshot(views=["cha", "chb"])
                for name, _ in views:
                    assert list(snap.rows(name)) == expected[name]

                # byte-identical paging across a mid-fetch kill: the
                # pinned rows never re-contact the cluster
                page = snap.fetch("cha", 5)
                os.kill(facade.ping()[snap.workers["cha"]], signal.SIGKILL)
                rest = snap.fetch("cha", 10_000)
                assert page + rest == expected["cha"]
            finally:
                supervisor.stop()

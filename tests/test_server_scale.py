"""The scaled serving layer: sharded writes and async dispatch.

Covers the :class:`repro.serve.Server` scaling surface:

* **view-affine sharding** — round-robin placement, relation→shard
  routing (one write takes exactly the shards whose views mention the
  relation, ascending order), cross-shard fan-out when two views on
  different shards share a relation, and batches looking atomic
  everywhere;
* **async subscription dispatch** — deliveries leave the writer
  thread, per-subscription FIFO keeps delta epochs increasing, the
  drain barrier makes poll deterministic, back-pressure bounds the
  backlog, and a closed pool degrades to inline delivery;
* **differential ends** — after any concurrent run, every view equals
  a sequential oracle over the session's final rows, and subscription
  replay reproduces ``result_set()`` exactly.
"""

import random
import threading
import time
from typing import List

import pytest

from repro.api import Session
from repro.errors import EngineStateError
from repro.serve import DispatchPool, Server
from repro.storage.updates import insert

N_VIEWS = 4


def disjoint_server(shards, **kwargs):
    server = Server(shards=shards, **kwargs)
    for i in range(N_VIEWS):
        server.view(f"v{i}", f"V(x, y) :- E{i}(x, y), T{i}(y)")
    return server


def churn(server, index, seed, rounds=120):
    rng = random.Random(seed)
    for step in range(rounds):
        if rng.random() < 0.75:
            server.insert(f"E{index}", (rng.randint(1, 30), rng.randint(1, 6)))
        elif rng.random() < 0.5:
            server.insert(f"T{index}", (rng.randint(1, 6),))
        else:
            server.delete(f"E{index}", (rng.randint(1, 30), rng.randint(1, 6)))


def expected_result(server, index):
    e_rows = server.session.rows(f"E{index}")
    t_rows = server.session.rows(f"T{index}")
    return {(x, y) for (x, y) in e_rows if (y,) in t_rows}


# ---------------------------------------------------------------------------
# sharded write path
# ---------------------------------------------------------------------------


def test_views_place_round_robin_and_writes_route_by_relation():
    server = disjoint_server(shards=4)
    assert [server.shard_of(f"v{i}") for i in range(4)] == [0, 1, 2, 3]
    assert server._relation_shards["E2"] == (2,)
    server.insert("E3", (1, 1))
    assert server._shard_writes == [0, 0, 0, 1]  # only shard 3 wrote
    stats = server.stats()
    assert stats["shards"] == 4 and stats["shard_of_view"]["v1"] == 1


def test_shared_relation_fans_out_across_shards():
    server = Server(shards=2)
    server.view("a", "A(x, y) :- E(x, y), L(y)")  # shard 0
    server.view("b", "B(x) :- E(x, x)")  # shard 1: E is shared
    assert server._relation_shards["E"] == (0, 1)
    server.insert("L", (2,))
    server.insert("E", (1, 2))
    server.insert("E", (3, 3))
    assert server.count("a") == 1 and server.count("b") == 1
    assert server.epochs() == {"a": 3, "b": 2}  # L only touched shard 0


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_concurrent_disjoint_writers_match_sequential_oracle(shards):
    server = disjoint_server(shards=shards)
    subscriptions = [server.subscribe(f"v{i}") for i in range(N_VIEWS)]
    threads = [
        threading.Thread(target=churn, args=(server, i, 1000 + i))
        for i in range(N_VIEWS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for i in range(N_VIEWS):
        view = server.session[f"v{i}"]
        assert view.result_set() == expected_result(server, i)
        mirror = set()
        epochs = []
        for delta in server.poll(subscriptions[i]):
            mirror |= set(delta.added)
            mirror -= set(delta.removed)
            epochs.append(delta.epoch)
        assert mirror == view.result_set()
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)


def test_cross_shard_writers_on_a_shared_relation_stay_consistent():
    server = Server(shards=4)
    server.view("left", "L(x, y) :- E(x, y), A(y)")
    server.view("right", "R(x, y) :- E(x, y), B(y)")
    server.view("third", "T3(x) :- C(x)")

    def writer(seed):
        rng = random.Random(seed)
        for _ in range(150):
            roll = rng.random()
            if roll < 0.5:
                server.insert("E", (rng.randint(1, 20), rng.randint(1, 5)))
            elif roll < 0.7:
                server.insert("A", (rng.randint(1, 5),))
            elif roll < 0.9:
                server.insert("B", (rng.randint(1, 5),))
            else:
                server.delete("E", (rng.randint(1, 20), rng.randint(1, 5)))

    threads = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    e_rows = server.session.rows("E")
    a_rows = server.session.rows("A")
    b_rows = server.session.rows("B")
    assert server.session["left"].result_set() == {
        (x, y) for (x, y) in e_rows if (y,) in a_rows
    }
    assert server.session["right"].result_set() == {
        (x, y) for (x, y) in e_rows if (y,) in b_rows
    }


def test_batch_is_atomic_across_shards():
    server = disjoint_server(shards=4)
    stats = server.batch(
        [insert("E0", (1, 1)), insert("T0", (1,)), insert("E3", (2, 2)),
         insert("T3", (2,))]
    )
    assert stats["applied"] == 4
    assert server.count("v0") == 1 and server.count("v3") == 1


def test_drop_view_reroutes_relations():
    server = disjoint_server(shards=2)
    server.drop_view("v0")
    with pytest.raises(EngineStateError):
        server.shard_of("v0")
    assert "E0" not in server._relation_shards
    server.insert("E1", (1, 1))  # routing still works after reindex
    assert server.count("v1") == 0


def test_single_shard_server_rejects_bad_shard_count():
    with pytest.raises(EngineStateError):
        Server(shards=0)


def test_wrapping_a_prepopulated_session_places_existing_views():
    session = Session()
    session.view("a", "A(x) :- R(x)")
    session.view("b", "B(x) :- S(x)")
    server = Server(session, shards=2)
    assert {server.shard_of("a"), server.shard_of("b")} == {0, 1}
    server.insert("R", (1,))
    assert server.count("a") == 1


# ---------------------------------------------------------------------------
# async subscription dispatch
# ---------------------------------------------------------------------------


def test_async_dispatch_replay_is_identical_and_polls_deterministically():
    with Server(shards=2, dispatch_workers=2) as server:
        server.view("v", "V(x, y) :- E(x, y), T(y)")
        subscription = server.subscribe("v")
        rng = random.Random(3)
        for value in range(5):
            server.insert("T", (value,))
        for _ in range(200):
            if rng.random() < 0.7:
                server.insert("E", (rng.randint(1, 40), rng.randrange(5)))
            else:
                server.delete("E", (rng.randint(1, 40), rng.randrange(5)))
        # drain barrier: a poll after the writes observes all of them —
        # no explicit drain() needed
        mirror = set()
        epochs = []
        for delta in server.poll(subscription):
            mirror |= set(delta.added)
            mirror -= set(delta.removed)
            epochs.append(delta.epoch)
        assert mirror == server.session["v"].result_set()
        assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)


def test_async_callbacks_run_off_the_writer_thread():
    with Server(dispatch_workers=1) as server:
        server.view("v", "V(x) :- R(x)")
        delivery_threads = []
        handle = server.subscribe(
            "v", callback=lambda d: delivery_threads.append(
                threading.get_ident()
            )
        )
        for i in range(5):
            server.insert("R", (i,))
        server.drain()
        assert len(server.poll(handle)) == 5
        assert delivery_threads and all(
            t != threading.get_ident() for t in delivery_threads
        )


def test_sync_dispatch_remains_in_writer_thread_by_default():
    server = Server()
    server.view("v", "V(x) :- R(x)")
    delivery_threads = []
    server.subscribe(
        "v", callback=lambda d: delivery_threads.append(threading.get_ident())
    )
    server.insert("R", (1,))
    assert delivery_threads == [threading.get_ident()]


def test_backpressure_bounds_the_backlog():
    session = Session()
    view = session.view("v", "V(x) :- R(x)")
    pool = DispatchPool(workers=1, max_queue=3)
    observed = []

    def slow_callback(delta):
        time.sleep(0.002)

    subscription = view.subscribe(callback=slow_callback, dispatcher=pool)
    for i in range(30):
        session.insert("R", (i,))
        observed.append(pool.pending)
    assert max(observed) <= 3  # submit blocked instead of queueing deeper
    pool.drain()
    assert len(subscription.poll()) == 30
    assert subscription.delivered == 30
    pool.close()


def test_closed_pool_degrades_to_inline_delivery():
    session = Session()
    view = session.view("v", "V(x) :- R(x)")
    pool = DispatchPool(workers=1)
    subscription = view.subscribe(dispatcher=pool)
    session.insert("R", (1,))
    pool.close()
    session.insert("R", (2,))  # delivered inline by the writer
    assert [d.added for d in subscription.poll()] == [(((1,),)), (((2,),))]
    pool.close()  # idempotent


def test_max_pending_drop_accounting_still_works_async():
    with Server(dispatch_workers=2) as server:
        server.view("v", "V(x) :- R(x)")
        handle = server.subscribe("v", max_pending=2)
        for i in range(6):
            server.insert("R", (i,))
        server.drain()
        subscription = server._subscriptions[handle]
        assert subscription.dropped == 4
        assert [d.added for d in server.poll(handle)] == [
            (((4,),)),
            (((5,),)),
        ]


def test_callback_may_poll_its_own_subscription_under_async_dispatch():
    # The notify-then-drain pattern: a callback that polls its own
    # subscription must not deadlock on the pool's drain barrier (the
    # delta being delivered is already in the outbox).
    done = threading.Event()
    polled: List[object] = []
    with Server(dispatch_workers=1) as server:
        server.view("v", "V(x) :- R(x)")
        handle_box: List[int] = []

        def callback(delta):
            polled.extend(server.poll(handle_box[0]))
            done.set()

        handle_box.append(server.subscribe("v", callback=callback))
        server.insert("R", (1,))
        assert done.wait(timeout=5), "callback self-poll deadlocked"
        server.drain()
    assert [d.added for d in polled] == [(((1,),))]


def test_backpressure_with_reentrant_callbacks_makes_progress():
    # Saturated queue + callbacks that read the server back: the
    # back-pressured writer must help deliver instead of deadlocking
    # against the worker that is blocked on the writer's shard lock.
    counts: List[int] = []
    with Server(dispatch_workers=1, dispatch_queue=1) as server:
        server.view("v", "V(x) :- R(x)")
        handle = server.subscribe(
            "v", callback=lambda d: counts.append(server.count("v"))
        )
        done = threading.Event()

        def writer():
            for i in range(25):
                server.insert("R", (i,))
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert done.wait(timeout=10), "writer wedged on back-pressure"
        thread.join()
        server.drain()
        assert len(server.poll(handle)) == 25
    assert len(counts) == 25


def test_stats_surface_shards_and_dispatch():
    with Server(shards=3, dispatch_workers=2) as server:
        server.view("v", "V(x) :- R(x)")
        server.subscribe("v")
        server.insert("R", (1,))
        server.drain()
        stats = server.stats()
        assert stats["shards"] == 3
        assert sum(stats["shard_writes"]) == stats["writes"] == 1
        assert stats["dispatch"]["workers"] == 2
        assert stats["dispatch"]["delivered"] == 1
        assert stats["dispatch"]["pending"] == 0


# ---------------------------------------------------------------------------
# chunked streams: apply_all under one lock acquisition
# ---------------------------------------------------------------------------


def test_apply_all_matches_per_command_apply():
    from repro.storage.updates import delete as delete_cmd

    chunked = Server(Session(), shards=2)
    oracle = Server(Session(), shards=2)
    for server in (chunked, oracle):
        server.view("a", "V(x) :- RA(x)")
        server.view("b", "V(x) :- RB(x)")
    rng = random.Random(3)
    commands = []
    for step in range(200):
        relation = rng.choice(["RA", "RB"])
        row = (rng.randrange(20),)
        commands.append(
            insert(relation, row)
            if rng.random() < 0.7
            else delete_cmd(relation, row)
        )
    flags = chunked.apply_all(commands)
    expected = [oracle.apply(command) for command in commands]
    assert flags == expected
    for name in ("a", "b"):
        assert (
            chunked.session[name].result_set()
            == oracle.session[name].result_set()
        )
    assert chunked.writes == len(commands)
    assert chunked.apply_all([]) == []


def test_apply_all_delivers_deltas_and_choreographs_cursors():
    server = Server(Session())
    server.view("a", "V(x) :- RA(x)")
    handle = server.subscribe("a")
    server.apply_all([insert("RA", (value,)) for value in range(30)])
    deltas = server.poll(handle)
    assert [d.added for d in deltas] == [((v,),) for v in range(30)]
    cursor = server.open_cursor("a")
    emitted = server.fetch(cursor, 5)
    # a chunk deleting an emitted tuple invalidates, same as apply()
    from repro.errors import CursorInvalidatedError
    from repro.storage.updates import delete as delete_cmd

    server.apply_all([delete_cmd("RA", emitted[0])])
    with pytest.raises(CursorInvalidatedError):
        server.fetch(cursor, 5)


def test_apply_all_error_keeps_applied_prefix():
    from repro.errors import SchemaError

    server = Server(Session())
    server.view("a", "V(x) :- RA(x)")
    with pytest.raises(SchemaError):
        server.apply_all(
            [insert("RA", (1,)), insert("NOPE", (2,)), insert("RA", (3,))]
        )
    # stream semantics: the prefix before the failure is applied
    assert server.session["a"].result_set() == {(1,)}

"""Supervision subsystem: journal folding, recovery, placement, serve().

The chaos scenarios (kill -9 mid-stream, repeated kills, migration
under writers) live in ``test_cluster.py``; this file unit-tests the
journal's net-effect semantics and the supervisor's own machinery —
seeding, sweep bookkeeping, rebalancing, and the ``Session.serve``
wiring.
"""

import time

import pytest

from repro import Session
from repro.errors import ClusterError
from repro.serve.cluster import ShardCluster
from repro.serve.journal import CommandJournal
from repro.serve.supervisor import Supervisor
from repro.storage.updates import delete, insert

pytestmark = pytest.mark.cluster


# ---------------------------------------------------------------------------
# CommandJournal: net-effect folding
# ---------------------------------------------------------------------------


def test_journal_folds_to_net_effect():
    journal = CommandJournal()
    assert journal.record(insert("R", (1,))) is True
    assert journal.record(insert("R", (1,))) is False  # already present
    assert journal.record(insert("R", (2,))) is True
    assert journal.record(delete("R", (1,))) is True
    assert journal.record(delete("R", (1,))) is False  # already gone
    assert journal.rows("R") == [(2,)]
    assert journal.commands_seen == 5
    assert journal.relations() == ("R",)
    assert journal.rows("unknown") == []


def test_journal_record_many_reports_per_command():
    journal = CommandJournal()
    effective = journal.record_many(
        [insert("R", (1,)), insert("R", (1,)), delete("R", (9,))]
    )
    assert effective == [True, False, False]


def test_journal_views_on_preserves_registration_order():
    journal = CommandJournal()
    journal.record_view("b", "V(x) :- R(x)", "qhierarchical", 0)
    journal.record_view("a", "W(x) :- S(x)", "qhierarchical", 0)
    journal.record_view("c", "U(x) :- T(x)", "counting", 1)
    assert [r.name for r in journal.views_on(0)] == ["b", "a"]
    assert [r.name for r in journal.views_on(1)] == ["c"]
    journal.move_view("a", 1)
    assert [r.name for r in journal.views_on(1)] == ["a", "c"]
    journal.drop_view("b")
    assert journal.views_on(0) == []
    assert journal.view("c").engine == "counting"
    assert journal.view("b") is None


def test_journal_epoch_and_forget():
    journal = CommandJournal()
    assert journal.bump_epoch() == 1
    assert journal.bump_epoch() == 2
    journal.record(insert("R", (1,)))
    journal.forget_relation("R")
    assert journal.rows("R") == []
    assert "epoch=2" in repr(journal)


# ---------------------------------------------------------------------------
# Supervisor machinery (thread-free: sweeps driven manually)
# ---------------------------------------------------------------------------


@pytest.fixture
def rig():
    with ShardCluster(workers=2) as cluster:
        journal = CommandJournal()
        with cluster.client(journal=journal) as facade:
            yield cluster, facade, journal


def _kill_and_flag(cluster, facade, victim):
    cluster.kill_worker(victim)
    deadline = time.monotonic() + 5.0
    while cluster.workers[victim].alive() and time.monotonic() < deadline:
        time.sleep(0.02)
    facade._mark_dead(victim, ClusterError("chaos"))


def test_sweep_detects_exited_process_without_a_request(rig):
    cluster, facade, journal = rig
    facade.view("sw", "V(x) :- SW(x)")
    facade.insert("SW", (1,))
    victim = facade._worker_of_view("sw")
    supervisor = Supervisor(cluster, facade, journal=journal)
    facade.attach_supervisor(supervisor)
    cluster.kill_worker(victim)
    deadline = time.monotonic() + 5.0
    while cluster.workers[victim].alive() and time.monotonic() < deadline:
        time.sleep(0.02)
    # No client request ever touched the dead socket: the sweep's
    # process-liveness check alone must find and recover it.
    assert supervisor.sweep() == [victim]
    assert facade.dead_workers == ()
    assert facade.result_set("sw") == {(1,)}
    recovery = supervisor.recoveries[0]
    assert recovery["worker"] == victim
    assert recovery["views"] == ("sw",)
    assert recovery["epoch"] == 1
    assert recovery["seconds"] > 0
    stats = supervisor.stats()
    assert stats["attempts"] == {victim: 1}
    assert stats["journal_epoch"] == 1


def test_recovery_replays_views_and_rows(rig):
    cluster, facade, journal = rig
    facade.view("ra", "V(x, y) :- RA(x, y)")
    facade.view("rb", "W(x) :- RB(x)")
    facade.batch([insert("RA", (i, 0)) for i in range(8)])
    facade.insert("RB", (5,))
    facade.delete("RA", (3, 0))
    supervisor = Supervisor(cluster, facade, journal=journal)
    facade.attach_supervisor(supervisor)
    before = {name: facade.result_digest(name) for name in ("ra", "rb")}
    for victim in (0, 1):
        _kill_and_flag(cluster, facade, victim)
        assert supervisor.sweep() == [victim]
    for name, digest in before.items():
        assert facade.result_digest(name) == digest


def test_supervisor_seeds_journal_from_preexisting_views():
    with ShardCluster(workers=2) as cluster:
        with cluster.client() as facade:  # no journal: nothing recorded
            facade.view("pre", "V(x) :- PRE(x)")
            supervisor = Supervisor(cluster, facade)
            # Seeding registered the view so a recovery can re-register
            # it, and attached the journal so rows record from now on.
            assert supervisor.journal.view("pre").worker == (
                facade._worker_of_view("pre")
            )
            assert facade._journal is supervisor.journal
            facade.attach_supervisor(supervisor)
            facade.insert("PRE", (1,))
            victim = facade._worker_of_view("pre")
            _kill_and_flag(cluster, facade, victim)
            assert supervisor.sweep() == [victim]
            assert facade.result_set("pre") == {(1,)}


def test_supervisor_rejects_a_second_journal(rig):
    cluster, facade, _journal = rig
    with pytest.raises(ClusterError, match="different journal"):
        Supervisor(cluster, facade, journal=CommandJournal())


def test_start_stop_lifecycle(rig):
    cluster, facade, journal = rig
    supervisor = Supervisor(cluster, facade, journal=journal, heartbeat=0.05)
    assert not supervisor.running
    with supervisor:
        assert supervisor.running
        assert facade.supervised
        assert supervisor.start() is supervisor  # idempotent
    assert not supervisor.running
    supervisor.stop()  # idempotent


# ---------------------------------------------------------------------------
# placement: least-loaded registration and rebalancing
# ---------------------------------------------------------------------------


def test_views_spread_to_least_loaded_worker():
    with ShardCluster(workers=3) as cluster:
        with cluster.client() as facade:
            for index in range(6):
                facade.view(f"pl{index}", f"V(x) :- PL{index}(x)")
            owners = [facade._worker_of_view(f"pl{index}") for index in range(6)]
            # Fresh cluster: least-loaded with lowest-index tie-break
            # walks the workers round-robin.
            assert owners == [0, 1, 2, 0, 1, 2]


def test_rebalance_levels_skewed_placement(rig):
    cluster, facade, journal = rig
    for index in range(4):
        facade.view(f"rb{index}", f"V(x) :- RB{index}(x)")
        facade.insert(f"RB{index}", (index,))
    # Skew everything onto worker 0.
    for index in range(4):
        if facade._worker_of_view(f"rb{index}") != 0:
            facade.migrate_view(f"rb{index}", target=0)
    supervisor = Supervisor(cluster, facade, journal=journal)
    facade.attach_supervisor(supervisor)
    moves = supervisor.rebalance()
    counts = {0: 0, 1: 0}
    for index in range(4):
        counts[facade._worker_of_view(f"rb{index}")] += 1
    assert counts == {0: 2, 1: 2}
    assert len(moves) == 2  # 4–0 → 3–1 → 2–2
    assert all(m["source"] == 0 and m["target"] == 1 for m in moves)
    for index in range(4):
        assert facade.result_set(f"rb{index}") == {(index,)}
    assert supervisor.rebalance() == []  # already level


# ---------------------------------------------------------------------------
# Session.serve(supervise=True)
# ---------------------------------------------------------------------------


def test_session_serve_supervised_end_to_end():
    session = Session()
    session.view("feed", "V(x, y) :- E(x, y)")
    session.insert("E", (1, 2))
    facade = session.serve(backend="processes", shards=2, supervise=True)
    try:
        assert facade.supervised
        assert facade._journal is not None
        # The adopted state was journaled, so it survives a kill.
        assert facade._journal.rows("E") == [(1, 2)]
        victim = facade._worker_of_view("feed")
        facade._cluster.kill_worker(victim)
        deadline = time.monotonic() + 5.0
        while (
            facade._cluster.workers[victim].alive()
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        # The next write stalls through the recovery instead of dying.
        assert facade.insert("E", (3, 4))
        assert facade.result_set("feed") == {(1, 2), (3, 4)}
        assert facade._cluster.restarts[victim] == 1
        supervisor = facade._supervisor
        assert supervisor.running
    finally:
        facade.close()
    assert not supervisor.running  # close() stopped the supervisor


def test_session_serve_unsupervised_has_no_journal():
    session = Session()
    session.view("plain", "V(x) :- P(x)")
    facade = session.serve(backend="processes", shards=2)
    try:
        assert not facade.supervised
        assert facade._journal is None
    finally:
        facade.close()


# ---------------------------------------------------------------------------
# configurable supervision knobs (args, env vars, cluster_stats surface)
# ---------------------------------------------------------------------------


def test_supervisor_knobs_resolve_from_env(rig, monkeypatch):
    cluster, facade, journal = rig
    monkeypatch.setenv("REPRO_SUP_HEARTBEAT", "0.25")
    monkeypatch.setenv("REPRO_SUP_PING_TIMEOUT", "2.5")
    monkeypatch.setenv("REPRO_SUP_RESTART_BACKOFF", "0.125")
    monkeypatch.setenv("REPRO_SUP_MAX_RESTARTS", "9")
    supervisor = Supervisor(cluster, facade, journal=journal)
    assert supervisor.heartbeat == 0.25
    assert supervisor.heartbeat_timeout == 2.5
    assert supervisor.restart_backoff == 0.125
    assert supervisor.max_restarts == 9
    assert supervisor.config() == {
        "running": False,
        "heartbeat": 0.25,
        "heartbeat_timeout": 2.5,
        "restart_backoff": 0.125,
        "max_restarts": 9,
        "recoveries": 0,
    }
    stats = supervisor.stats()
    assert stats["heartbeat_timeout"] == 2.5
    assert stats["restart_backoff"] == 0.125
    # explicit arguments beat the environment
    override = Supervisor(cluster, facade, heartbeat=0.5, max_restarts=2)
    assert override.heartbeat == 0.5 and override.max_restarts == 2


def test_supervisor_knobs_reject_bad_env(rig, monkeypatch):
    cluster, facade, journal = rig
    monkeypatch.setenv("REPRO_SUP_HEARTBEAT", "not-a-number")
    with pytest.raises(ClusterError, match="REPRO_SUP_HEARTBEAT"):
        Supervisor(cluster, facade, journal=journal)


def test_client_deadline_knobs_resolve_from_env(rig, monkeypatch):
    cluster, _facade, _journal = rig
    monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_RETRY_BUDGET", "7")
    with cluster.client() as tuned:
        assert tuned._request_timeout == 12.5
        assert tuned._retry_budget == 7
    # a non-positive timeout disables the deadline entirely
    monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", "0")
    with cluster.client() as unbounded:
        assert unbounded._request_timeout is None


def test_session_serve_surfaces_supervision_knobs():
    session = Session()
    session.view("kv", "V(x) :- KV(x)")
    facade = session.serve(
        backend="processes",
        shards=2,
        supervise=True,
        request_timeout=5.0,
        retry_budget=1,
        heartbeat=0.2,
        heartbeat_timeout=2.0,
        restart_backoff=0.01,
        max_restarts=3,
    )
    try:
        assert facade._request_timeout == 5.0
        assert facade._retry_budget == 1
        supervisor = facade._supervisor
        assert supervisor.heartbeat == 0.2
        assert supervisor.heartbeat_timeout == 2.0
        assert supervisor.restart_backoff == 0.01
        assert supervisor.max_restarts == 3
        surfaced = facade.cluster_stats()["supervisor"]
        assert surfaced == supervisor.config()
        assert surfaced["running"] is True
    finally:
        facade.close()

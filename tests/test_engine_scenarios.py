"""Deeper end-to-end scenarios for the dynamic engine.

Each test is a miniature version of a workload the paper's machinery
must get right: heavy churn on one hub, interleaved engine lifetimes,
quantified counting at depth, and adversarial insert orders.
"""

import itertools
import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.validation import check_engine
from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.eval_static.naive import evaluate as evaluate_naive


class TestHubChurn:
    def test_hub_toggle_storm(self):
        """10k toggles of a single hot tuple leave a consistent state."""
        query = zoo.star_query(2)
        engine = QHierarchicalEngine(query)
        engine.insert("S", (0,))
        engine.insert("E1", (0, 1))
        engine.insert("E2", (0, 2))
        assert engine.count() == 1
        for _ in range(5000):
            engine.delete("E1", (0, 1))
            engine.insert("E1", (0, 1))
        assert engine.count() == 1
        assert check_engine(engine).ok

    def test_many_distinct_hub_partners(self):
        query = zoo.star_query(1, free_leaves=1)
        engine = QHierarchicalEngine(query)
        engine.insert("S", (0,))
        for leaf in range(500):
            engine.insert("E1", (0, leaf))
        assert engine.count() == 500
        for leaf in range(0, 500, 2):
            engine.delete("E1", (0, leaf))
        assert engine.count() == 250


class TestQuantifiedDepth:
    def test_two_level_quantified_counting(self):
        # Q(x) :- A(x, y), B(x, y, z): both y and z quantified; C̃ must
        # collapse entire two-level subtrees to 0/1 per x.
        q = parse_query("Q(x) :- A(x, y), B(x, y, z)")
        engine = QHierarchicalEngine(q)
        engine.insert("A", (1, 10))
        engine.insert("A", (1, 11))
        engine.insert("B", (1, 10, 100))
        engine.insert("B", (1, 10, 101))
        engine.insert("B", (1, 11, 100))
        assert engine.count() == 1  # one x despite 3 full valuations
        engine.insert("A", (2, 10))
        assert engine.count() == 1  # x=2 lacks a B witness
        engine.insert("B", (2, 10, 5))
        assert engine.count() == 2

    def test_free_frontier_in_middle_of_tree(self):
        # Free x and y, quantified z below y: C̃ stops at the frontier.
        q = parse_query("Q(x, y) :- A(x, y), B(x, y, z)")
        engine = QHierarchicalEngine(q)
        engine.insert("A", (1, 2))
        for z in range(7):
            engine.insert("B", (1, 2, z))
        assert engine.count() == 1
        assert engine.result_set() == {(1, 2)}


class TestInsertOrderIndependence:
    def test_all_permutations_of_small_database(self):
        """The final structure state is order-independent (weights and
        results), whatever order D0's tuples arrive in."""
        q = zoo.E_T_QF
        rows = [("E", (1, 5)), ("E", (2, 5)), ("T", (5,)), ("E", (1, 6))]
        reference = None
        for permutation in itertools.permutations(rows):
            engine = QHierarchicalEngine(q)
            for relation, row in permutation:
                engine.insert(relation, row)
            state = (engine.count(), frozenset(engine.enumerate()))
            if reference is None:
                reference = state
            else:
                assert state == reference

    def test_interleaved_delete_insert_orders(self):
        rng = random.Random(9)
        q = zoo.EXAMPLE_6_1
        base = [
            ("E", ("a", "e")), ("R", ("a", "e", "a")), ("S", ("a", "e", "a")),
            ("E", ("a", "f")), ("R", ("a", "f", "c")), ("S", ("a", "f", "c")),
        ]
        for _ in range(10):
            order = list(base)
            rng.shuffle(order)
            engine = QHierarchicalEngine(q)
            for relation, row in order:
                engine.insert(relation, row)
            truth = evaluate_naive(q, engine.database)
            assert engine.result_set() == truth


class TestEngineIndependence:
    def test_two_engines_same_query_do_not_share_state(self):
        first = QHierarchicalEngine(zoo.E_T_QF)
        second = QHierarchicalEngine(zoo.E_T_QF)
        first.insert("E", (1, 2))
        first.insert("T", (2,))
        assert first.count() == 1
        assert second.count() == 0

    def test_engine_survives_query_reuse_across_engines(self):
        # The same (immutable) query object backs multiple engines and
        # multiple structures without aliasing issues.
        engines = [QHierarchicalEngine(zoo.star_query(2)) for _ in range(3)]
        for index, engine in enumerate(engines):
            engine.insert("S", (index,))
            engine.insert("E1", (index, 1))
            engine.insert("E2", (index, 2))
        counts = [engine.count() for engine in engines]
        assert counts == [1, 1, 1]

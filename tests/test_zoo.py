"""Integrity tests for the paper-query zoo and its parametric families."""

import pytest

from repro.cq import zoo
from repro.cq.analysis import is_hierarchical, is_q_hierarchical


class TestZooIntegrity:
    def test_all_queries_registered(self):
        assert len(zoo.PAPER_QUERIES) == 13
        for name, query in zoo.PAPER_QUERIES.items():
            assert query.atoms, name

    def test_equations_2_3_4(self):
        # eq (2): ϕ_S-E-T is the quantifier-free triple.
        assert zoo.S_E_T.is_quantifier_free
        assert len(zoo.S_E_T.atoms) == 3
        # eq (3): its Boolean version.
        assert zoo.S_E_T_BOOLEAN.is_boolean
        assert zoo.S_E_T_BOOLEAN.atoms == zoo.S_E_T.atoms
        # eq (4): ϕ_E-T has free x, quantified y.
        assert zoo.E_T.free == ("x",)
        assert zoo.E_T.quantified == {"y"}

    def test_loop_queries_share_relation(self):
        assert zoo.PHI_1.relations == {"E"}
        assert zoo.PHI_2.relations == {"E"}
        assert not zoo.PHI_1.is_self_join_free
        assert not zoo.PHI_2.is_self_join_free

    def test_phi2_extends_phi1(self):
        assert set(zoo.PHI_1.atoms) < set(zoo.PHI_2.atoms)

    def test_example_6_1_matches_paper_text(self):
        q = zoo.EXAMPLE_6_1
        assert q.free == ("x", "y", "z", "y'", "z'")
        assert len(q.atoms) == 5
        assert q.is_quantifier_free
        assert not q.is_self_join_free  # R occurs twice

    def test_figure_1_quantified_variables(self):
        assert zoo.FIGURE_1.quantified == {"x4", "x5"}


class TestStarFamily:
    @pytest.mark.parametrize("fanout", [1, 2, 4])
    def test_star_q_hierarchical(self, fanout):
        assert is_q_hierarchical(zoo.star_query(fanout))

    def test_star_free_leaves_stay_q_hierarchical(self):
        assert is_q_hierarchical(zoo.star_query(3, free_leaves=3))

    def test_star_without_center_breaks_condition_ii(self):
        query = zoo.star_query(2, free_center=False, free_leaves=1)
        assert is_hierarchical(query)
        assert not is_q_hierarchical(query)

    def test_star_all_quantified_is_fine(self):
        query = zoo.star_query(2, free_center=False, free_leaves=0)
        assert query.is_boolean
        assert is_q_hierarchical(query)


class TestPathFamily:
    @pytest.mark.parametrize("length", [1, 2])
    def test_short_paths_hierarchical(self, length):
        assert is_hierarchical(zoo.path_query(length))

    @pytest.mark.parametrize("length", [3, 4, 6])
    def test_long_paths_not_hierarchical(self, length):
        assert not is_hierarchical(zoo.path_query(length))

    def test_path_free_prefix(self):
        query = zoo.path_query(3, free_count=2)
        assert query.free == ("x0", "x1")

    def test_path_uses_distinct_relations(self):
        assert zoo.path_query(4).is_self_join_free

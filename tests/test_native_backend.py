"""The vectorized native backend and the EngineOptions surface.

Differential guarantee: with ``backend="vectorized"`` every engine is
*observationally identical* to the PR 2 python runners — same counts,
same enumerations, same digests, and byte-identical per-component
snapshots — across bulk loads, batched ``apply_all`` streams,
``apply_with_delta``, binding-index fallback, the serving backends,
and a kill -9 journal replay (which rebuilds the interning tables from
scratch on the respawned worker).
"""

from __future__ import annotations

import random
import time
import warnings

import pytest

from repro import Session
from repro.cq.analysis import find_violation
from repro.cq.zoo import PAPER_QUERIES, star_query
from repro.core.engine import QHierarchicalEngine
from repro.core.vectorized import numpy_or_none, resolve_backend
from repro.errors import EngineStateError
from repro.interface import make_engine
from repro.options import EngineOptions
from repro.storage.database import Database, Schema
from repro.storage.updates import insert

from conftest import random_stream

HAS_NUMPY = numpy_or_none() is not None

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy not importable (fallback leg)"
)

#: Every paper query Theorem 3.2's engine maintains (the vectorized
#: kernel covers exactly these; the fallback engines keep python).
Q_HIERARCHICAL = {
    name: query
    for name, query in PAPER_QUERIES.items()
    if find_violation(query) is None
}


def _pair(query, rounds=400, seed=3, domain=6, preload_rounds=150):
    """(vectorized engine, python engine, stream) over the same data."""
    rng = random.Random(seed)
    preload = random_stream(query, rng, rounds=preload_rounds, domain=domain)
    arities = {}
    for atom in query.atoms:
        arities.setdefault(atom.relation, atom.arity)
    db = Database(Schema(arities))
    for command in preload:
        if command.is_insert:
            db.insert(command.relation, command.row)
        else:
            db.delete(command.relation, command.row)
    vec = QHierarchicalEngine(query, db, options={"backend": "vectorized"})
    py = QHierarchicalEngine(query, db, options={"backend": "python"})
    stream = random_stream(query, rng, rounds=rounds, domain=domain)
    return vec, py, stream


def _assert_identical(vec, py):
    assert vec.count() == py.count()
    assert sorted(vec.enumerate(), key=repr) == sorted(
        py.enumerate(), key=repr
    )
    assert vec.result_digest() == py.result_digest()
    snaps_vec = [structure.snapshot() for structure in vec._structures]
    snaps_py = [structure.snapshot() for structure in py._structures]
    assert snaps_vec == snaps_py


# ---------------------------------------------------------------------------
# EngineOptions: the one surface
# ---------------------------------------------------------------------------


def test_options_defaults_and_wire_roundtrip():
    options = EngineOptions()
    assert options.compiled and options.merged_loaders
    assert options.backend == "auto"
    assert options.is_default
    custom = EngineOptions(backend="python", merged_loaders=False)
    assert not custom.is_default
    assert EngineOptions.from_wire(custom.to_wire()) == custom
    assert EngineOptions.from_wire(None) == EngineOptions()


def test_options_of_coerces_and_overrides():
    assert EngineOptions.of(None) == EngineOptions()
    assert EngineOptions.of({"backend": "python"}).backend == "python"
    base = EngineOptions(backend="python")
    assert EngineOptions.of(base) is base
    merged = EngineOptions.of(base, compiled=False)
    assert merged.backend == "python" and not merged.compiled
    # None overrides mean "unspecified", not "set to None".
    assert EngineOptions.of(base, backend=None).backend == "python"


def test_options_unknown_name_gets_did_you_mean():
    with pytest.raises(EngineStateError, match="did you mean 'backend'"):
        EngineOptions.of({"backened": "python"})
    with pytest.raises(EngineStateError, match="unknown engine option"):
        EngineOptions.of({"frobnicate": 1})


def test_options_unknown_backend_gets_did_you_mean():
    with pytest.raises(EngineStateError, match="did you mean 'vectorized'"):
        EngineOptions(backend="vectorised")
    with pytest.raises(EngineStateError, match="unknown backend"):
        EngineOptions(backend="cuda")


def test_options_reject_vectorized_without_compiled_plans():
    with pytest.raises(EngineStateError, match="compiled"):
        EngineOptions(compiled=False, backend="vectorized")


def test_legacy_positional_arguments_warn_and_still_work():
    query = PAPER_QUERIES["E_T_QF"]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engine = QHierarchicalEngine(query, None, (), False)
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    assert engine.plan_stats()["compiled"] is False
    assert engine.backend_info()["backend"] == "python"


def test_resolve_backend_reasons():
    backend, reason = resolve_backend(EngineOptions(backend="python"))
    assert backend == "python" and "requested" in reason
    backend, reason = resolve_backend(EngineOptions(), supported=False)
    assert backend == "python" and "no vectorized kernel" in reason
    with pytest.raises(EngineStateError):
        resolve_backend(
            EngineOptions(backend="vectorized"), supported=False
        )


def test_no_numpy_auto_falls_back_and_explicit_raises(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert numpy_or_none() is None
    query = PAPER_QUERIES["E_T_QF"]
    engine = QHierarchicalEngine(query, options={"backend": "auto"})
    info = engine.backend_info()
    assert info["backend"] == "python"
    assert "numpy" in info["reason"]
    engine.insert("E", (1, 2))
    engine.insert("T", (2,))
    assert engine.count() == 1
    with pytest.raises(EngineStateError, match="numpy"):
        QHierarchicalEngine(query, options={"backend": "vectorized"})


def test_fallback_engines_report_python_backend():
    engine = make_engine(
        "recompute", PAPER_QUERIES["LOOP_TRIANGLE"], backend="auto"
    )
    info = engine.backend_info()
    assert info["backend"] == "python"
    assert "no vectorized kernel" in info["reason"]


@needs_numpy
def test_auto_declines_all_eq_plans_but_explicit_wins():
    # LOOP_CORE's only plan is E(x, x): every row passes through a
    # repeated-variable filter, and the per-tuple runner's O(1)
    # early-exit beats batch interning — auto keeps python and says so.
    query = PAPER_QUERIES["LOOP_CORE"]
    engine = QHierarchicalEngine(query, options={"backend": "auto"})
    info = engine.backend_info()
    assert info["backend"] == "python"
    assert info["requested"] == "auto"
    assert "eq-filtered" in info["reason"]
    # An explicit request is still honored (and stays correct).
    forced = QHierarchicalEngine(query, options={"backend": "vectorized"})
    assert forced.backend_info()["backend"] == "vectorized"
    stream = random_stream(query, random.Random(7), rounds=400, domain=6)
    assert forced.apply_all(stream) == engine.apply_all(stream)
    assert forced.count() == engine.count()
    assert forced.answer() == engine.answer()


# ---------------------------------------------------------------------------
# the differential suite: vectorized vs the python oracle
# ---------------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("name", sorted(Q_HIERARCHICAL))
def test_bulk_load_is_byte_identical(name):
    vec, py, _ = _pair(Q_HIERARCHICAL[name])
    _assert_identical(vec, py)


@needs_numpy
@pytest.mark.parametrize("name", sorted(Q_HIERARCHICAL))
def test_batched_apply_all_is_byte_identical(name):
    vec, py, stream = _pair(Q_HIERARCHICAL[name])
    assert vec.apply_all(stream) == py.apply_all(stream)
    _assert_identical(vec, py)


@needs_numpy
@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_churny_streams_stay_identical(seed):
    # Small domain → heavy insert/delete churn over the same keys, the
    # regime where the per-prefix nets cancel and zero-net groups must
    # leave the items untouched.
    query = Q_HIERARCHICAL["E_T_QF"]
    vec, py, stream = _pair(
        query, rounds=1500, seed=seed, domain=3, preload_rounds=40
    )
    assert vec.apply_all(stream) == py.apply_all(stream)
    _assert_identical(vec, py)


@needs_numpy
def test_small_batches_and_singletons_still_identical():
    # Below the batching threshold apply_all takes the per-tuple path;
    # mixing the two paths over one engine must stay consistent.
    query = Q_HIERARCHICAL["E_T_QF"]
    vec, py, stream = _pair(query, rounds=500)
    for start in range(0, len(stream), 7):
        chunk = stream[start:start + 7]
        assert vec.apply_all(chunk) == py.apply_all(chunk)
    _assert_identical(vec, py)


@needs_numpy
def test_apply_with_delta_interleaves_with_batches():
    query = Q_HIERARCHICAL["EXAMPLE_6_1"]
    vec, py, stream = _pair(query, rounds=600)
    third = len(stream) // 3
    assert vec.apply_all(stream[:third]) == py.apply_all(stream[:third])
    for command in stream[third:2 * third]:
        delta_vec = vec.apply_with_delta(command)
        delta_py = py.apply_with_delta(command)
        assert sorted(delta_vec[0]) == sorted(delta_py[0])
        assert sorted(delta_vec[1]) == sorted(delta_py[1])
    rest = stream[2 * third:]
    assert vec.apply_all(rest) == py.apply_all(rest)
    _assert_identical(vec, py)


@needs_numpy
def test_binding_indexes_force_the_per_tuple_path():
    query = Q_HIERARCHICAL["E_T_QF"]
    vec, py, stream = _pair(query, rounds=400)
    vec.register_access_pattern(("x",))
    py.register_access_pattern(("x",))
    assert vec.apply_all(stream) == py.apply_all(stream)
    _assert_identical(vec, py)
    assert sorted(vec.enumerate_bound({"x": 1})) == sorted(
        py.enumerate_bound({"x": 1})
    )


@needs_numpy
def test_wide_star_and_string_constants():
    # Strings exercise the interner's dict path (no int fast path), and
    # a wide star exercises deep per-level grouping.
    query = star_query(4, free_leaves=2)
    rng = random.Random(9)
    vec = QHierarchicalEngine(query, options={"backend": "vectorized"})
    py = QHierarchicalEngine(query, options={"backend": "python"})
    commands = []
    for step in range(800):
        relation = rng.choice(sorted({a.relation for a in query.atoms}))
        arity = query.arity_of(relation)
        row = tuple(f"v{rng.randint(1, 5)}" for _ in range(arity))
        commands.append(insert(relation, row))
    assert vec.apply_all(commands) == py.apply_all(commands)
    _assert_identical(vec, py)


@needs_numpy
def test_mixed_type_constants_never_collide():
    # 1 and "1" are distinct constants; the interner must not let a
    # numpy dtype coercion merge them.
    query = Q_HIERARCHICAL["E_T_QF"]
    vec = QHierarchicalEngine(query, options={"backend": "vectorized"})
    py = QHierarchicalEngine(query, options={"backend": "python"})
    commands = []
    for value in (1, "1", 2, "2", 1.5, True):
        commands.append(insert("E", (value, value)))
        commands.append(insert("T", (value,)))
    commands *= 20  # clear the batching threshold
    vec.apply_all(commands)
    py.apply_all(commands)
    _assert_identical(vec, py)


# ---------------------------------------------------------------------------
# the options surface end to end: session, server, cluster
# ---------------------------------------------------------------------------


@needs_numpy
def test_session_view_kwargs_and_explain_name_the_backend():
    session = Session()
    view = session.view("v", "V(x, y) :- R(x, y), S(y)", backend="vectorized")
    assert view.engine.backend_info()["backend"] == "vectorized"
    rendered = session.explain("v").render()
    assert "backend: vectorized" in rendered
    forced = session.view(
        "w", "W(x, y) :- R(x, y), S(y)", options={"backend": "python"}
    )
    assert forced.engine.backend_info()["backend"] == "python"
    assert "backend: python" in session.explain("w").render()


def test_session_view_rejects_unknown_option():
    session = Session()
    with pytest.raises(EngineStateError, match="did you mean"):
        session.view("v", "V(x) :- R(x)", options={"backed": "python"})


@needs_numpy
def test_metrics_gauge_labels_the_backend():
    session = Session()
    session.view("v", "V(x) :- R(x), S(x)", backend="vectorized")
    snapshot = session.metrics.snapshot()
    backend_series = [
        key
        for key in snapshot["gauges"]
        if key.startswith("repro_engine_backend_info")
    ]
    assert backend_series
    assert any('backend="vectorized"' in key for key in backend_series)


@needs_numpy
def test_threads_server_serves_default_options():
    session = Session()
    server = session.serve(
        backend="threads", shards=2, options={"backend": "vectorized"}
    )
    reply = server.handle(
        {"op": "view", "name": "v", "query": "V(x) :- R(x), S(x)"}
    )
    assert reply["ok"] and reply["backend"] == "vectorized"
    for i in range(100):
        server.handle({"op": "insert", "relation": "R", "row": (i,)})
        if i % 2 == 0:
            server.handle({"op": "insert", "relation": "S", "row": (i,)})
    assert server.handle({"op": "count", "view": "v"})["count"] == 50
    assert server.load_stats()["backends"] == {"v": "vectorized"}


@needs_numpy
@pytest.mark.cluster
def test_cluster_view_options_ride_the_wire_and_replay_on_kill9():
    from repro.serve.cluster import ShardCluster
    from repro.serve.journal import CommandJournal
    from repro.serve.supervisor import Supervisor

    oracle = Session()
    oracle.view("nb", "V(x, y) :- R(x, y), S(y)", backend="python")
    with ShardCluster(workers=2) as cluster:
        journal = CommandJournal()
        with cluster.client(journal=journal) as facade:
            supervisor = Supervisor(
                cluster, facade, journal=journal, heartbeat=0.1
            ).start()
            try:
                reply_backend = facade.view(
                    "nb",
                    "V(x, y) :- R(x, y), S(y)",
                    options={"backend": "vectorized"},
                )
                victim = facade._worker_of_view("nb")
                record = journal.view("nb")
                assert record.options == {
                    "compiled": True,
                    "merged_loaders": True,
                    "backend": "vectorized",
                }
                rng = random.Random(17)
                for step in range(120):
                    if step == 60:
                        cluster.kill_worker(victim)  # SIGKILL mid-stream
                    command = insert(
                        *(
                            ("R", (rng.randint(1, 9), rng.randint(1, 9)))
                            if step % 2
                            else ("S", (rng.randint(1, 9),))
                        )
                    )
                    assert facade.apply(command) == oracle.apply(command)
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if not facade.dead_workers and supervisor.recoveries:
                        break
                    time.sleep(0.02)
                assert supervisor.recoveries, "worker never recovered"
                # The replayed view rebuilt its interning tables from
                # the journal and still matches the python oracle.
                assert facade.count("nb") == oracle["nb"].count()
                assert facade.result_set("nb") == oracle["nb"].result_set()
                stats = facade.cluster_stats()
                backends = stats[victim]["backends"]
                assert backends.get("nb") == "vectorized"
            finally:
                supervisor.stop()


@needs_numpy
@pytest.mark.cluster
def test_serve_processes_mirrors_per_view_options():
    session = Session()
    session.view("vv", "V(x) :- R(x), S(x)", backend="vectorized")
    session.view("vp", "W(x) :- R(x), T(x)", backend="python")
    for i in range(80):
        session.insert("R", (i,))
        if i % 2 == 0:
            session.insert("S", (i,))
        if i % 3 == 0:
            session.insert("T", (i,))
    facade = session.serve(backend="processes", shards=2)
    try:
        assert facade.count("vv") == session["vv"].count()
        assert facade.count("vp") == session["vp"].count()
        stats = facade.cluster_stats()
        backends = {}
        for worker, info in stats.items():
            if isinstance(info, dict):
                backends.update(info.get("backends") or {})
        assert backends["vv"] == "vectorized"
        assert backends["vp"] == "python"
    finally:
        facade.close()

"""Tests for the static evaluators: naive, Yannakakis, free-connex."""

import random

import pytest

from repro.cq import zoo
from repro.cq.acyclicity import is_acyclic, is_free_connex
from repro.cq.generators import random_cq
from repro.cq.parser import parse_query
from repro.errors import QueryStructureError
from repro.eval_static import evaluate
from repro.eval_static.freeconnex import FreeConnexEnumerator, static_enumerate
from repro.eval_static.naive import (
    count_result,
    evaluate as evaluate_naive,
    is_satisfied,
    valuation_counts,
    valuations,
)
from repro.eval_static.yannakakis import evaluate_acyclic, full_reduce
from repro.storage.database import Database
from tests.conftest import example_6_1_database


def random_database(rng: random.Random, query, size: int = 25, domain: int = 5):
    db = Database.empty_like(query)
    for atom in query.atoms:
        relation = db.relation(atom.relation)
        for _ in range(size):
            db.insert(
                atom.relation,
                tuple(rng.randint(1, domain) for _ in range(relation.arity)),
            )
    return db


class TestNaive:
    def test_s_e_t_by_hand(self):
        db = Database.from_dict(
            {"S": [(1,), (2,)], "E": [(1, 5), (2, 6), (3, 5)], "T": [(5,)]}
        )
        assert evaluate_naive(zoo.S_E_T, db) == {(1, 5)}
        assert evaluate_naive(zoo.S_E_T_BOOLEAN, db) == {()}

    def test_boolean_no(self):
        db = Database.from_dict(
            {"S": [(9,)], "E": [(1, 5)], "T": [(5,)]}
        )
        assert evaluate_naive(zoo.S_E_T_BOOLEAN, db) == set()
        assert not is_satisfied(zoo.S_E_T_BOOLEAN, db)

    def test_repeated_variable_atom(self):
        db = Database.from_dict({"E": [(1, 1), (1, 2), (2, 2)]})
        q = parse_query("Q(x) :- E(x, x)")
        assert evaluate_naive(q, db) == {(1,), (2,)}

    def test_phi1_semantics(self):
        db = Database.from_dict({"E": [(1, 1), (1, 2), (2, 2), (2, 3)]})
        assert evaluate_naive(zoo.PHI_1, db) == {(1, 1), (1, 2), (2, 2)}

    def test_valuation_counts(self):
        db = Database.from_dict({"E": [(1, 5), (1, 6)], "T": [(5,), (6,)]})
        counts = valuation_counts(zoo.E_T, db)
        # x=1 has two witnesses y ∈ {5, 6}.
        assert counts[(1,)] == 2

    def test_partial_binding(self):
        db = Database.from_dict({"E": [(1, 5), (2, 6)], "T": [(5,), (6,)]})
        assert evaluate_naive(zoo.E_T, db, binding={"y": 5}) == {(1,)}

    def test_count_result(self):
        db = example_6_1_database()
        assert count_result(zoo.EXAMPLE_6_1, db) == 23

    def test_valuations_are_full(self):
        db = Database.from_dict({"E": [(1, 5)], "T": [(5,)]})
        vals = list(valuations(zoo.E_T, db))
        assert vals == [{"x": 1, "y": 5}]


class TestYannakakis:
    def test_agrees_with_naive_on_zoo(self):
        rng = random.Random(5)
        for name, query in zoo.PAPER_QUERIES.items():
            db = random_database(rng, query)
            assert evaluate_acyclic(query, db) == evaluate_naive(query, db), name

    def test_cyclic_rejected(self):
        q = parse_query("Q() :- R(x, y), S(y, z), T(z, x)")
        db = Database.empty_like(q)
        with pytest.raises(QueryStructureError):
            evaluate_acyclic(q, db)

    def test_full_reduce_global_consistency(self):
        db = Database.from_dict(
            {"S": [(1,), (9,)], "E": [(1, 5), (9, 7), (3, 5)], "T": [(5,)]}
        )
        tables = full_reduce(zoo.S_E_T, db)
        # After reduction every surviving binding joins through: S keeps
        # only 1, E keeps only (1,5), T keeps 5.
        assert tables[0].rows == {(1,)}
        assert tables[1].rows == {(1, 5)}
        assert tables[2].rows == {(5,)}

    def test_disconnected_cross_product(self):
        q = parse_query("Q(x, u) :- R(x), U(u)")
        db = Database.from_dict({"R": [(1,), (2,)], "U": [(7,)]})
        assert evaluate_acyclic(q, db) == {(1, 7), (2, 7)}

    def test_empty_component_kills_everything(self):
        from repro.storage.database import Schema

        q = parse_query("Q(x) :- R(x), U(u)")
        db = Database.from_dict(
            {"R": [(1,)], "U": []},
            schema=Schema({"R": 1, "U": 1}),
        )
        assert evaluate_acyclic(q, db) == set()

    def test_random_agreement(self):
        rng = random.Random(23)
        tried = 0
        for _ in range(120):
            query = random_cq(rng)
            if not is_acyclic(query):
                continue
            db = random_database(rng, query, size=15, domain=4)
            assert evaluate_acyclic(query, db) == evaluate_naive(query, db)
            tried += 1
        assert tried > 30


class TestFreeConnexEnumerator:
    def test_rejects_non_free_connex(self):
        q = parse_query("Q(x, z) :- R(x, y), S(y, z)")
        db = Database.empty_like(q)
        with pytest.raises(QueryStructureError):
            FreeConnexEnumerator(q, db)

    def test_no_duplicates_and_agreement(self):
        rng = random.Random(31)
        db = example_6_1_database()
        enum = FreeConnexEnumerator(zoo.EXAMPLE_6_1, db)
        rows = list(enum)
        assert len(rows) == len(set(rows)) == 23
        assert set(rows) == evaluate_naive(zoo.EXAMPLE_6_1, db)
        assert enum.constant_delay

    def test_e_t_projection(self):
        db = Database.from_dict(
            {"E": [(1, 5), (2, 6), (3, 7)], "T": [(5,), (6,)]}
        )
        rows = set(FreeConnexEnumerator(zoo.E_T, db))
        assert rows == {(1,), (2,)}

    def test_boolean_query(self):
        db = Database.from_dict({"S": [(1,)], "E": [(1, 5)], "T": [(5,)]})
        assert list(FreeConnexEnumerator(zoo.S_E_T_BOOLEAN, db)) == [()]

    def test_boolean_query_empty(self):
        db = Database.from_dict({"S": [(2,)], "E": [(1, 5)], "T": [(5,)]})
        assert list(FreeConnexEnumerator(zoo.S_E_T_BOOLEAN, db)) == []

    def test_disconnected_product(self):
        q = parse_query("Q(x, u) :- R(x), U(u, w)")
        db = Database.from_dict({"R": [(1,), (2,)], "U": [(7, 0), (8, 0)]})
        rows = set(FreeConnexEnumerator(q, db))
        assert rows == {(1, 7), (1, 8), (2, 7), (2, 8)}

    def test_random_free_connex_agreement_and_plan(self):
        rng = random.Random(47)
        checked = 0
        for _ in range(200):
            query = random_cq(rng)
            if not is_free_connex(query):
                continue
            db = random_database(rng, query, size=12, domain=4)
            enum = FreeConnexEnumerator(query, db)
            rows = list(enum)
            assert len(rows) == len(set(rows))
            assert set(rows) == evaluate_naive(query, db)
            # The theory says the constant-delay plan always exists.
            assert enum.constant_delay, query
            checked += 1
        assert checked > 40

    def test_static_enumerate_dispatch(self):
        db = example_6_1_database()
        assert set(static_enumerate(zoo.EXAMPLE_6_1, db)) == evaluate_naive(
            zoo.EXAMPLE_6_1, db
        )
        cyclic = parse_query("Q(x, z) :- R(x, y), S(y, z)")
        db2 = Database.from_dict({"R": [(1, 5)], "S": [(5, 9)]})
        assert set(static_enumerate(cyclic, db2)) == {(1, 9)}


class TestDispatch:
    def test_evaluate_prefers_yannakakis(self):
        db = example_6_1_database()
        assert evaluate(zoo.EXAMPLE_6_1, db) == evaluate_naive(
            zoo.EXAMPLE_6_1, db
        )

    def test_evaluate_handles_cyclic(self):
        q = parse_query("Q() :- R(x, y), S(y, z), T(z, x)")
        db = Database.from_dict(
            {"R": [(1, 2)], "S": [(2, 3)], "T": [(3, 1)]}
        )
        assert evaluate(q, db) == {()}

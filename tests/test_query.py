"""Unit tests for the core query representation (repro.cq.query)."""

import pytest

from repro.cq.query import Atom, ConjunctiveQuery
from repro.errors import QueryStructureError


class TestAtom:
    def test_basic_construction(self):
        atom = Atom("R", ["x", "y"])
        assert atom.relation == "R"
        assert atom.args == ("x", "y")
        assert atom.arity == 2

    def test_variables_deduplicate(self):
        atom = Atom("R", ["x", "y", "x"])
        assert atom.variables == {"x", "y"}
        assert atom.arity == 3

    def test_rejects_nullary(self):
        with pytest.raises(QueryStructureError):
            Atom("R", [])

    def test_rejects_empty_relation_name(self):
        with pytest.raises(QueryStructureError):
            Atom("", ["x"])

    def test_rename_partial(self):
        atom = Atom("R", ["x", "y"])
        assert atom.rename({"x": "z"}) == Atom("R", ["z", "y"])

    def test_rename_can_merge_variables(self):
        atom = Atom("R", ["x", "y"])
        assert atom.rename({"x": "y"}) == Atom("R", ["y", "y"])

    def test_equality_and_hash(self):
        assert Atom("R", ["x", "y"]) == Atom("R", ("x", "y"))
        assert hash(Atom("R", ["x"])) == hash(Atom("R", ["x"]))
        assert Atom("R", ["x", "y"]) != Atom("R", ["y", "x"])

    def test_str(self):
        assert str(Atom("E", ["x", "y"])) == "E(x, y)"


class TestConjunctiveQuery:
    def test_basic(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])], ("x",))
        assert q.free == ("x",)
        assert q.variables == {"x", "y"}
        assert q.quantified == {"y"}
        assert q.arity == 1

    def test_needs_an_atom(self):
        with pytest.raises(QueryStructureError):
            ConjunctiveQuery([], ())

    def test_duplicate_atoms_collapse(self):
        q = ConjunctiveQuery(
            [Atom("R", ["x"]), Atom("R", ["x"])], ("x",)
        )
        assert len(q.atoms) == 1

    def test_free_variable_must_occur(self):
        with pytest.raises(QueryStructureError):
            ConjunctiveQuery([Atom("R", ["x"])], ("y",))

    def test_duplicate_free_variables_rejected(self):
        with pytest.raises(QueryStructureError):
            ConjunctiveQuery([Atom("R", ["x"])], ("x", "x"))

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(QueryStructureError):
            ConjunctiveQuery(
                [Atom("R", ["x"]), Atom("R", ["x", "y"])], ()
            )

    def test_boolean_flags(self):
        boolean = ConjunctiveQuery([Atom("R", ["x"])], ())
        assert boolean.is_boolean
        assert not boolean.is_quantifier_free

    def test_quantifier_free_flag(self):
        join = ConjunctiveQuery([Atom("R", ["x", "y"])], ("x", "y"))
        assert join.is_quantifier_free
        assert not join.is_boolean

    def test_self_join_free(self):
        sjf = ConjunctiveQuery(
            [Atom("R", ["x"]), Atom("S", ["x"])], ()
        )
        assert sjf.is_self_join_free
        sj = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("R", ["y", "x"])], ()
        )
        assert not sj.is_self_join_free

    def test_repeated_vars_single_atom_is_self_join_free(self):
        q = ConjunctiveQuery([Atom("E", ["x", "x"])], ())
        assert q.is_self_join_free

    def test_atoms_containing(self):
        a1, a2 = Atom("R", ["x", "y"]), Atom("S", ["y"])
        q = ConjunctiveQuery([a1, a2], ())
        assert q.atoms_containing("x") == (a1,)
        assert q.atoms_containing("y") == (a1, a2)

    def test_boolean_version(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])], ("x",))
        assert q.boolean_version().free == ()
        assert q.boolean_version().atoms == q.atoms

    def test_quantifier_free_version_order(self):
        q = ConjunctiveQuery(
            [Atom("R", ["a", "b"]), Atom("S", ["b", "c"])], ("b",)
        )
        qf = q.quantifier_free_version()
        assert qf.free[0] == "b"
        assert set(qf.free) == {"a", "b", "c"}

    def test_with_free(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])], ())
        assert q.with_free(("y", "x")).free == ("y", "x")

    def test_subquery_keeps_free(self):
        a1, a2 = Atom("R", ["x", "y"]), Atom("S", ["x"])
        q = ConjunctiveQuery([a1, a2], ("x",))
        sub = q.subquery([a2])
        assert sub.free == ("x",)

    def test_subquery_dropping_free_var_rejected(self):
        a1, a2 = Atom("R", ["x", "y"]), Atom("S", ["x"])
        q = ConjunctiveQuery([a1, a2], ("y",))
        with pytest.raises(QueryStructureError):
            q.subquery([a2])

    def test_rename(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])], ("x",))
        renamed = q.rename({"x": "u", "y": "w"})
        assert renamed.free == ("u",)
        assert renamed.atoms == (Atom("R", ["u", "w"]),)

    def test_equality_ignores_atom_order(self):
        a1, a2 = Atom("R", ["x"]), Atom("S", ["x"])
        assert ConjunctiveQuery([a1, a2], ("x",)) == ConjunctiveQuery(
            [a2, a1], ("x",)
        )

    def test_equality_respects_free_order(self):
        a = Atom("R", ["x", "y"])
        assert ConjunctiveQuery([a], ("x", "y")) != ConjunctiveQuery(
            [a], ("y", "x")
        )

    def test_size_counts_quantifiers(self):
        q = ConjunctiveQuery([Atom("R", ["x", "y"])], ("x",))
        boolean = q.boolean_version()
        assert boolean.size == q.size + 1

    def test_relations_and_arity_of(self):
        q = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("S", ["y"])], ()
        )
        assert q.relations == {"R", "S"}
        assert q.arity_of("R") == 2
        assert q.arity_of("S") == 1
        with pytest.raises(QueryStructureError):
            q.arity_of("T")


class TestConnectedComponents:
    def test_single_component(self):
        q = ConjunctiveQuery(
            [Atom("R", ["x", "y"]), Atom("S", ["y", "z"])], ("x",)
        )
        assert q.is_connected
        assert len(q.connected_components()) == 1

    def test_two_components(self):
        q = ConjunctiveQuery(
            [Atom("R", ["x"]), Atom("S", ["y"])], ("x", "y")
        )
        components = q.connected_components()
        assert len(components) == 2
        assert not q.is_connected

    def test_component_free_order_follows_parent(self):
        q = ConjunctiveQuery(
            [Atom("R", ["x", "u"]), Atom("S", ["y"])], ("y", "x", "u")
        )
        components = q.connected_components()
        frees = sorted(c.free for c in components)
        # The R-component inherits (x, u) in parent order; S gets (y,).
        assert frees == [("x", "u"), ("y",)]

    def test_components_partition_atoms(self):
        q = ConjunctiveQuery(
            [
                Atom("R", ["x", "y"]),
                Atom("S", ["z"]),
                Atom("T", ["y", "w"]),
            ],
            (),
        )
        components = q.connected_components()
        assert len(components) == 2
        total_atoms = sum(len(c.atoms) for c in components)
        assert total_atoms == 3

    def test_repeated_variable_atom_is_connected(self):
        q = ConjunctiveQuery(
            [Atom("E", ["x", "x"]), Atom("F", ["x", "y"])], ()
        )
        assert q.is_connected

"""The metrics registry, guarantee probes and their serving hookup.

Unit coverage for :mod:`repro.obs.registry` (fixed-bucket histogram
algebra, the cross-process snapshot merge, Prometheus rendering, the
``observe=False`` null surface), :mod:`repro.obs.probes` (sampled
update timing, the drift verdict) and the layers that feed them: the
per-view engine counters, the serving layer's thin-view accessors, the
cursor/dispatch instruments and the ``metrics`` CLI plumbing.
"""

import pytest

from repro import Server, Session
from repro.obs.probes import ViewProbe, _update_stride
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    render_prometheus,
    snapshot_quantile,
)
from repro.storage.updates import delete, insert


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


def test_counter_compares_by_value():
    counter = Counter()
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    # Equality against plain ints keeps pre-registry assertions (ad-hoc
    # tallies swapped for Counters) working unchanged.
    assert counter == 3
    assert counter != 4
    other = Counter()
    other.inc(3)
    assert counter == other
    assert [Counter(), counter] == [0, 3]
    # Identity-hash: usable in sets despite value equality.
    assert len({counter, other}) == 2


def test_gauge_tracks_high_water():
    gauge = Gauge()
    gauge.set(5)
    gauge.inc(3)
    gauge.dec(6)
    assert gauge.value == 2
    assert gauge.high_water == 8


def test_histogram_quantiles_interpolate_within_buckets():
    histogram = Histogram(boundaries=(1.0, 2.0, 4.0))
    assert histogram.quantile(0.5) is None  # empty
    for value in (0.5, 1.5, 1.5, 3.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(6.5)
    assert histogram.mean == pytest.approx(1.625)
    # p50 falls inside the (1, 2] bucket that holds samples 2 and 3.
    p50 = histogram.quantile(0.5)
    assert 1.0 <= p50 <= 2.0
    # Everything above the last edge is a lower-bound estimate.
    histogram.observe(100.0)
    assert histogram.quantile(0.999) == 4.0


def test_snapshot_quantile_matches_instrument():
    histogram = Histogram(boundaries=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        histogram.observe(value)
    state = histogram.state()
    assert snapshot_quantile(state, 0.5) == pytest.approx(
        histogram.quantile(0.5)
    )


def test_registry_caches_instruments_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("x_total", shard=0)
    b = registry.counter("x_total", shard=0)
    c = registry.counter("x_total", shard=1)
    assert a is b and a is not c
    a.inc(2)
    snap = registry.snapshot()
    assert snap["counters"]['x_total{shard="0"}'] == 2
    assert snap["counters"]['x_total{shard="1"}'] == 0


# ---------------------------------------------------------------------------
# snapshot algebra
# ---------------------------------------------------------------------------


def _process_snapshot(counter_value, histogram_values):
    registry = MetricsRegistry()
    registry.counter("ops_total").inc(counter_value)
    registry.gauge("depth").set(counter_value)
    histogram = registry.histogram("lat_seconds")
    for value in histogram_values:
        histogram.observe(value)
    return registry.snapshot()


def test_merge_snapshots_adds_everything_elementwise():
    merged = merge_snapshots(
        [
            _process_snapshot(2, [1e-5, 1e-3]),
            _process_snapshot(3, [1e-4]),
            {},  # a dead worker with no cached snapshot contributes nothing
        ]
    )
    assert merged["counters"]["ops_total"] == 5
    assert merged["gauges"]["depth"] == 5
    state = merged["histograms"]["lat_seconds"]
    assert state["count"] == 3
    assert sum(state["counts"]) == 3
    assert merged["skew"] == 0


def test_merge_snapshots_flags_bucket_skew_instead_of_lying():
    registry = MetricsRegistry()
    registry.histogram("lat_seconds", buckets=(1.0, 2.0)).observe(0.5)
    custom = registry.snapshot()
    default = _process_snapshot(1, [1e-4])
    merged = merge_snapshots([default, custom])
    # The first series wins; the mismatch is counted, not merged.
    assert merged["skew"] == 1
    assert merged["histograms"]["lat_seconds"]["count"] == 1


def test_render_prometheus_cumulative_buckets():
    registry = MetricsRegistry()
    registry.counter("ops_total", op="count").inc(7)
    registry.gauge("depth").set(3)
    histogram = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(1.5)
    histogram.observe(9.0)  # overflow
    text = registry.render_prometheus()
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{op="count"} 7' in text
    assert "# TYPE depth gauge" in text
    assert "depth 3" in text
    # le buckets are cumulative and +Inf covers the overflow bucket.
    assert 'lat_seconds_bucket{le="1.0"} 1' in text
    assert 'lat_seconds_bucket{le="2.0"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text
    # Any snapshot renders, including a merged one.
    assert render_prometheus(merge_snapshots([registry.snapshot()])) == text


def test_null_registry_is_inert_but_surface_compatible():
    assert not NULL_REGISTRY.enabled
    counter = NULL_REGISTRY.counter("x_total", shard=0)
    gauge = NULL_REGISTRY.gauge("depth")
    histogram = NULL_REGISTRY.histogram("lat_seconds")
    counter.inc(10)
    gauge.set(5)
    histogram.observe(1.0)
    assert counter.value == 0 and gauge.value == 0 and histogram.count == 0
    assert histogram.quantile(0.5) is None
    assert NULL_REGISTRY.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    assert NULL_REGISTRY.render_prometheus() == ""


# ---------------------------------------------------------------------------
# engine + session instrumentation
# ---------------------------------------------------------------------------


def test_engine_update_counters_and_plan_gauges_in_snapshot():
    session = Session()
    session.view("q", "Q(x, y) :- R(x, y), S(y)")
    session.insert("R", (1, 2))
    session.insert("S", (2,))
    session.delete("R", (1, 2))
    snap = session.metrics.snapshot()
    counters = snap["counters"]
    assert (
        counters[
            'repro_engine_updates_total{engine="qhierarchical",'
            'op="insert",relation="R",view="q"}'
        ]
        == 1
    )
    assert (
        counters[
            'repro_engine_updates_total{engine="qhierarchical",'
            'op="delete",relation="R",view="q"}'
        ]
        == 1
    )
    # The planner's structural stats publish as gauges at instrument().
    assert any(
        key.startswith("repro_engine_plan_") for key in snap["gauges"]
    )


def test_apply_with_delta_path_counts_updates_too():
    session = Session()
    view = session.view("d", "V(x) :- D(x)")
    engine = view._engine
    before = session.metrics.snapshot()["counters"]
    engine.apply_with_delta(insert("D", (1,)))
    engine.apply_with_delta(delete("D", (1,)))
    after = session.metrics.snapshot()["counters"]
    key_insert = (
        'repro_engine_updates_total{engine="qhierarchical",'
        'op="insert",relation="D",view="d"}'
    )
    key_delete = (
        'repro_engine_updates_total{engine="qhierarchical",'
        'op="delete",relation="D",view="d"}'
    )
    assert after[key_insert] == before.get(key_insert, 0) + 1
    assert after[key_delete] == before.get(key_delete, 0) + 1


def test_observe_false_takes_the_null_fast_path():
    session = Session(observe=False)
    assert not session.observe
    assert session.metrics is NULL_REGISTRY
    assert not session.spans.enabled
    view = session.view("q", "Q(x) :- R(x)")
    session.insert("R", (1,))
    assert view._probe is None
    assert session.metrics.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    assert session.explain("q").observed is None
    assert session.drift_report() == []


# ---------------------------------------------------------------------------
# guarantee probes
# ---------------------------------------------------------------------------


def test_update_stride_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_PROBE_STRIDE", raising=False)
    assert _update_stride() == 64
    monkeypatch.setenv("REPRO_PROBE_STRIDE", "4")
    assert _update_stride() == 4
    monkeypatch.setenv("REPRO_PROBE_STRIDE", "0")
    assert _update_stride() == 1  # clamped: stride 1 = exhaustive timing
    monkeypatch.setenv("REPRO_PROBE_STRIDE", "not-a-number")
    assert _update_stride() == 64


def test_probe_samples_every_nth_update(monkeypatch):
    monkeypatch.setenv("REPRO_PROBE_STRIDE", "4")
    session = Session()
    view = session.view("p", "V(x) :- P(x)")
    assert view._probe.update_stride == 4
    for i in range(10):
        session.insert("P", (i,))
    # Countdown starts at 0, so updates 1, 5 and 9 are the timed ones.
    assert view._probe.update_hist.count == 3


def test_explain_shows_observed_percentiles(monkeypatch):
    monkeypatch.setenv("REPRO_PROBE_STRIDE", "1")
    session = Session()
    session.view("q", "Q(x, y) :- R(x, y), S(y)")
    for i in range(8):
        session.insert("R", (i, i % 3))
        session.insert("S", (i % 3,))
    plan = session.explain("q")
    observed = plan.observed
    assert observed is not None
    update = observed["update"]
    # 8 effective R inserts + 3 effective S inserts (i % 3 repeats are
    # no-ops and never reach the view): every effective update is timed
    # at stride 1.
    assert update["n"] == 11
    assert 0 < update["p50_us"] <= update["p99_us"]
    assert "observed" in plan.render()


def _page(probe, result_size, per_tuple, pages=3, tuples=8):
    for _ in range(pages):
        probe.record_page(per_tuple * tuples, tuples, result_size)


def test_drift_flags_delay_that_tracks_result_size():
    probe = ViewProbe("v", "qhierarchical", MetricsRegistry())
    assert probe.constant_delay
    # Constant per-tuple delay over a wide size spread: no drift.
    _page(probe, result_size=2, per_tuple=1e-6)
    _page(probe, result_size=5000, per_tuple=1.2e-6)
    assert probe.drift() is None
    # Delay that grew with the result contradicts the promised class.
    linear = ViewProbe("v", "qhierarchical", MetricsRegistry())
    _page(linear, result_size=2, per_tuple=1e-6)
    _page(linear, result_size=5000, per_tuple=1e-3)
    verdict = linear.drift()
    assert verdict is not None
    assert verdict["view"] == "v"
    assert verdict["promised"] == "constant per-tuple delay"
    assert verdict["delay_ratio"] >= 8.0
    assert verdict["size_spread"] >= 16
    # An engine that never promised constant delay is not judged.
    fallback = ViewProbe("v", "recompute", MetricsRegistry())
    _page(fallback, result_size=2, per_tuple=1e-6)
    _page(fallback, result_size=5000, per_tuple=1e-3)
    assert fallback.drift() is None


def test_drift_needs_spread_and_samples_before_crying_wolf():
    probe = ViewProbe("v", "qhierarchical", MetricsRegistry())
    # Big delay ratio but only a 4x size spread: below the guard rail.
    _page(probe, result_size=2, per_tuple=1e-6)
    _page(probe, result_size=4, per_tuple=1e-3)
    assert probe.drift() is None
    # Wide spread but too few page samples at one end.
    sparse = ViewProbe("v", "qhierarchical", MetricsRegistry())
    _page(sparse, result_size=2, per_tuple=1e-6)
    _page(sparse, result_size=5000, per_tuple=1e-3, pages=1)
    assert sparse.drift() is None


# ---------------------------------------------------------------------------
# serving-layer hookup
# ---------------------------------------------------------------------------


def test_server_accessors_are_thin_views_over_the_registry():
    server = Server(Session())
    try:
        server.view("feed", "V(x) :- F(x)")
        server.insert("F", (1,))
        server.insert("F", (2,))
        server.count("feed")
        assert server.writes == 2
        assert server.reads == 1
        counters = server.session.metrics.snapshot()["counters"]
        assert counters["repro_server_reads_total"] == 1
        assert (
            sum(
                value
                for key, value in counters.items()
                if key.startswith("repro_server_writes_total")
            )
            == 2
        )
        stats = server.stats()
        assert stats["writes"] == 2 and stats["reads"] == 1
    finally:
        server.close()


def test_server_accessors_survive_observe_false():
    server = Server(Session(observe=False))
    try:
        server.view("feed", "V(x) :- F(x)")
        server.insert("F", (1,))
        server.count("feed")
        # Standalone counters keep stats() truthful with no registry.
        assert server.writes == 1
        assert server.reads == 1
        assert server.session.metrics.snapshot()["counters"] == {}
    finally:
        server.close()


def test_cursor_metrics_record_pages_and_opens():
    server = Server(Session())
    try:
        server.view("feed", "V(x) :- F(x)")
        for i in range(12):
            server.insert("F", (i,))
        cursor = server.open_cursor("feed")
        while server.fetch(cursor, 4):
            pass
        snap = server.session.metrics.snapshot()
        assert snap["counters"]['repro_cursor_opened_total{view="feed"}'] == 1
        pages = snap["histograms"]['repro_cursor_page_seconds{view="feed"}']
        assert pages["count"] >= 3
    finally:
        server.close()


def test_dispatch_pool_metrics_flow_through_subscription():
    server = Server(Session(), dispatch_workers=1)
    try:
        server.view("feed", "V(x) :- F(x)")
        handle = server.subscribe("feed")
        server.insert("F", (1,))
        server.drain()
        snap = server.session.metrics.snapshot()
        assert snap["counters"]["repro_dispatch_submitted_total"] >= 1
        assert snap["counters"]["repro_dispatch_delivered_total"] >= 1
        assert "repro_dispatch_lag_seconds" in snap["histograms"]
        assert server.poll(handle)  # the delta actually arrived
    finally:
        server.close()


# ---------------------------------------------------------------------------
# CLI plumbing + CI guardrail wiring
# ---------------------------------------------------------------------------


def test_parse_address_forms():
    from repro.__main__ import _parse_address

    assert _parse_address("unix:/tmp/w0.sock") == ("unix", "/tmp/w0.sock")
    assert _parse_address("tcp:10.0.0.5:4001") == ("tcp", "10.0.0.5", 4001)
    assert _parse_address("localhost:4001") == ("tcp", "localhost", 4001)
    assert _parse_address(":4001") == ("tcp", "127.0.0.1", 4001)
    with pytest.raises(ValueError):
        _parse_address("no-port-here")
    with pytest.raises(ValueError):
        _parse_address("tcp:host:notaport")


def test_metrics_cli_requires_addresses_without_demo(capsys):
    from repro.__main__ import main

    assert main(["metrics"]) == 2
    assert "address" in capsys.readouterr().err.lower()


def test_overhead_guardrail_is_tracked_by_the_gate():
    import pathlib
    import sys

    benchmarks = str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks")
    if benchmarks not in sys.path:
        sys.path.insert(0, benchmarks)
    import check_regression

    tracked = {
        (metric, direction): guard
        for metric, direction, guard in check_regression.TRACKED["serving"]
    }
    assert tracked[("observability_overhead.overhead_ratio", "lower")] == 1.05

"""The CI perf-regression gate: tracked-metric comparison logic."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)
spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def write(path, blob):
    path.write_text(json.dumps(blob), encoding="utf-8")
    return path


def serving_blob(
    sharded=2.2,
    async_speedup=10.0,
    flatness=1.1,
    delta=20000.0,
    multiproc=2.0,
    recovery=0.3,
    snapshot_overhead=1.1,
    snapshot_pins=2,
    obs_overhead=1.01,
    param_memory=0.002,
    param_fanout=1.3,
):
    return {
        "cursor_resume": {"cursor_last_over_first": flatness},
        "subscription_delta": {"speedup": delta},
        "sharded_writes": {"speedup_at_max_shards": sharded},
        "multiprocess_shards": {"speedup_vs_inprocess_best": multiproc},
        "async_dispatch": {"writer_speedup": async_speedup},
        "failover": {"recovery_seconds": recovery},
        "snapshot_reads": {
            "overhead_vs_plain": snapshot_overhead,
            "max_pin_attempts": snapshot_pins,
        },
        "observability_overhead": {"overhead_ratio": obs_overhead},
        "parameterized_views": {
            "memory_ratio": param_memory,
            "fanout_flatness": param_fanout,
        },
    }


def test_dig_walks_dotted_paths():
    blob = {"a": {"b": {"c": 1.5}}, "flag": True}
    assert check_regression.dig(blob, "a.b.c") == 1.5
    assert check_regression.dig(blob, "a.missing") is None
    assert check_regression.dig(blob, "flag") is None  # bools not metrics


def test_within_tolerance_passes(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(tmp_path / "fresh.json", serving_blob(sharded=1.9))
    regressions, notes = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert regressions == []
    assert any("ok" in line for line in notes)


def test_absolute_guardrail_turns_red(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(
        tmp_path / "fresh.json", serving_blob(async_speedup=0.9)
    )  # a 2x-slowdown-style collapse: below the 1.5 guardrail
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "async_dispatch.writer_speedup" in regressions[0]


def test_lower_is_better_direction(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(tmp_path / "fresh.json", serving_blob(flatness=9.0))
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert any("cursor_last_over_first" in line for line in regressions)


def update_blob(
    engine=3.0,
    procedure=3.0,
    floor=300000.0,
    preprocessing=4.0,
    merged=1.1,
    native=3.0,
    numpy=True,
):
    return {
        "meta": {"numpy": numpy},
        "aggregates": {
            "update_engine_geomean": engine,
            "update_procedure_geomean": procedure,
            "update_procedure_floor_ups": floor,
            "preprocessing_geomean": preprocessing,
            "merged_loader_geomean": merged,
            "native_backend_geomean": native,
        },
    }


def test_relative_mode_uses_the_committed_baseline(tmp_path):
    base_blob = update_blob()
    fresh_blob = json.loads(json.dumps(base_blob))
    fresh_blob["aggregates"]["update_engine_geomean"] = 1.9  # > 30% drop
    baseline = write(tmp_path / "base.json", base_blob)
    fresh = write(tmp_path / "fresh.json", fresh_blob)
    regressions, _ = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "update_engine_geomean" in regressions[0]
    # looser tolerance absorbs the same drop — the override knob
    regressions, _ = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.50
    )
    assert regressions == []


def test_metric_missing_from_fresh_run_is_a_failure(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    blob = serving_blob()
    del blob["sharded_writes"]
    fresh = write(tmp_path / "fresh.json", blob)
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert any("stopped emitting" in line for line in regressions)


def test_relative_metric_missing_from_baseline_is_skipped(tmp_path):
    baseline = write(tmp_path / "base.json", {"aggregates": {}})
    fresh = write(tmp_path / "fresh.json", update_blob())
    regressions, notes = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.30
    )
    # relative metrics skip with a note; the absolute guardrails
    # (preprocessing, the procedure floor, the native geomean) still run
    assert regressions == []
    assert sum("skip" in line for line in notes) == 3
    assert any("preprocessing_geomean" in line and "ok" in line for line in notes)
    assert any(
        "update_procedure_floor_ups" in line and "ok" in line for line in notes
    )


def test_procedure_floor_guardrail_turns_red(tmp_path):
    baseline = write(tmp_path / "base.json", update_blob())
    fresh = write(tmp_path / "fresh.json", update_blob(floor=9000.0))
    regressions, _ = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "update_procedure_floor_ups" in regressions[0]


def test_native_gate_skips_when_fresh_run_had_no_numpy(tmp_path):
    baseline = write(tmp_path / "base.json", update_blob())
    # numpy absent on the runner: the native section never ran, its
    # geomean is meaningless — the gate must skip it, not fail it.
    fresh = write(
        tmp_path / "fresh.json", update_blob(native=0.0, numpy=False)
    )
    regressions, notes = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.30
    )
    assert regressions == []
    assert any(
        "native_backend_geomean" in line and "falsy" in line for line in notes
    )
    # with numpy present, a collapse towards parity with the per-tuple
    # runners breaks the absolute guardrail
    bad = write(tmp_path / "bad.json", update_blob(native=0.9))
    regressions, _ = check_regression.check_experiment(
        "update_throughput", baseline, bad, 0.30
    )
    assert len(regressions) == 1
    assert "native_backend_geomean" in regressions[0]


def test_multiprocess_guardrail_turns_red(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(tmp_path / "fresh.json", serving_blob(multiproc=0.8))
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "multiprocess_shards.speedup_vs_inprocess_best" in regressions[0]


def test_failover_recovery_guardrail_turns_red(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(tmp_path / "fresh.json", serving_blob(recovery=7.5))
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "failover.recovery_seconds" in regressions[0]


def test_evaluate_experiment_records_are_machine_readable():
    records = check_regression.evaluate_experiment(
        "serving", serving_blob(), serving_blob(async_speedup=0.9), 0.30
    )
    by_metric = {record["metric"]: record for record in records}
    assert by_metric["async_dispatch.writer_speedup"]["status"] == "regressed"
    assert by_metric["async_dispatch.writer_speedup"]["bound"] == 1.5
    assert by_metric["sharded_writes.speedup_at_max_shards"]["status"] == "ok"
    assert all(record["mode"] == "absolute" for record in records)
    # records survive a JSON round trip (what --json-out relies on)
    assert json.loads(json.dumps(records)) == records


def test_json_out_writes_verdicts(tmp_path, monkeypatch):
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
    fresh = write(tmp_path / "fresh.json", serving_blob())
    out = tmp_path / "gate.json"
    assert (
        check_regression.main(
            ["--fresh-serving", str(fresh), "--json-out", str(out)]
        )
        == 0
    )
    blob = json.loads(out.read_text(encoding="utf-8"))
    assert blob["ok"] is True
    assert blob["regressions"] == []
    assert {record["metric"] for record in blob["metrics"]} == {
        path for path, _d, _m in check_regression.TRACKED["serving"]
    }
    # a failing run records its regressions too
    bad = write(tmp_path / "bad.json", serving_blob(sharded=0.5))
    assert (
        check_regression.main(
            ["--fresh-serving", str(bad), "--json-out", str(out)]
        )
        == 1
    )
    blob = json.loads(out.read_text(encoding="utf-8"))
    assert blob["ok"] is False
    assert len(blob["regressions"]) == 1


def test_github_step_summary_is_appended(tmp_path, monkeypatch):
    fresh = write(tmp_path / "fresh.json", serving_blob(async_speedup=0.9))
    summary = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert check_regression.main(["--fresh-serving", str(fresh)]) == 1
    text = summary.read_text(encoding="utf-8")
    assert "Perf-regression gate" in text
    assert "1 tracked metric(s) regressed" in text
    assert "async_dispatch.writer_speedup" in text
    assert "❌" in text
    # appends (job summaries accumulate across steps)
    assert check_regression.main(["--fresh-serving", str(fresh)]) == 1
    assert text in summary.read_text(encoding="utf-8")


def test_main_cli_exit_codes(tmp_path, monkeypatch):
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
    baseline_dir = check_regression.EXPERIMENTS
    fresh = write(tmp_path / "fresh.json", serving_blob())
    # the real committed baseline is used; all guardrail metrics pass
    assert (
        check_regression.main(["--fresh-serving", str(fresh)]) == 0
    )
    bad = write(tmp_path / "bad.json", serving_blob(sharded=0.5))
    assert check_regression.main(["--fresh-serving", str(bad)]) == 1
    assert check_regression.main([]) == 2
    assert (
        check_regression.main(
            ["--fresh-serving", str(tmp_path / "missing.json")]
        )
        == 2
    )
    assert baseline_dir["serving"].is_file()  # sanity: repo baseline exists

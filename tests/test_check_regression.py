"""The CI perf-regression gate: tracked-metric comparison logic."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)
spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def write(path, blob):
    path.write_text(json.dumps(blob), encoding="utf-8")
    return path


def serving_blob(sharded=2.2, async_speedup=10.0, flatness=1.1, delta=20000.0):
    return {
        "cursor_resume": {"cursor_last_over_first": flatness},
        "subscription_delta": {"speedup": delta},
        "sharded_writes": {"speedup_at_max_shards": sharded},
        "async_dispatch": {"writer_speedup": async_speedup},
    }


def test_dig_walks_dotted_paths():
    blob = {"a": {"b": {"c": 1.5}}, "flag": True}
    assert check_regression.dig(blob, "a.b.c") == 1.5
    assert check_regression.dig(blob, "a.missing") is None
    assert check_regression.dig(blob, "flag") is None  # bools not metrics


def test_within_tolerance_passes(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(tmp_path / "fresh.json", serving_blob(sharded=1.9))
    regressions, notes = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert regressions == []
    assert any("ok" in line for line in notes)


def test_absolute_guardrail_turns_red(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(
        tmp_path / "fresh.json", serving_blob(async_speedup=0.9)
    )  # a 2x-slowdown-style collapse: below the 1.5 guardrail
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "async_dispatch.writer_speedup" in regressions[0]


def test_lower_is_better_direction(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    fresh = write(tmp_path / "fresh.json", serving_blob(flatness=9.0))
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert any("cursor_last_over_first" in line for line in regressions)


def test_relative_mode_uses_the_committed_baseline(tmp_path):
    base_blob = {
        "aggregates": {
            "update_engine_geomean": 3.0,
            "update_procedure_geomean": 3.0,
            "preprocessing_geomean": 4.0,
            "merged_loader_geomean": 1.1,
        }
    }
    fresh_blob = json.loads(json.dumps(base_blob))
    fresh_blob["aggregates"]["update_engine_geomean"] = 1.9  # > 30% drop
    baseline = write(tmp_path / "base.json", base_blob)
    fresh = write(tmp_path / "fresh.json", fresh_blob)
    regressions, _ = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.30
    )
    assert len(regressions) == 1
    assert "update_engine_geomean" in regressions[0]
    # looser tolerance absorbs the same drop — the override knob
    regressions, _ = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.50
    )
    assert regressions == []


def test_metric_missing_from_fresh_run_is_a_failure(tmp_path):
    baseline = write(tmp_path / "base.json", serving_blob())
    blob = serving_blob()
    del blob["sharded_writes"]
    fresh = write(tmp_path / "fresh.json", blob)
    regressions, _ = check_regression.check_experiment(
        "serving", baseline, fresh, 0.30
    )
    assert any("stopped emitting" in line for line in regressions)


def test_relative_metric_missing_from_baseline_is_skipped(tmp_path):
    baseline = write(tmp_path / "base.json", {"aggregates": {}})
    fresh = write(
        tmp_path / "fresh.json",
        {
            "aggregates": {
                "update_engine_geomean": 3.0,
                "update_procedure_geomean": 3.0,
                "preprocessing_geomean": 4.0,
                "merged_loader_geomean": 1.1,
            }
        },
    )
    regressions, notes = check_regression.check_experiment(
        "update_throughput", baseline, fresh, 0.30
    )
    # relative metrics skip with a note; the absolute guardrail
    # (preprocessing) still runs
    assert regressions == []
    assert sum("skip" in line for line in notes) == 3
    assert any("preprocessing_geomean" in line and "ok" in line for line in notes)


def test_main_cli_exit_codes(tmp_path):
    baseline_dir = check_regression.EXPERIMENTS
    fresh = write(tmp_path / "fresh.json", serving_blob())
    # the real committed baseline is used; all guardrail metrics pass
    assert (
        check_regression.main(["--fresh-serving", str(fresh)]) == 0
    )
    bad = write(tmp_path / "bad.json", serving_blob(sharded=0.5))
    assert check_regression.main(["--fresh-serving", str(bad)]) == 1
    assert check_regression.main([]) == 2
    assert (
        check_regression.main(
            ["--fresh-serving", str(tmp_path / "missing.json")]
        )
        == 2
    )
    assert baseline_dir["serving"].is_file()  # sanity: repo baseline exists

"""Tests for GYO acyclicity, join trees and free-connexness."""

import random

import pytest

from repro.cq import zoo
from repro.cq.acyclicity import is_acyclic, is_free_connex, join_tree
from repro.cq.analysis import is_q_hierarchical
from repro.cq.generators import random_cq, random_q_hierarchical_query
from repro.cq.parser import parse_query


class TestAcyclicity:
    def test_paper_zoo_all_acyclic(self):
        for name, query in zoo.PAPER_QUERIES.items():
            assert is_acyclic(query), name

    def test_triangle_cyclic(self):
        q = parse_query("Q() :- R(x, y), S(y, z), T(z, x)")
        assert not is_acyclic(q)
        assert join_tree(q) is None

    def test_triangle_with_cover_acyclic(self):
        q = parse_query("Q() :- R(x, y), S(y, z), T(z, x), U(x, y, z)")
        assert is_acyclic(q)

    def test_path_acyclic(self):
        assert is_acyclic(zoo.path_query(5))

    def test_cycle4_cyclic(self):
        q = parse_query("Q() :- A(x, y), B(y, z), C(z, w), D(w, x)")
        assert not is_acyclic(q)

    def test_single_atom(self):
        assert is_acyclic(parse_query("Q() :- R(x, y, z)"))

    def test_disconnected_acyclic(self):
        q = parse_query("Q() :- R(x, y), S(u, v)")
        assert is_acyclic(q)

    def test_disconnected_with_cyclic_part(self):
        q = parse_query("Q() :- R(x, y), A(u, v), B(v, w), C(w, u)")
        assert not is_acyclic(q)


class TestJoinTree:
    def test_tree_valid_on_zoo(self):
        for name, query in zoo.PAPER_QUERIES.items():
            tree = join_tree(query)
            assert tree is not None, name
            assert tree.is_valid(), name

    def test_post_order_covers_all_atoms(self):
        tree = join_tree(zoo.EXAMPLE_6_1)
        assert sorted(tree.post_order()) == list(
            range(len(zoo.EXAMPLE_6_1.atoms))
        )

    def test_random_acyclic_trees_valid(self):
        rng = random.Random(3)
        checked = 0
        for _ in range(200):
            query = random_cq(rng)
            tree = join_tree(query)
            if tree is not None:
                assert tree.is_valid(), query
                checked += 1
        assert checked > 50  # plenty of acyclic samples


class TestFreeConnex:
    def test_e_t_is_free_connex(self):
        # The paper's point: ϕ_E-T is statically easy (free-connex)
        # but dynamically hard.
        assert is_free_connex(zoo.E_T)

    def test_s_e_t_is_free_connex(self):
        assert is_free_connex(zoo.S_E_T)

    def test_boolean_free_connex_iff_acyclic(self):
        q = parse_query("Q() :- R(x, y), S(y, z), T(z, x)")
        assert not is_free_connex(q)
        assert is_free_connex(zoo.S_E_T_BOOLEAN)

    def test_matrix_style_projection_not_free_connex(self):
        # The classical non-free-connex example: Q(x, z) over a path.
        q = parse_query("Q(x, z) :- R(x, y), S(y, z)")
        assert is_acyclic(q)
        assert not is_free_connex(q)

    def test_q_hierarchical_implies_free_connex(self):
        # Section 1.2: q-hierarchical ⊊ free-connex acyclic.
        rng = random.Random(17)
        for _ in range(150):
            query = random_q_hierarchical_query(rng)
            assert is_q_hierarchical(query)
            assert is_free_connex(query), query

    def test_free_connex_not_q_hierarchical_example(self):
        # Witness of the strictness of the inclusion.
        assert is_free_connex(zoo.E_T) and not is_q_hierarchical(zoo.E_T)

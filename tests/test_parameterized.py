"""Parameterized views: bindings, access patterns, per-binding deltas.

The invariant throughout: a bound read (``cursor(u=c)``,
``enumerate_bound``, a bound subscription) must be **byte-identical**
to filtering the unbound result/delta stream client-side — across the
threads, sharded and processes backends, under concurrent writes, and
across a ``kill -9`` recovery.  The bound path is an optimisation
(pinned probes / binding indexes / one O(δ) fan-out pass), never a
semantics change.
"""

import threading
import time

import pytest

from repro import Server, Session
from repro.api.access import (
    classify_access_pattern,
    normalize_access_declaration,
    normalize_binding,
)
from repro.api.planner import parse_view
from repro.errors import QueryStructureError
from repro.interface import make_engine
from repro.storage.updates import delete, insert

QH_TEXT = "Feed(me, a, p) :- Follows(me, a), Posted(a, p)"
HARD_TEXT = "Q(x, y) :- S(x), E(x, y), T(y)"  # the paper's ϕ_S-E-T
UCQ_TEXT = """
    Alert(d, e) :- Event(d, e), Flagged(d)
    Alert(d, e) :- Critical(d, e)
"""


def feed_commands(users=4, authors=3, posts=3):
    commands = []
    for u in range(users):
        for a in range(authors):
            if (u + a) % 2 == 0:
                commands.append(insert("Follows", (f"u{u}", f"a{a}")))
    for a in range(authors):
        for p in range(posts):
            commands.append(insert("Posted", (f"a{a}", f"p{a}_{p}")))
    return commands


def bound_filter(rows, free, binding):
    checks = [(free.index(v), value) for v, value in binding.items()]
    return {
        row
        for row in rows
        if all(row[i] == value for i, value in checks)
    }


# ---------------------------------------------------------------------------
# normalize_binding: the one helper behind every surface
# ---------------------------------------------------------------------------


class TestNormalizeBinding:
    def test_merges_dict_and_kwargs(self):
        merged = normalize_binding(
            {"a": 1}, {"b": 2}, free=("a", "b", "c"), context="cursor()"
        )
        assert merged == {"a": 1, "b": 2}

    def test_empty_is_none(self):
        assert normalize_binding(None, {}, free=("a",), context="c()") is None
        assert normalize_binding({}, {}, free=("a",), context="c()") is None

    def test_non_mapping_binding_names_the_parameter(self):
        with pytest.raises(QueryStructureError, match="'binding'"):
            normalize_binding(5, {}, free=("a",), context="cursor()")

    def test_twice_bound_conflicting_values_rejected(self):
        with pytest.raises(QueryStructureError, match="binds 'a' twice"):
            normalize_binding(
                {"a": 1}, {"a": 2}, free=("a",), context="cursor()"
            )

    def test_twice_bound_same_value_is_fine(self):
        merged = normalize_binding(
            {"a": 1}, {"a": 1}, free=("a",), context="cursor()"
        )
        assert merged == {"a": 1}

    def test_unknown_variable_suggests_free_variable(self):
        with pytest.raises(
            QueryStructureError,
            match="did you mean the output variable 'author'",
        ):
            normalize_binding(
                None, {"autor": 3}, free=("me", "author"), context="cursor()"
            )

    def test_unknown_kwarg_suggests_parameter(self):
        with pytest.raises(
            QueryStructureError,
            match="did you mean the parameter 'dispatcher'",
        ):
            normalize_binding(
                None,
                {"dispacher": object()},
                free=("me", "author"),
                context="subscribe()",
                parameters=("callback", "max_pending", "dispatcher"),
            )

    def test_reserved_keyword_collision_explained(self):
        # A view whose output variable is literally named ``snapshot``:
        # the kwarg is claimed by the parameter, so binding it by
        # keyword must point at the dict spelling instead.
        with pytest.raises(
            QueryStructureError, match="bind it through the dict"
        ):
            normalize_binding(
                None,
                {"snapshot": 7},
                free=("snapshot", "x"),
                context="cursor()",
                flags={"snapshot": 7},
            )
        # via the dict it works
        merged = normalize_binding(
            {"snapshot": 7}, {}, free=("snapshot", "x"), context="cursor()"
        )
        assert merged == {"snapshot": 7}


# ---------------------------------------------------------------------------
# classification: (query, access pattern) → pinned / indexed / filter
# ---------------------------------------------------------------------------


class TestClassification:
    def test_qtree_prefix_is_pinned(self):
        # the q-tree of Feed roots at the shared join variable a, so
        # any ancestor-closed set containing a pins for free
        query = parse_view(QH_TEXT)
        for variables in (("a",), ("me", "a"), ("a", "p")):
            pattern = classify_access_pattern(
                query, "qhierarchical", variables
            )
            assert pattern.mode == "pinned", variables
            assert pattern.lookup.startswith("O(1)")

    def test_non_prefix_on_qh_engine_is_indexed(self):
        query = parse_view(QH_TEXT)
        # binding only a leaf variable skips its q-tree ancestor a
        for variables in (("me",), ("p",)):
            pattern = classify_access_pattern(
                query, "qhierarchical", variables
            )
            assert pattern.mode == "indexed", variables
            assert "O(" in pattern.update

    def test_delta_ivm_gets_indexed(self):
        query = parse_view(HARD_TEXT)
        pattern = classify_access_pattern(query, "delta_ivm", ("x",))
        assert pattern.mode == "indexed"

    def test_recompute_gets_filter(self):
        query = parse_view(QH_TEXT)
        pattern = classify_access_pattern(query, "recompute", ("me",))
        assert pattern.mode == "filter"

    def test_ucq_pinned_needs_every_disjunct_closed(self):
        union = parse_view(UCQ_TEXT)
        pattern = classify_access_pattern(union, "ucq_union", ("d",))
        assert pattern.mode in ("pinned", "indexed")
        # binding the inner variable e alone cannot be prefix-closed
        # in the first disjunct (d is its root) — must fall to indexed
        inner = classify_access_pattern(union, "ucq_union", ("e",))
        assert inner.mode == "indexed"

    def test_declaration_normalizes_and_validates(self):
        patterns = normalize_access_declaration(
            "me", ("me", "a", "p"), context="view 'feed'"
        )
        assert patterns == (("me",),)
        patterns = normalize_access_declaration(
            [("p", "a")], ("me", "a", "p"), context="view 'feed'"
        )
        assert patterns == (("a", "p"),)  # canonical free order
        with pytest.raises(QueryStructureError):
            normalize_access_declaration(
                {"nope"}, ("me", "a", "p"), context="view 'feed'"
            )


# ---------------------------------------------------------------------------
# engine layer: binding indexes and per-binding deltas
# ---------------------------------------------------------------------------


class TestEngineBindingIndex:
    def test_enumerate_bound_matches_filter_under_updates(self):
        engine = make_engine("qhierarchical", parse_view(QH_TEXT))
        key = engine.register_access_pattern(("a",))
        assert key == ("a",)
        assert engine.access_patterns == (("a",),)
        for command in feed_commands():
            engine.apply(command)
        free = list(engine._query.free)
        for a in ("a0", "a1", "a2", "missing"):
            binding = {"a": a}
            assert set(engine.enumerate_bound(binding)) == bound_filter(
                engine.result_set(), free, binding
            )
        # deletions shrink the index too
        engine.apply(delete("Posted", ("a0", "p0_0")))
        assert set(engine.enumerate_bound({"a": "a0"})) == bound_filter(
            engine.result_set(), free, {"a": "a0"}
        )

    def test_plain_insert_routes_through_delta_once_indexed(self):
        engine = make_engine("qhierarchical", parse_view(QH_TEXT))
        engine.register_access_pattern(("me",))
        # insert/delete after registration must keep the index fresh
        engine.insert("Follows", ("u0", "a0"))
        engine.insert("Posted", ("a0", "p1"))
        assert set(engine.enumerate_bound({"me": "u0"})) == {
            ("u0", "a0", "p1")
        }
        engine.delete("Follows", ("u0", "a0"))
        assert set(engine.enumerate_bound({"me": "u0"})) == set()
        assert engine.binding_index_size() == 0

    def test_delta_for_binding_restricts_in_place(self):
        engine = make_engine("qhierarchical", parse_view(QH_TEXT))
        engine.insert("Follows", ("u0", "a0"))
        engine.insert("Follows", ("u1", "a0"))
        added, removed = engine.apply_with_delta(insert("Posted", ("a0", "p")))
        assert len(added) == 2 and not removed
        a, r = engine.delta_for_binding({"me": "u0"}, (added, removed))
        assert a == (("u0", "a0", "p"),) and r == ()
        a, r = engine.delta_for_binding({"me": "zz"}, (added, removed))
        assert a == () and r == ()
        # empty binding is the identity
        a, r = engine.delta_for_binding({}, (added, removed))
        assert set(a) == set(added) and r == ()
        with pytest.raises(QueryStructureError):
            engine.delta_for_binding({"nope": 1}, (added, removed))

    def test_bound_reads_on_every_engine(self):
        for engine_name in ("qhierarchical", "delta_ivm", "recompute"):
            engine = make_engine(engine_name, parse_view(QH_TEXT))
            for command in feed_commands():
                engine.apply(command)
            free = list(engine._query.free)
            binding = {"me": "u1"}
            assert set(engine.enumerate_bound(binding)) == bound_filter(
                engine.result_set(), free, binding
            ), engine_name

    def test_bound_reads_on_union_engine(self):
        engine = make_engine("ucq_union", parse_view(UCQ_TEXT))
        engine.register_access_pattern(("d",))
        for i in range(6):
            engine.apply(insert("Event", (i % 3, i)))
            if i % 2 == 0:
                engine.apply(insert("Flagged", (i % 3,)))
            engine.apply(insert("Critical", (i % 3, 100 + i)))
        free = list(engine._query.free)
        for d in (0, 1, 2, 9):
            binding = {"d": d}
            assert set(engine.enumerate_bound(binding)) == bound_filter(
                engine.result_set(), free, binding
            )


# ---------------------------------------------------------------------------
# Session/View surface: declared patterns, explain, bound serving
# ---------------------------------------------------------------------------


class TestViewSurface:
    def test_declared_access_shows_in_explain(self):
        session = Session()
        feed = session.view("feed", QH_TEXT, access={"a"})
        patterns = feed.access_patterns
        assert len(patterns) == 1
        assert patterns[0].variables == ("a",)
        assert patterns[0].declared
        rendered = feed.explain().render()
        assert "access patterns:" in rendered
        assert "(a)" in rendered and "pinned" in rendered

    def test_first_bound_use_infers_a_pattern(self):
        session = Session()
        feed = session.view("feed", QH_TEXT)
        assert feed.access_patterns == ()
        for command in feed_commands():
            session.apply(command)
        cursor = feed.cursor(p="p0_0")
        assert cursor.fetch_all()
        patterns = feed.access_patterns
        assert [p.variables for p in patterns] == [("p",)]
        assert not patterns[0].declared
        assert patterns[0].mode == "indexed"
        # the indexed pattern registered a real engine index
        assert ("p",) in feed.engine.access_patterns

    def test_invalid_declared_access_rejected_before_registration(self):
        session = Session()
        with pytest.raises(QueryStructureError, match="did you mean"):
            session.view("feed", QH_TEXT, access={"mee"})
        assert "feed" not in session

    def test_bound_cursor_differential(self):
        session = Session()
        feed = session.view("feed", QH_TEXT, access={"me"})
        for command in feed_commands():
            session.apply(command)
        free = list(feed.query.free)
        for me in ("u0", "u1", "u2", "u3", "ghost"):
            rows = feed.cursor(me=me).fetch_all()
            assert set(rows) == bound_filter(
                feed.result_set(), free, {"me": me}
            )
            assert sorted(rows) == sorted(
                feed.enumerate_bound(me=me)
            )

    def test_bound_subscription_matches_client_side_filter(self):
        session = Session()
        feed = session.view("feed", QH_TEXT)
        plain = feed.subscribe()
        bound = feed.subscribe(me="u1")
        for command in feed_commands():
            session.apply(command)
        session.delete("Follows", ("u1", "a1"))
        bound_deltas = bound.poll()
        plain_deltas = plain.poll()
        # replay the plain stream through delta_for_binding: the bound
        # stream must be exactly the non-empty restrictions, in order
        expected = []
        for d in plain_deltas:
            a, r = feed.engine.delta_for_binding(
                {"me": "u1"}, (d.added, d.removed)
            )
            if a or r:
                expected.append((d.epoch, a, r))
        got = [(d.epoch, d.added, d.removed) for d in bound_deltas]
        assert got == expected
        assert all(d.binding == {"me": "u1"} for d in bound_deltas)
        assert all(
            row[0] == "u1" for d in bound_deltas for row in d.added + d.removed
        )

    def test_fan_out_serves_many_bindings_from_one_pass(self):
        session = Session()
        feed = session.view("feed", QH_TEXT)
        subs = {u: feed.subscribe(me=u) for u in ("u0", "u1", "u2", "u3")}
        for command in feed_commands():
            session.apply(command)
        free = list(feed.query.free)
        for u, sub in subs.items():
            rows = set()
            for d in sub.poll():
                rows |= set(d.added)
                rows -= set(d.removed)
            assert rows == bound_filter(feed.result_set(), free, {"me": u})

    def test_dropping_bound_subscriber_stops_delta_work(self):
        session = Session()
        feed = session.view("feed", QH_TEXT)
        sub = feed.subscribe(me="u0")
        sub.close()
        assert feed.subscriptions == ()
        assert not feed._bound_subs

    def test_subscribe_typo_names_the_parameter(self):
        session = Session()
        feed = session.view("feed", QH_TEXT)
        with pytest.raises(
            QueryStructureError,
            match="did you mean the parameter 'dispatcher'",
        ):
            feed.subscribe(dispacher=None or object())

    def test_cursor_binding_parameter_collision(self):
        session = Session()
        feed = session.view("feed", QH_TEXT)
        with pytest.raises(QueryStructureError, match="'binding'"):
            feed.cursor(binding=5)

    def test_observed_bound_delay_reaches_explain(self):
        session = Session()
        feed = session.view("feed", QH_TEXT, access={"me"})
        for command in feed_commands():
            session.apply(command)
        for _ in range(4):
            feed.cursor(me="u0").fetch_all()
        observed = feed.explain().observed
        assert "me" in observed.get("access_patterns", {})
        rendered = feed.explain().render()
        assert "observed delay" in rendered


# ---------------------------------------------------------------------------
# threads backend (Server): same keyword surface over the dict protocol
# ---------------------------------------------------------------------------


class TestServerBackend:
    def test_bound_cursor_over_server(self):
        session = Session()
        server = session.serve(backend="threads", shards=2)
        server.view("feed", QH_TEXT, access={"me"})
        for command in feed_commands():
            server.apply(command)
        view = session["feed"]
        free = list(view.query.free)
        for me in ("u0", "u3", "ghost"):
            cursor = server.open_cursor("feed", me=me)
            assert set(server.fetch(cursor, 10_000)) == bound_filter(
                view.result_set(), free, {"me": me}
            )

    def test_bound_subscription_over_dict_protocol(self):
        server = Server(Session())
        server.handle({"op": "view", "name": "v", "query": QH_TEXT})
        reply = server.handle(
            {"op": "subscribe", "view": "v", "binding": {"me": "u0"}}
        )
        assert reply["ok"]
        handle = reply["subscription"]
        server.handle(
            {"op": "insert", "relation": "Follows", "row": ("u0", "a")}
        )
        server.handle(
            {"op": "insert", "relation": "Follows", "row": ("u1", "a")}
        )
        server.handle({"op": "insert", "relation": "Posted", "row": ("a", "p")})
        polled = server.handle({"op": "poll", "subscription": handle})
        deltas = [d for d in polled["deltas"] if d["added"] or d["removed"]]
        assert len(deltas) == 1
        assert deltas[0]["added"] == [("u0", "a", "p")]
        assert deltas[0]["binding"] == {"me": "u0"}

    def test_bound_cursor_under_concurrent_writes(self):
        session = Session()
        server = session.serve(backend="threads", shards=2)
        server.view("feed", QH_TEXT, access={"me"})
        for command in feed_commands():
            server.apply(command)
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                server.insert("Posted", ("a0", f"w{i}"))
                server.delete("Posted", ("a0", f"w{i}"))
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            # u2 follows a0, so churn rows land inside the binding:
            # every page must still honour it, with no duplicates, and
            # always contain the stable (never-churned) rows
            stable = {("u2", "a0", f"p0_{p}") for p in range(3)}
            for _ in range(30):
                cursor = server.open_cursor("feed", me="u2", snapshot=True)
                rows = server.fetch(cursor, 10_000)
                assert all(row[0] == "u2" for row in rows)
                assert len(rows) == len(set(rows))
                assert stable <= set(rows)
        finally:
            stop.set()
            thread.join()
        # quiesced: the bound cursor agrees exactly with the filter
        free = list(session["feed"].query.free)
        cursor = server.open_cursor("feed", me="u2")
        assert set(server.fetch(cursor, 10_000)) == bound_filter(
            server.result_set("feed"), free, {"me": "u2"}
        )


# ---------------------------------------------------------------------------
# processes backend: bound reads over the wire, kill -9, migration
# ---------------------------------------------------------------------------

@pytest.mark.cluster
class TestClusterBackend:
    def test_bound_cursor_and_subscription_differential(self):
        session = Session()
        client = session.serve(backend="processes", shards=2)
        try:
            client.view("feed", QH_TEXT, access={"me"})
            handle = client.subscribe("feed", me="u1")
            for command in feed_commands():
                client.apply(command)
            oracle = Session()
            oracle.view("feed", QH_TEXT)
            for command in feed_commands():
                oracle.apply(command)
            expected = oracle["feed"].result_set()
            free = list(oracle["feed"].query.free)
            for me in ("u0", "u1", "ghost"):
                cursor = client.open_cursor("feed", me=me)
                rows = client.fetch(cursor, 10_000)
                assert set(rows) == bound_filter(expected, free, {"me": me})
            deltas = client.poll(handle)
            rows = set()
            for d in deltas:
                assert d.binding == {"me": "u1"}
                rows |= set(d.added)
                rows -= set(d.removed)
            assert rows == bound_filter(expected, free, {"me": "u1"})
        finally:
            client.close()

    def test_bound_reads_survive_kill_minus_nine(self):
        session = Session()
        client = session.serve(
            backend="processes", shards=2, supervise=True
        )
        try:
            client.view("feed", QH_TEXT, access={"me"})
            for command in feed_commands():
                client.apply(command)
            record = client._journal.view("feed")
            assert record.access == [["me"]]
            victim = client._worker_of_view("feed")
            cluster = client._cluster
            cluster.kill_worker(victim)
            deadline = time.monotonic() + 5.0
            while (
                cluster.workers[victim].alive()
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            # recovery replays the view WITH its access declaration;
            # the bound read must agree with the client-side filter
            oracle = Session()
            oracle.view("feed", QH_TEXT)
            for command in feed_commands():
                oracle.apply(command)
            free = list(oracle["feed"].query.free)
            expected = bound_filter(
                oracle["feed"].result_set(), free, {"me": "u2"}
            )
            deadline = time.monotonic() + 10.0
            rows = None
            while time.monotonic() < deadline:
                try:
                    cursor = client.open_cursor("feed", me="u2")
                    rows = set(client.fetch(cursor, 10_000))
                    break
                except Exception:
                    time.sleep(0.05)
            assert rows == expected
        finally:
            client.close()

    def test_migration_preserves_bound_subscription(self):
        session = Session()
        client = session.serve(backend="processes", shards=2)
        try:
            client.view("feed", QH_TEXT, access={"me"})
            client.insert("Follows", ("u0", "a"))
            client.insert("Follows", ("u1", "a"))
            handle = client.subscribe("feed", me="u0")
            client.insert("Posted", ("a", "p0"))
            source = client._worker_of_view("feed")
            target = (source + 1) % 2
            client.migrate_view("feed", target)
            client.insert("Posted", ("a", "p1"))
            rows = set()
            for d in client.poll(handle):
                assert d.binding == {"me": "u0"}
                rows |= set(d.added)
            assert rows == {("u0", "a", "p0"), ("u0", "a", "p1")}
        finally:
            client.close()

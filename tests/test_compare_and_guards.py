"""Tests for the compare harness and the live-enumeration guard."""

import random

import pytest

from repro.bench.compare import compare_engines
from repro.core.engine import QHierarchicalEngine
from repro.cq import zoo
from repro.errors import EngineStateError
from tests.conftest import feed_example_6_1_sorted, random_stream


class TestCompareEngines:
    def test_agreeing_engines_report_timings(self):
        rng = random.Random(1)
        stream = random_stream(zoo.E_T_QF, rng, rounds=60)
        result = compare_engines(
            zoo.E_T_QF, stream, ["qhierarchical", "delta_ivm", "recompute"]
        )
        assert result.checkpoints >= 2
        assert set(result.seconds) == {
            "qhierarchical",
            "delta_ivm",
            "recompute",
        }
        assert all(seconds > 0 for seconds in result.seconds.values())
        assert "verified" in result.render()

    def test_speedup_helper(self):
        rng = random.Random(2)
        stream = random_stream(zoo.E_T_QF, rng, rounds=40)
        result = compare_engines(
            zoo.E_T_QF, stream, ["qhierarchical", "recompute"]
        )
        assert result.speedup("qhierarchical", "recompute") > 0

    def test_final_count_reported(self):
        rng = random.Random(3)
        stream = random_stream(zoo.E_T_QF, rng, rounds=50)
        result = compare_engines(
            zoo.E_T_QF, stream, ["qhierarchical", "delta_ivm"]
        )
        engine = QHierarchicalEngine(zoo.E_T_QF)
        for command in stream:
            engine.apply(command)
        assert result.final_count == engine.count()


class TestEnumerationGuard:
    def test_update_during_enumeration_raises(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        generator = engine.enumerate()
        next(generator)
        engine.insert("E", ("b", "p"))
        with pytest.raises(EngineStateError):
            next(generator)

    def test_delete_during_enumeration_raises(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        generator = engine.enumerate()
        next(generator)
        engine.delete("E", ("a", "e"))
        with pytest.raises(EngineStateError):
            next(generator)

    def test_noop_update_does_not_trip_guard(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        generator = engine.enumerate()
        next(generator)
        engine.insert("E", ("a", "e"))  # already present: no-op
        assert next(generator) is not None

    def test_restart_after_guard_trips(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        generator = engine.enumerate()
        next(generator)
        engine.insert("E", ("b", "p"))
        with pytest.raises(EngineStateError):
            list(generator)
        fresh = list(engine.enumerate())
        assert len(fresh) == 38

    def test_finished_enumeration_unaffected(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        rows = list(engine.enumerate())
        engine.insert("E", ("b", "p"))
        assert len(rows) == 23  # the materialised list is untouched

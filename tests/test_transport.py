"""Wire-transport unit tests: framing, codecs, canonicalisation."""

import socket
import struct
import threading

import pytest

from repro.errors import ConnectionClosedError, TransportError
from repro.serve.transport import (
    MAX_FRAME,
    Connection,
    as_row,
    as_rows,
    available_codecs,
    bind_listener,
    connect,
    get_codec,
    recv_frame,
    send_frame,
)


def test_json_codec_roundtrip():
    codec = get_codec("json")
    message = {
        "op": "insert",
        "relation": "E",
        "row": [1, "a", 3],
        "nested": {"added": [[1, 2], [3, 4]]},
    }
    assert codec.decode(codec.encode(message)) == message


def test_json_codec_unicode():
    codec = get_codec("json")
    assert codec.decode(codec.encode({"q": "Δϕ ∪ ψ"})) == {"q": "Δϕ ∪ ψ"}


def test_unknown_codec_rejected():
    with pytest.raises(TransportError, match="unknown codec"):
        get_codec("pickle")


def test_available_codecs_always_has_json():
    assert "json" in available_codecs()


def test_msgpack_codec_matches_availability():
    if "msgpack" in available_codecs():
        codec = get_codec("msgpack")
        assert codec.decode(codec.encode({"a": [1, 2]})) == {"a": [1, 2]}
    else:
        with pytest.raises(TransportError, match="msgpack"):
            get_codec("msgpack")


def test_undecodable_frame_reports_codec():
    codec = get_codec("json")
    with pytest.raises(TransportError, match="undecodable json frame"):
        codec.decode(b"\xff\x00not json")


def test_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        for payload in (b"", b"x", b"y" * 70_000):
            send_frame(left, payload)
            assert recv_frame(right) == payload
    finally:
        left.close()
        right.close()


def test_oversized_send_rejected():
    left, right = socket.socketpair()
    try:
        class Huge(bytes):
            def __len__(self):
                return MAX_FRAME + 1

        with pytest.raises(TransportError, match="exceeds MAX_FRAME"):
            send_frame(left, Huge())
    finally:
        left.close()
        right.close()


def test_corrupt_length_prefix_fails_fast():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME + 7))
        with pytest.raises(TransportError, match="corrupt stream"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_eof_mid_frame_is_connection_closed():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", 100) + b"only-a-prefix")
        left.close()
        with pytest.raises(ConnectionClosedError, match="mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_eof_on_boundary_is_connection_closed():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(ConnectionClosedError):
            recv_frame(right)
    finally:
        right.close()


def test_connection_request_roundtrip():
    left, right = socket.socketpair()
    codec = get_codec("json")
    client = Connection(left, codec)
    server = Connection(right, codec)

    def serve_one():
        request = server.recv()
        server.send({"ok": True, "echo": request})

    thread = threading.Thread(target=serve_one)
    thread.start()
    reply = client.request({"op": "ping"})
    thread.join()
    assert reply == {"ok": True, "echo": {"op": "ping"}}
    client.close()
    server.close()
    with pytest.raises(ConnectionClosedError):
        client.send({"op": "ping"})


def test_connection_rejects_non_dict_reply():
    left, right = socket.socketpair()
    codec = get_codec("json")
    client = Connection(left, codec)
    server = Connection(right, codec)

    def serve_one():
        server.recv()
        server.send([1, 2, 3])

    thread = threading.Thread(target=serve_one)
    thread.start()
    with pytest.raises(TransportError, match="protocol violation"):
        client.request({"op": "ping"})
    thread.join()
    client.close()
    server.close()


def test_bind_listener_and_connect(tmp_path):
    listener, address = bind_listener(str(tmp_path), "t")
    accepted = []

    def accept_one():
        sock, _peer = listener.accept()
        accepted.append(Connection(sock, get_codec("json")))
        accepted[0].send({"ok": True})

    thread = threading.Thread(target=accept_one)
    thread.start()
    conn = connect(address, get_codec("json"))
    assert conn.recv() == {"ok": True}
    thread.join()
    conn.close()
    accepted[0].close()
    listener.close()


def test_tcp_fallback_when_no_socket_dir():
    listener, address = bind_listener(None, "t")
    try:
        assert address[0] == "tcp"
    finally:
        listener.close()


def test_row_canonicalisation():
    assert as_row([1, "a", 2]) == (1, "a", 2)
    assert as_rows([[1, 2], ["x", "y"]]) == ((1, 2), ("x", "y"))
    assert as_rows([]) == ()

"""Wire-transport unit tests: framing, codecs, canonicalisation."""

import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    ConnectionClosedError,
    DeadlineExceededError,
    TransportError,
)
from repro.serve.transport import (
    MAX_FRAME,
    Connection,
    MuxConnection,
    as_row,
    as_rows,
    available_codecs,
    bind_listener,
    connect,
    default_max_frame,
    get_codec,
    recv_frame,
    send_frame,
)


def test_json_codec_roundtrip():
    codec = get_codec("json")
    message = {
        "op": "insert",
        "relation": "E",
        "row": [1, "a", 3],
        "nested": {"added": [[1, 2], [3, 4]]},
    }
    assert codec.decode(codec.encode(message)) == message


def test_json_codec_unicode():
    codec = get_codec("json")
    assert codec.decode(codec.encode({"q": "Δϕ ∪ ψ"})) == {"q": "Δϕ ∪ ψ"}


def test_unknown_codec_rejected():
    with pytest.raises(TransportError, match="unknown codec"):
        get_codec("pickle")


def test_available_codecs_always_has_json():
    assert "json" in available_codecs()


def test_msgpack_codec_matches_availability():
    if "msgpack" in available_codecs():
        codec = get_codec("msgpack")
        assert codec.decode(codec.encode({"a": [1, 2]})) == {"a": [1, 2]}
    else:
        with pytest.raises(TransportError, match="msgpack"):
            get_codec("msgpack")


def test_undecodable_frame_reports_codec():
    codec = get_codec("json")
    with pytest.raises(TransportError, match="undecodable json frame"):
        codec.decode(b"\xff\x00not json")


def test_frame_roundtrip_over_socketpair():
    left, right = socket.socketpair()
    try:
        for payload in (b"", b"x", b"y" * 70_000):
            send_frame(left, payload)
            assert recv_frame(right) == payload
    finally:
        left.close()
        right.close()


def test_oversized_send_rejected():
    left, right = socket.socketpair()
    try:
        class Huge(bytes):
            def __len__(self):
                return MAX_FRAME + 1

        with pytest.raises(
            TransportError, match=r"67108865 bytes exceeds the frame cap"
        ):
            send_frame(left, Huge())
    finally:
        left.close()
        right.close()


def test_corrupt_length_prefix_fails_fast():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME + 7))
        with pytest.raises(TransportError, match="corrupt stream"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_eof_mid_frame_is_connection_closed():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", 100) + b"only-a-prefix")
        left.close()
        with pytest.raises(ConnectionClosedError, match="mid-frame"):
            recv_frame(right)
    finally:
        right.close()


def test_eof_on_boundary_is_connection_closed():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(ConnectionClosedError):
            recv_frame(right)
    finally:
        right.close()


def test_connection_request_roundtrip():
    left, right = socket.socketpair()
    codec = get_codec("json")
    client = Connection(left, codec)
    server = Connection(right, codec)

    def serve_one():
        request = server.recv()
        server.send({"ok": True, "echo": request})

    thread = threading.Thread(target=serve_one)
    thread.start()
    reply = client.request({"op": "ping"})
    thread.join()
    assert reply == {"ok": True, "echo": {"op": "ping"}}
    client.close()
    server.close()
    with pytest.raises(ConnectionClosedError):
        client.send({"op": "ping"})


def test_connection_rejects_non_dict_reply():
    left, right = socket.socketpair()
    codec = get_codec("json")
    client = Connection(left, codec)
    server = Connection(right, codec)

    def serve_one():
        server.recv()
        server.send([1, 2, 3])

    thread = threading.Thread(target=serve_one)
    thread.start()
    with pytest.raises(TransportError, match="protocol violation"):
        client.request({"op": "ping"})
    thread.join()
    client.close()
    server.close()


def test_bind_listener_and_connect(tmp_path):
    listener, address = bind_listener(str(tmp_path), "t")
    accepted = []

    def accept_one():
        sock, _peer = listener.accept()
        accepted.append(Connection(sock, get_codec("json")))
        accepted[0].send({"ok": True})

    thread = threading.Thread(target=accept_one)
    thread.start()
    conn = connect(address, get_codec("json"))
    assert conn.recv() == {"ok": True}
    thread.join()
    conn.close()
    accepted[0].close()
    listener.close()


def test_tcp_fallback_when_no_socket_dir():
    listener, address = bind_listener(None, "t")
    try:
        assert address[0] == "tcp"
    finally:
        listener.close()


def test_row_canonicalisation():
    assert as_row([1, "a", 2]) == (1, "a", 2)
    assert as_rows([[1, 2], ["x", "y"]]) == ((1, 2), ("x", "y"))
    assert as_rows([]) == ()


# ---------------------------------------------------------------------------
# configurable frame cap: max_frame= and REPRO_MAX_FRAME
# ---------------------------------------------------------------------------


def test_send_frame_respects_explicit_cap():
    left, right = socket.socketpair()
    try:
        send_frame(left, b"x" * 64, max_frame=64)  # at the cap: fine
        assert recv_frame(right, max_frame=64) == b"x" * 64
        with pytest.raises(
            TransportError, match=r"65 bytes exceeds the frame cap \(64"
        ):
            send_frame(left, b"x" * 65, max_frame=64)
    finally:
        left.close()
        right.close()


def test_recv_frame_reports_observed_size_over_cap():
    left, right = socket.socketpair()
    try:
        send_frame(left, b"y" * 100)  # sender has the default cap
        with pytest.raises(
            TransportError, match=r"claims 100 bytes, over the frame cap \(32"
        ):
            recv_frame(right, max_frame=32)
    finally:
        left.close()
        right.close()


def test_env_cap_applies_both_directions(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_FRAME", "48")
    assert default_max_frame() == 48
    left, right = socket.socketpair()
    try:
        with pytest.raises(TransportError, match="REPRO_MAX_FRAME"):
            send_frame(left, b"z" * 49)
        monkeypatch.setenv("REPRO_MAX_FRAME", str(MAX_FRAME))
        send_frame(left, b"z" * 49)
        monkeypatch.setenv("REPRO_MAX_FRAME", "48")
        with pytest.raises(TransportError, match="over the frame cap"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_env_cap_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_FRAME", "lots")
    with pytest.raises(TransportError, match="integer byte count"):
        default_max_frame()
    monkeypatch.setenv("REPRO_MAX_FRAME", "0")
    with pytest.raises(TransportError, match=">= 1"):
        default_max_frame()
    monkeypatch.setenv("REPRO_MAX_FRAME", "")
    assert default_max_frame() == MAX_FRAME


def test_connection_pins_cap_at_construction(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_FRAME", "32")
    left, right = socket.socketpair()
    sender = Connection(left, get_codec("json"))
    receiver = Connection(right, get_codec("json"), max_frame=MAX_FRAME)
    try:
        assert sender.max_frame == 32
        monkeypatch.delenv("REPRO_MAX_FRAME")
        with pytest.raises(TransportError, match="exceeds the frame cap"):
            sender.send({"pad": "x" * 64})
    finally:
        sender.close()
        receiver.close()


# ---------------------------------------------------------------------------
# MuxConnection: out-of-order replies, concurrency, failure fan-out
# ---------------------------------------------------------------------------


class _MuxEcho:
    """A scriptable mux peer over a socketpair, for unit tests."""

    def __init__(self):
        left, right = socket.socketpair()
        codec = get_codec("json")
        self.mux = MuxConnection(Connection(left, codec))
        self.peer = Connection(right, codec)
        self.threads = []

    def serve(self, count, reorder=False, delay_key="delay"):
        def run():
            pending = []
            for _ in range(count):
                request = self.peer.recv()
                pending.append(request)
                if not reorder:
                    self._reply(request, delay_key)
                    pending.clear()
            if reorder:
                for request in reversed(pending):
                    self._reply(request, delay_key)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        self.threads.append(thread)

    def _reply(self, request, delay_key):
        delay = request.get(delay_key, 0)
        if delay:
            time.sleep(delay)
        self.peer.send(
            {"ok": True, "echo": request.get("n"), "mux_id": request["mux_id"]}
        )

    def close(self):
        for thread in self.threads:
            thread.join(timeout=5.0)
        self.mux.close()
        self.peer.close()


def test_mux_out_of_order_replies_reach_their_callers():
    harness = _MuxEcho()
    try:
        harness.serve(count=3, reorder=True)
        results = {}

        def ask(n):
            results[n] = harness.mux.request({"op": "echo", "n": n})["echo"]

        threads = [threading.Thread(target=ask, args=(n,)) for n in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Replies came back in reverse send order, yet each caller got
        # its own: the mux_id matching is what the protocol rides on.
        assert results == {0: 0, 1: 1, 2: 2}
        assert harness.mux.max_in_flight_seen == 3
        assert harness.mux.in_flight == 0
    finally:
        harness.close()


def test_mux_sustains_many_concurrent_in_flight():
    harness = _MuxEcho()
    try:
        harness.serve(count=12, reorder=True)
        threads = [
            threading.Thread(
                target=lambda n=n: harness.mux.request({"op": "echo", "n": n})
            )
            for n in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert harness.mux.max_in_flight_seen >= 8
    finally:
        harness.close()


def test_mux_routes_untagged_frames_to_on_push():
    harness = _MuxEcho()
    try:
        pushes = []
        harness.mux.on_push = pushes.append
        harness.serve(count=1)
        harness.peer.send({"kind": "delta", "epoch": 7})  # untagged
        assert harness.mux.request({"op": "echo", "n": 9})["echo"] == 9
        deadline = time.monotonic() + 5.0
        while not pushes and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pushes == [{"kind": "delta", "epoch": 7}]
    finally:
        harness.close()


def test_mux_request_timeout_is_precise():
    harness = _MuxEcho()
    try:
        harness.mux.start()
        with pytest.raises(DeadlineExceededError, match=r"'echo'.*timed out") as info:
            harness.mux.request({"op": "echo", "n": 1}, timeout=0.05)
        assert info.value.details["op"] == "echo"
        assert info.value.details["elapsed"] == pytest.approx(0.05)
        assert harness.mux.in_flight == 0  # the waiter was reaped
        # A clean mux deadline does NOT condemn the connection.
        assert not harness.mux.closed
    finally:
        harness.peer.close()
        harness.mux.close()


def test_mux_failure_fans_out_to_parked_waiters():
    harness = _MuxEcho()
    errors = []

    def ask():
        try:
            harness.mux.request({"op": "echo", "n": 1})
        except ConnectionClosedError as error:
            errors.append(error)

    try:
        harness.mux.start()
        threads = [threading.Thread(target=ask) for _ in range(3)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5.0
        while harness.mux.in_flight < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        harness.peer.close()  # kill the channel under the parked waiters
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(errors) == 3
        with pytest.raises(ConnectionClosedError, match="down"):
            harness.mux.request({"op": "echo", "n": 2})
    finally:
        harness.mux.close()


def test_mux_recv_after_start_is_rejected():
    harness = _MuxEcho()
    try:
        harness.mux.start()
        with pytest.raises(TransportError, match="reader thread owns"):
            harness.mux.recv()
    finally:
        harness.peer.close()
        harness.mux.close()

"""Tests for the storage substrate (database, relations, schema)."""

import pytest

from repro.cq import zoo
from repro.errors import SchemaError, UpdateError
from repro.storage.database import Database, Relation, Schema


class TestSchema:
    def test_basic(self):
        schema = Schema({"E": 2, "T": 1})
        assert schema.arity("E") == 2
        assert "T" in schema
        assert schema.relations() == ("E", "T")

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema({"E": 2}).arity("X")

    def test_zero_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"E": 0})

    def test_from_query(self):
        schema = Schema.from_query(zoo.S_E_T)
        assert schema.arity("S") == 1
        assert schema.arity("E") == 2
        assert schema.arity("T") == 1


class TestRelation:
    def test_insert_delete_cycle(self):
        rel = Relation("E", 2)
        assert rel.insert(("a", "b"))
        assert not rel.insert(("a", "b"))  # set semantics
        assert ("a", "b") in rel
        assert rel.delete(("a", "b"))
        assert not rel.delete(("a", "b"))
        assert len(rel) == 0

    def test_arity_checked(self):
        rel = Relation("E", 2)
        with pytest.raises(UpdateError):
            rel.insert(("a",))
        with pytest.raises(UpdateError):
            rel.delete(("a", "b", "c"))

    def test_copy_is_independent(self):
        rel = Relation("E", 1, [("a",)])
        clone = rel.copy()
        clone.insert(("b",))
        assert len(rel) == 1 and len(clone) == 2


class TestDatabase:
    def test_from_dict_infers_arity(self):
        db = Database.from_dict({"E": [(1, 2), (2, 3)]})
        assert db.relation("E").arity == 2
        assert db.cardinality == 2

    def test_empty_relation_needs_schema(self):
        with pytest.raises(SchemaError):
            Database.from_dict({"E": []})
        db = Database.from_dict({"E": []}, schema=Schema({"E": 2}))
        assert db.cardinality == 0

    def test_active_domain_refcounting(self):
        db = Database.from_dict({"E": [(1, 2)]})
        assert db.active_domain == {1, 2}
        db.insert("E", (2, 3))
        assert db.active_domain_size == 3
        db.delete("E", (1, 2))
        # 2 still referenced by (2, 3); 1 gone.
        assert db.active_domain == {2, 3}
        db.delete("E", (2, 3))
        assert db.active_domain_size == 0

    def test_repeated_value_refcount(self):
        db = Database.from_dict({"E": [(5, 5)]})
        assert db.active_domain_size == 1
        db.delete("E", (5, 5))
        assert db.active_domain_size == 0

    def test_insert_noop_keeps_counts(self):
        db = Database.from_dict({"E": [(1, 2)]})
        assert not db.insert("E", (1, 2))
        assert db.active_domain_size == 2
        assert db.cardinality == 1

    def test_size_formula(self):
        # ||D|| = |σ| + |adom| + Σ ar(R)·|R|.
        db = Database.from_dict({"E": [(1, 2)], "T": [(1,)]})
        assert db.size == 2 + 2 + (2 * 1 + 1 * 1)

    def test_unknown_relation(self):
        db = Database.from_dict({"E": [(1, 2)]})
        with pytest.raises(SchemaError):
            db.insert("X", (1,))

    def test_copy_independent(self):
        db = Database.from_dict({"E": [(1, 2)]})
        clone = db.copy()
        clone.insert("E", (3, 4))
        assert db.cardinality == 1 and clone.cardinality == 2
        assert db.active_domain_size == 2 and clone.active_domain_size == 4

    def test_equality(self):
        db1 = Database.from_dict({"E": [(1, 2)]})
        db2 = Database.from_dict({"E": [(1, 2)]})
        assert db1 == db2
        db2.insert("E", (9, 9))
        assert db1 != db2

    def test_empty_like(self):
        db = Database.empty_like(zoo.S_E_T)
        assert db.cardinality == 0
        assert "S" in db and "E" in db and "T" in db

    def test_mixed_value_types(self):
        db = Database.from_dict({"E": [(("a", 1), "x")]})
        db.insert("E", (3.5, None))
        assert db.cardinality == 2

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest

from repro.cq.query import ConjunctiveQuery
from repro.storage.database import Database, Row
from repro.storage.updates import UpdateCommand, delete, insert

# ---------------------------------------------------------------------------
# Example 6.1 (Figures 2-3, Table 1)
# ---------------------------------------------------------------------------

EXAMPLE_6_1_E = [("a", "e"), ("a", "f"), ("b", "d"), ("b", "g"), ("b", "h")]
EXAMPLE_6_1_S = [
    ("a", "e", "a"),
    ("a", "e", "b"),
    ("a", "f", "c"),
    ("b", "g", "b"),
    ("b", "p", "a"),
]
EXAMPLE_6_1_R = EXAMPLE_6_1_S + [
    ("a", "e", "c"),
    ("b", "g", "a"),
    ("b", "g", "c"),
    ("b", "p", "b"),
    ("b", "p", "c"),
]


def example_6_1_database() -> Database:
    """The database ``D0`` of Example 6.1."""
    return Database.from_dict(
        {"E": EXAMPLE_6_1_E, "S": EXAMPLE_6_1_S, "R": EXAMPLE_6_1_R}
    )


@pytest.fixture
def d0() -> Database:
    return example_6_1_database()


def feed_example_6_1_sorted(engine) -> None:
    """Insert D0 in sorted per-relation order (E, R, S).

    This ordering makes the fit lists come out sorted, matching the
    layout the paper draws in Figure 3 and the enumeration order of
    Table 1.
    """
    for row in sorted(EXAMPLE_6_1_E):
        engine.insert("E", row)
    for row in sorted(EXAMPLE_6_1_R):
        engine.insert("R", row)
    for row in sorted(EXAMPLE_6_1_S):
        engine.insert("S", row)


# ---------------------------------------------------------------------------
# random update streams (deterministic per rng)
# ---------------------------------------------------------------------------


def random_stream(
    query: ConjunctiveQuery,
    rng: random.Random,
    rounds: int = 100,
    domain: int = 8,
    delete_fraction: float = 0.35,
) -> List[UpdateCommand]:
    """Insert/delete stream over the query's schema; deletes always hit
    live tuples, so every command is effective."""
    seen: List[Tuple[str, int]] = []
    for atom in query.atoms:
        pair = (atom.relation, atom.arity)
        if pair not in seen:
            seen.append(pair)
    live: Set[Tuple[str, Row]] = set()
    commands: List[UpdateCommand] = []
    for _ in range(rounds):
        name, arity = rng.choice(seen)
        candidates = sorted(t for t in live if t[0] == name)
        if candidates and rng.random() < delete_fraction:
            chosen = rng.choice(candidates)
            live.discard(chosen)
            commands.append(delete(name, chosen[1]))
        else:
            row = tuple(rng.randint(1, domain) for _ in range(arity))
            live.add((name, row))
            commands.append(insert(name, row))
    return commands


def loop_graph_stream(
    rng: random.Random,
    rounds: int = 120,
    domain: int = 7,
    loop_fraction: float = 0.4,
    delete_fraction: float = 0.3,
) -> List[UpdateCommand]:
    """A stream over a single binary relation E with many self-loops —
    the workload for the Appendix A queries."""
    live: Set[Row] = set()
    commands: List[UpdateCommand] = []
    for _ in range(rounds):
        if live and rng.random() < delete_fraction:
            row = rng.choice(sorted(live))
            live.discard(row)
            commands.append(delete("E", row))
        else:
            if rng.random() < loop_fraction:
                value = rng.randint(1, domain)
                row = (value, value)
            else:
                row = (rng.randint(1, domain), rng.randint(1, domain))
            live.add(row)
            commands.append(insert("E", row))
    return commands

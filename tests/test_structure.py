"""Low-level tests of the Section 6 data structure (ComponentStructure)."""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.structure import ComponentStructure
from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.eval_static.naive import evaluate as evaluate_naive, valuation_counts
from tests.conftest import feed_example_6_1_sorted


def example_structure() -> ComponentStructure:
    engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
    feed_example_6_1_sorted(engine)
    return engine.structures[0]


class TestFigure3Weights:
    """The exact numbers printed in Figure 3(a) and 3(b)."""

    def test_c_start_23(self):
        structure = example_structure()
        assert structure.c_start == 23
        assert structure.count() == 23

    def test_root_weights(self):
        structure = example_structure()
        assert structure.item("x", ("a",)).weight == 14
        assert structure.item("x", ("b",)).weight == 9

    def test_y_level_weights(self):
        structure = example_structure()
        assert structure.item("y", ("a", "e")).weight == 6
        assert structure.item("y", ("a", "f")).weight == 1
        assert structure.item("y", ("b", "g")).weight == 3

    def test_unfit_item_p_present_with_weight_zero(self):
        structure = example_structure()
        item = structure.item("y", ("b", "p"))
        assert item is not None
        assert item.weight == 0
        assert not item.in_list

    def test_figure_3a_omitted_unfit_items(self):
        # The seven unfit items the caption lists as omitted.
        structure = example_structure()
        expected_missing_from_lists = [
            ("y", ("b", "d")),
            ("y", ("b", "h")),
            ("z", ("a", "e", "c")),
            ("z", ("b", "g", "a")),
            ("z", ("b", "g", "c")),
            ("z", ("b", "p", "b")),
            ("z", ("b", "p", "c")),
        ]
        for node, key in expected_missing_from_lists:
            item = structure.item(node, key)
            assert item is not None, (node, key)
            assert item.weight == 0 and not item.in_list, (node, key)

    def test_insert_e_b_p_reaches_figure_3b(self):
        structure = example_structure()
        structure.apply(True, "E", ("b", "p"))
        assert structure.c_start == 38
        assert structure.item("x", ("b",)).weight == 24
        assert structure.item("y", ("b", "p")).weight == 3
        assert structure.item("y", ("b", "p")).in_list

    def test_start_list_order(self):
        structure = example_structure()
        assert [item.constant for item in structure.start] == ["a", "b"]


class TestWeightsAgainstBruteForce:
    def test_weights_equal_expansion_counts(self):
        """C^i must equal |E^i| (the Lemma 6.3 invariant), checked by
        brute-force recomputation over the final database."""
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        structure = engine.structures[0]
        db = engine.database
        tree = structure.qtree
        for node in tree.document_order():
            atom_indices = tree.atoms_at[node]
            sub_atoms = [zoo.EXAMPLE_6_1.atoms[i] for i in atom_indices]
            sub_vars = sorted({v for a in sub_atoms for v in a.args})
            subquery = parse_query(
                "Qx("
                + ", ".join(sub_vars)
                + ") :- "
                + ", ".join(str(a) for a in sub_atoms)
            )
            counts = valuation_counts(subquery, db)
            for item in structure.items_at(node):
                binding = dict(zip(tree.path[node], item.key))
                expected = sum(
                    amount
                    for key, amount in counts.items()
                    if all(
                        key[sub_vars.index(var)] == value
                        for var, value in binding.items()
                        if var in sub_vars
                    )
                )
                assert item.weight == expected, (node, item.key)


class TestStructureLifecycle:
    def test_empty_structure(self):
        structure = ComponentStructure(zoo.EXAMPLE_6_1)
        assert structure.c_start == 0
        assert structure.count() == 0
        assert not structure.answer()
        assert list(structure.enumerate()) == []

    def test_delete_everything_returns_to_pristine(self):
        rng = random.Random(2)
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        structure = engine.structures[0]
        rows = [
            (relation.name, row)
            for relation in engine.database.relations()
            for row in relation.rows
        ]
        rng.shuffle(rows)
        for name, row in rows:
            engine.delete(name, row)
        assert structure.c_start == 0
        assert structure.t_start == 0
        assert structure.item_count() == 0
        assert list(structure.enumerate()) == []

    def test_item_count_linear_in_database(self):
        # Section 6.2: every fact yields a constant number of items.
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        tuples = engine.database.cardinality
        max_path = 3  # deepest atom path in the q-tree
        assert engine.item_count() <= tuples * max_path

    def test_reinsert_after_delete_is_consistent(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        engine.delete("E", ("a", "e"))
        engine.insert("E", ("a", "e"))
        assert engine.structures[0].c_start == 23

    def test_repeated_variable_pattern_filter(self):
        q = parse_query("Q(x) :- E(x, x)")
        structure = ComponentStructure(q)
        structure.apply(True, "E", (1, 2))  # pattern mismatch: ignored
        assert structure.c_start == 0
        structure.apply(True, "E", (3, 3))
        assert structure.c_start == 1
        assert list(structure.enumerate()) == [(3,)]

    def test_boolean_structure_counts(self):
        structure = ComponentStructure(zoo.E_T_BOOLEAN)
        structure.apply(True, "E", (1, 5))
        assert not structure.answer()  # T still empty
        assert structure.count() == 0
        structure.apply(True, "T", (5,))
        assert structure.answer()
        assert structure.count() == 1
        assert list(structure.enumerate()) == [()]

    def test_quantified_counting_tweights(self):
        # ∃x (Exy ∧ Ty) with free y: count distinct y regardless of
        # how many x witnesses exist.
        q = zoo.E_T_Y_QUANTIFIED
        structure = ComponentStructure(q)
        structure.apply(True, "E", (1, 5))
        structure.apply(True, "E", (2, 5))
        structure.apply(True, "T", (5,))
        assert structure.count() == 1  # y=5 once, despite two x's
        assert structure.c_start == 2  # valuation count is 2
        structure.apply(False, "E", (1, 5))
        assert structure.count() == 1
        structure.apply(False, "E", (2, 5))
        assert structure.count() == 0

    def test_snapshot_contents(self):
        structure = example_structure()
        snap = structure.snapshot()
        assert snap["c_start"] == 23
        assert snap["start_list"] == [("a",), ("b",)]
        assert snap["items"][("x", ("a",))]["weight"] == 14

"""End-to-end tests of QHierarchicalEngine (Theorem 3.2)."""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.cq import zoo
from repro.cq.generators import random_q_hierarchical_query
from repro.cq.parser import parse_query
from repro.errors import NotQHierarchicalError, SchemaError
from repro.eval_static.naive import evaluate as evaluate_naive
from repro.storage.database import Database
from tests.conftest import feed_example_6_1_sorted, random_stream


class TestConstruction:
    def test_rejects_non_q_hierarchical(self):
        for name in ["S_E_T", "S_E_T_BOOLEAN", "E_T", "PHI_1", "PHI_2"]:
            with pytest.raises(NotQHierarchicalError) as excinfo:
                QHierarchicalEngine(zoo.PAPER_QUERIES[name])
            assert excinfo.value.violation is not None

    def test_accepts_paper_tractable_queries(self):
        for name in [
            "E_T_QF",
            "E_T_BOOLEAN",
            "E_T_Y_QUANTIFIED",
            "HIERARCHICAL_RRE",
            "LOOP_CORE",
            "EXAMPLE_6_1",
            "FIGURE_1",
        ]:
            engine = QHierarchicalEngine(zoo.PAPER_QUERIES[name])
            assert engine.count() == 0

    def test_preprocessing_from_initial_database(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        assert engine.count() == 23
        assert engine.database == d0

    def test_unknown_relation_rejected(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        with pytest.raises(SchemaError):
            engine.insert("X", (1,))


class TestQueries:
    def test_count_answer_enumerate_consistency(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        rows = list(engine.enumerate())
        assert len(rows) == engine.count() == 23
        assert len(set(rows)) == 23
        assert engine.answer()
        assert engine.result_set() == evaluate_naive(zoo.EXAMPLE_6_1, d0)

    def test_boolean_query_yields_unit(self):
        engine = QHierarchicalEngine(zoo.E_T_BOOLEAN)
        assert list(engine.enumerate()) == []
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        assert list(engine.enumerate()) == [()]
        assert engine.count() == 1

    def test_noop_updates_change_nothing(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        assert not engine.insert("E", ("a", "e"))  # already present
        assert not engine.delete("E", ("zz", "zz"))  # absent
        assert engine.count() == 23

    def test_figure_3b_transition(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        assert engine.count() == 23
        engine.insert("E", ("b", "p"))
        assert engine.count() == 38
        engine.delete("E", ("b", "p"))
        assert engine.count() == 23

    def test_active_domain_size(self):
        engine = QHierarchicalEngine(zoo.E_T_QF)
        engine.insert("E", (1, 2))
        engine.insert("T", (2,))
        assert engine.active_domain_size == 2


class TestDisconnectedQueries:
    def test_cross_product_count(self):
        q = parse_query("Q(x, u) :- R(x), U(u)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (1,))
        engine.insert("R", (2,))
        engine.insert("U", (7,))
        assert engine.count() == 2
        assert engine.result_set() == {(1, 7), (2, 7)}

    def test_boolean_component_gates_results(self):
        q = parse_query("Q(x) :- R(x), S(u, v)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (1,))
        assert engine.count() == 0
        assert not engine.answer()
        engine.insert("S", (5, 6))
        assert engine.count() == 1
        assert engine.result_set() == {(1,)}

    def test_output_positions_interleaved(self):
        # Free tuple interleaves variables of two components.
        q = parse_query("Q(u, x, w) :- R(x), U(u, w)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (1,))
        engine.insert("U", (7, 8))
        assert engine.result_set() == {(7, 1, 8)}

    def test_three_components(self):
        q = parse_query("Q(a, b, c) :- A(a), B(b), C(c)")
        engine = QHierarchicalEngine(q)
        for relation, values in [("A", [1, 2]), ("B", [5]), ("C", [8, 9])]:
            for value in values:
                engine.insert(relation, (value,))
        assert engine.count() == 4
        assert len(engine.result_set()) == 4


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_match_naive(self, seed):
        rng = random.Random(seed)
        query = random_q_hierarchical_query(rng)
        engine = QHierarchicalEngine(query)
        for step, command in enumerate(random_stream(query, rng, rounds=80)):
            engine.apply(command)
            if step % 13 == 0:
                truth = evaluate_naive(query, engine.database)
                assert engine.result_set() == truth
                assert engine.count() == len(truth)
                assert engine.answer() == bool(truth)

    def test_star_query_multiplicative_count(self):
        query = zoo.star_query(2)
        engine = QHierarchicalEngine(query)
        engine.insert("S", (0,))
        for leaf in range(3):
            engine.insert("E1", (0, leaf))
        for leaf in range(4):
            engine.insert("E2", (0, leaf))
        # Only the centre is free: count is 1 while x=0 has witnesses.
        assert engine.count() == 1
        engine.delete("S", (0,))
        assert engine.count() == 0

    def test_star_query_with_free_leaves(self):
        query = zoo.star_query(2, free_leaves=2)
        engine = QHierarchicalEngine(query)
        engine.insert("S", (0,))
        for leaf in range(3):
            engine.insert("E1", (0, leaf))
        for leaf in range(4):
            engine.insert("E2", (0, leaf))
        assert engine.count() == 12  # 3 × 4 combinations

    def test_hierarchical_rre_boolean(self):
        engine = QHierarchicalEngine(zoo.HIERARCHICAL_RRE)
        engine.insert("R", (1, 2, 3))
        assert not engine.answer()
        engine.insert("E", (1, 2))
        assert engine.answer()
        engine.delete("R", (1, 2, 3))
        assert not engine.answer()


class TestSlidingWindowWorkload:
    def test_window_stream_matches_naive_throughout(self):
        from repro.workloads.streams import sliding_window_stream

        rng = random.Random(77)
        query = zoo.star_query(2, free_leaves=1)
        engine = QHierarchicalEngine(query)
        stream = sliding_window_stream(rng, query, count=150, window=30)
        for step, command in enumerate(stream):
            engine.apply(command)
            if step % 25 == 0:
                truth = evaluate_naive(query, engine.database)
                assert engine.result_set() == truth
                assert engine.count() == len(truth)
        # The window keeps the live database small even after 150 steps.
        assert engine.database.cardinality <= 31


class TestEnumerationRestart:
    def test_enumeration_restarts_after_update(self, d0):
        # The paper's model: after an update, restart enumeration and
        # get the new result with the same guarantees.
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        first = list(engine.enumerate())
        engine.insert("E", ("b", "p"))
        second = list(engine.enumerate())
        assert len(first) == 23 and len(second) == 38
        assert set(first) < set(second)

    def test_two_concurrent_generators_same_state(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        gen1 = engine.enumerate()
        gen2 = engine.enumerate()
        assert next(gen1) == next(gen2)
        assert list(gen1) == list(gen2)

"""Failure-injection and edge-case coverage across modules."""

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.structure import ComponentStructure
from repro.cq import zoo
from repro.cq.generators import random_multi_component_query
from repro.cq.parser import parse_query
from repro.errors import (
    EngineStateError,
    NotQHierarchicalError,
    QuerySyntaxError,
    QueryStructureError,
    ReductionError,
    ReproError,
    SchemaError,
    UpdateError,
)
from repro.eval_static.relalg import (
    BindingTable,
    cross_join,
    hash_join,
    project,
    scan_atom,
    semijoin,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            QuerySyntaxError,
            QueryStructureError,
            SchemaError,
            NotQHierarchicalError,
            UpdateError,
            EngineStateError,
            ReductionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_not_q_hierarchical_carries_violation(self):
        try:
            QHierarchicalEngine(zoo.S_E_T)
        except NotQHierarchicalError as error:
            assert error.violation is not None
            assert error.violation.kind == "condition_i"
        else:
            pytest.fail("expected NotQHierarchicalError")

    def test_single_catch_clause_suffices(self):
        caught = 0
        for action in [
            lambda: parse_query("("),
            lambda: QHierarchicalEngine(zoo.E_T),
        ]:
            try:
                action()
            except ReproError:
                caught += 1
        assert caught == 2


class TestStructureEdgeCases:
    def test_delete_without_prior_insert_raises(self):
        structure = ComponentStructure(zoo.E_T_QF)
        with pytest.raises(EngineStateError):
            structure.apply(False, "E", (1, 2))

    def test_engine_filters_such_deletes(self):
        engine = QHierarchicalEngine(zoo.E_T_QF)
        # The engine's set-semantics guard makes this a harmless no-op.
        assert not engine.delete("E", (1, 2))

    def test_single_variable_query(self):
        q = parse_query("Q(x) :- R(x)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (5,))
        assert engine.result_set() == {(5,)}
        engine.delete("R", (5,))
        assert engine.count() == 0

    def test_atom_with_all_repeated_variables(self):
        q = parse_query("Q(x) :- R(x, x, x)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (1, 1, 1))
        engine.insert("R", (1, 2, 1))  # pattern mismatch
        assert engine.result_set() == {(1,)}

    def test_deep_chain_query(self):
        # A 4-level nested query: R4's variables are a full root path.
        q = parse_query(
            "Q(a, b, c, d) :- R1(a), R2(a, b), R3(a, b, c), R4(a, b, c, d)"
        )
        engine = QHierarchicalEngine(q)
        engine.insert("R1", (1,))
        engine.insert("R2", (1, 2))
        engine.insert("R3", (1, 2, 3))
        engine.insert("R4", (1, 2, 3, 4))
        assert engine.result_set() == {(1, 2, 3, 4)}
        engine.delete("R3", (1, 2, 3))
        assert engine.count() == 0

    def test_multi_component_generated_queries(self):
        import random

        from repro.eval_static.naive import evaluate as evaluate_naive
        from tests.conftest import random_stream

        rng = random.Random(21)
        for _ in range(5):
            query = random_multi_component_query(rng, components=3)
            engine = QHierarchicalEngine(query)
            for command in random_stream(query, rng, rounds=40, domain=4):
                engine.apply(command)
            truth = evaluate_naive(query, engine.database)
            assert engine.result_set() == truth
            assert engine.count() == len(truth)


class TestRelalgEdgeCases:
    def test_scan_atom_repeated_vars_filter(self):
        from repro.cq.query import Atom

        table = scan_atom(Atom("R", ["x", "x"]), [(1, 1), (1, 2)])
        assert table.rows == {(1,)}
        assert table.varlist == ("x",)

    def test_semijoin_disjoint_vars_emptiness_filter(self):
        left = BindingTable(("x",), {(1,), (2,)})
        right_empty = BindingTable(("y",), set())
        right_full = BindingTable(("y",), {(9,)})
        assert semijoin(left, right_empty).rows == set()
        assert semijoin(left, right_full).rows == left.rows

    def test_hash_join_no_shared_is_cross(self):
        left = BindingTable(("x",), {(1,), (2,)})
        right = BindingTable(("y",), {(8,), (9,)})
        joined = hash_join(left, right)
        assert len(joined.rows) == 4
        assert joined.varlist == ("x", "y")

    def test_project_to_nothing(self):
        table = BindingTable(("x",), {(1,), (2,)})
        projected = project(table, ())
        assert projected.rows == {()}

    def test_cross_join_empty_sequence(self):
        unit = cross_join([])
        assert unit.rows == {()}
        assert unit.varlist == ()

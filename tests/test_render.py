"""Tests for the ASCII renderers (q-trees and structure dumps)."""

import random

from repro.core.engine import QHierarchicalEngine
from repro.core.qtree import build_q_tree
from repro.core.render import render_q_tree, render_structure
from repro.cq import zoo
from repro.cq.generators import random_q_hierarchical_query
from repro.cq.parser import parse_query
from tests.conftest import feed_example_6_1_sorted, random_stream


class TestRenderQTree:
    def test_plain_contains_branches(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        out = render_q_tree(tree)
        assert "├─" in out and "└─" in out
        assert out.splitlines()[0] == "x"

    def test_annotated_marks_free(self):
        tree = build_q_tree(zoo.FIGURE_1, prefer=("x1",))
        out = render_q_tree(tree, annotate=True)
        assert "x1*" in out  # free
        assert "x4   rep:" in out or "x4 " in out  # quantified, no star
        assert "(* marks free variables)" in out

    def test_single_node_tree(self):
        tree = build_q_tree(parse_query("Q(x) :- R(x)"))
        out = render_q_tree(tree, annotate=True)
        assert "R(x)" in out

    def test_boolean_tree_no_star_legend(self):
        tree = build_q_tree(zoo.E_T_BOOLEAN)
        out = render_q_tree(tree, annotate=True)
        assert "(* marks free variables)" not in out


class TestRenderStructure:
    def test_empty_structure(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        out = render_structure(engine.structures[0])
        assert "C_start = 0" in out
        assert "start-list:" in out

    def test_weights_and_unfit_markers(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        out = render_structure(engine.structures[0])
        assert "C_start = 23" in out
        assert "C~_start = 23" in out
        assert "(unfit)" in out
        assert "y-list:" in out and "z'-list:" in out

    def test_include_unfit_false_hides_markers(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        out = render_structure(engine.structures[0], include_unfit=False)
        assert "(unfit)" not in out

    def test_boolean_structure_has_no_tilde(self):
        engine = QHierarchicalEngine(zoo.E_T_BOOLEAN)
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        out = render_structure(engine.structures[0])
        assert "C~_start" not in out
        assert "C_start = 1" in out

    def test_random_structures_render_without_error(self):
        rng = random.Random(12)
        for _ in range(10):
            query = random_q_hierarchical_query(rng)
            engine = QHierarchicalEngine(query)
            for command in random_stream(query, rng, rounds=30, domain=4):
                engine.apply(command)
            for structure in engine.structures:
                out = render_structure(structure)
                assert "C_start" in out

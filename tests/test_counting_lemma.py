"""Tests for Lemma 5.8 (restricted counting via replicated databases)."""

from fractions import Fraction

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.cq.parser import parse_query
from repro.cq import zoo
from repro.errors import ReductionError
from repro.ivm import DeltaIVMEngine
from repro.lowerbounds.counting_lemma import (
    Lemma58Counter,
    brute_force_restricted_count,
    solve_vandermonde,
)
from repro.storage.database import Database


class TestVandermonde:
    def test_constant_polynomial(self):
        # p(ℓ) = 5 for ℓ = 1..1.
        assert solve_vandermonde([5]) == [Fraction(5)]

    def test_linear_polynomial(self):
        # p(ℓ) = 2 + 3ℓ at ℓ = 1, 2.
        assert solve_vandermonde([5, 8]) == [Fraction(2), Fraction(3)]

    def test_quadratic_polynomial(self):
        # p(ℓ) = 1 + 0ℓ + 4ℓ² at ℓ = 1, 2, 3.
        assert solve_vandermonde([5, 17, 37]) == [
            Fraction(1),
            Fraction(0),
            Fraction(4),
        ]

    def test_round_trip_random(self):
        coefficients = [3, 0, 7, 2]
        values = [
            sum(c * ell**j for j, c in enumerate(coefficients))
            for ell in range(1, 5)
        ]
        assert solve_vandermonde(values) == [Fraction(c) for c in coefficients]


def _e_t_counter(engine_factory=DeltaIVMEngine):
    target_sets = {"x": {("a", 1), ("a", 2), ("a", 3)}}
    return Lemma58Counter(zoo.E_T, engine_factory, target_sets), target_sets


class TestLemma58Counter:
    def test_validation_keys(self):
        with pytest.raises(ReductionError):
            Lemma58Counter(zoo.E_T, DeltaIVMEngine, {"nope": {1}})

    def test_validation_disjoint(self):
        q = parse_query("Q(x, y) :- E(x, y)")
        with pytest.raises(ReductionError):
            Lemma58Counter(q, DeltaIVMEngine, {"x": {1}, "y": {1}})

    def test_boolean_query_rejected(self):
        with pytest.raises(ReductionError):
            Lemma58Counter(zoo.E_T_BOOLEAN, DeltaIVMEngine, {})

    def test_engine_fanout(self):
        counter, _ = _e_t_counter()
        # (k+1) · 2^k engines with k = 1.
        assert counter.engine_count == 4
        assert counter.pi_size == 1

    def test_unary_restriction(self):
        counter, target = _e_t_counter()
        db = Database.empty_like(zoo.E_T)
        rows = [
            ("E", (("a", 1), ("b", 1))),
            ("E", (("a", 2), ("b", 2))),
            ("E", (("c", 9), ("b", 1))),  # x outside X_x: must not count
            ("T", (("b", 1),)),
        ]
        for relation, row in rows:
            counter.insert(relation, row)
            db.insert(relation, row)
        assert counter.count() == brute_force_restricted_count(
            zoo.E_T, db, target
        ) == 1

    def test_updates_and_deletes(self):
        counter, target = _e_t_counter()
        db = Database.empty_like(zoo.E_T)

        def apply(op, relation, row):
            getattr(counter, op)(relation, row)
            getattr(db, op)(relation, row)

        apply("insert", "E", (("a", 1), ("b", 1)))
        apply("insert", "T", (("b", 1),))
        assert counter.count() == 1
        apply("insert", "E", (("a", 2), ("b", 1)))
        assert counter.count() == 2
        apply("delete", "T", (("b", 1),))
        assert counter.count() == 0
        assert counter.count() == brute_force_restricted_count(
            zoo.E_T, db, target
        )

    def test_symmetric_query_pi_group(self):
        # Q(x, y) :- E(x, y), E(y, x): the swap is an endomorphism, so
        # |Π| = 2 and the lemma must divide by it.
        q = parse_query("Q(x, y) :- E(x, y), E(y, x)")
        target = {"x": {("a", i) for i in range(1, 4)},
                  "y": {("b", i) for i in range(1, 4)}}
        counter = Lemma58Counter(q, DeltaIVMEngine, target)
        assert counter.pi_size == 2
        db = Database.empty_like(q)

        def apply(relation, row):
            counter.insert(relation, row)
            db.insert(relation, row)

        apply("E", (("a", 1), ("b", 1)))
        apply("E", (("b", 1), ("a", 1)))
        apply("E", (("a", 2), ("b", 2)))  # one-directional: no result
        expected = brute_force_restricted_count(q, db, target)
        assert counter.count() == expected == 1

    def test_with_q_hierarchical_inner_engine(self):
        # The lemma is engine-agnostic; run it over the paper's own
        # engine with a q-hierarchical query.
        q = parse_query("Q(x) :- E(x, y), F(x)")
        target = {"x": {("a", 1), ("a", 2)}}
        counter = Lemma58Counter(q, QHierarchicalEngine, target)
        db = Database.empty_like(q)

        def apply(relation, row):
            counter.insert(relation, row)
            db.insert(relation, row)

        apply("E", (("a", 1), "w"))
        apply("F", (("a", 1),))
        apply("E", (("z", 5), "w"))
        apply("F", (("z", 5),))
        assert counter.count() == brute_force_restricted_count(q, db, target) == 1

    def test_replication_multiplicity_reading(self):
        # A tuple with the same replicated constant in two coordinate
        # slots must lift to ℓ² copies (the DESIGN.md deviation).  With
        # the distinct-value reading the Vandermonde solve would return
        # non-integral values and raise.
        q = parse_query("Q(x, y) :- E(x, y)")
        target = {"x": {("a", 1)}, "y": {("b", 1)}}
        counter = Lemma58Counter(q, DeltaIVMEngine, target)
        db = Database.empty_like(q)

        def apply(relation, row):
            counter.insert(relation, row)
            db.insert(relation, row)

        apply("E", (("a", 1), ("a", 1)))  # repeated replicated value
        apply("E", (("a", 1), ("b", 1)))
        assert counter.count() == brute_force_restricted_count(q, db, target) == 1

"""Tests for the random query generators."""

import random

from repro.cq.analysis import is_q_hierarchical
from repro.cq.generators import (
    random_cq,
    random_q_hierarchical_query,
    random_q_tree_shape,
)


class TestQTreeShape:
    def test_root_is_first_variable(self):
        rng = random.Random(0)
        parent = random_q_tree_shape(rng)
        assert parent["x0"] is None

    def test_parents_precede_children(self):
        rng = random.Random(1)
        parent = random_q_tree_shape(rng, max_depth=4, max_children=3)
        for child, up in parent.items():
            if up is not None:
                assert int(up[1:]) < int(child[1:])

    def test_depth_bound(self):
        rng = random.Random(2)
        for _ in range(20):
            parent = random_q_tree_shape(rng, max_depth=2, max_children=2)

            def depth(node):
                d = 0
                while parent[node] is not None:
                    node = parent[node]
                    d += 1
                return d

            assert all(depth(v) <= 3 for v in parent)


class TestRandomQHierarchical:
    def test_always_q_hierarchical(self):
        rng = random.Random(3)
        for _ in range(300):
            query = random_q_hierarchical_query(rng)
            assert is_q_hierarchical(query), query

    def test_self_join_free(self):
        rng = random.Random(4)
        for _ in range(50):
            assert random_q_hierarchical_query(rng).is_self_join_free

    def test_boolean_allowed_and_forbidden(self):
        rng = random.Random(5)
        booleans = sum(
            1
            for _ in range(100)
            if random_q_hierarchical_query(rng, allow_boolean=True).is_boolean
        )
        assert booleans > 0
        rng = random.Random(6)
        for _ in range(50):
            query = random_q_hierarchical_query(rng, allow_boolean=False)
            assert not query.is_boolean

    def test_connected(self):
        rng = random.Random(7)
        for _ in range(50):
            assert random_q_hierarchical_query(rng).is_connected


class TestRandomCQ:
    def test_structurally_valid(self):
        rng = random.Random(8)
        for _ in range(200):
            query = random_cq(rng)
            assert len(query.atoms) >= 1
            assert query.free_set <= query.variables

    def test_produces_self_joins(self):
        rng = random.Random(9)
        assert any(
            not random_cq(rng, self_join_probability=0.9).is_self_join_free
            for _ in range(50)
        )

    def test_mostly_not_q_hierarchical(self):
        rng = random.Random(10)
        hard = sum(
            1 for _ in range(100) if not is_q_hierarchical(random_cq(rng))
        )
        assert hard > 10

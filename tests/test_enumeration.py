"""Tests for enumeration: Algorithm 1 fidelity and Table 1 order."""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.enumeration import algorithm1
from repro.cq import zoo
from repro.cq.generators import random_q_hierarchical_query
from tests.conftest import feed_example_6_1_sorted, random_stream

# Table 1 of the paper, columns left to right; display order there is
# (x, y, z, z', y') while the query's output order is (x, y, z, y', z').
_TABLE_1_DISPLAY = [
    ("a", "e", "a", "a", "e"),
    ("a", "e", "a", "a", "f"),
    ("a", "e", "a", "b", "e"),
    ("a", "e", "a", "b", "f"),
    ("a", "e", "a", "c", "e"),
    ("a", "e", "a", "c", "f"),
    ("a", "e", "b", "a", "e"),
    ("a", "e", "b", "a", "f"),
    ("a", "e", "b", "b", "e"),
    ("a", "e", "b", "b", "f"),
    ("a", "e", "b", "c", "e"),
    ("a", "e", "b", "c", "f"),
    ("a", "f", "c", "c", "e"),
    ("a", "f", "c", "c", "f"),
    ("b", "g", "b", "a", "d"),
    ("b", "g", "b", "a", "g"),
    ("b", "g", "b", "a", "h"),
    ("b", "g", "b", "b", "d"),
    ("b", "g", "b", "b", "g"),
    ("b", "g", "b", "b", "h"),
    ("b", "g", "b", "c", "d"),
    ("b", "g", "b", "c", "g"),
    ("b", "g", "b", "c", "h"),
]

#: Table 1 rewritten in the query's output order (x, y, z, y', z').
TABLE_1_ROWS = [(x, y, z, yp, zp) for (x, y, z, zp, yp) in _TABLE_1_DISPLAY]


class TestTable1:
    def test_exact_sequence(self):
        """Sorted-order insertion reproduces Table 1 tuple-for-tuple."""
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        assert list(engine.enumerate()) == TABLE_1_ROWS

    def test_algorithm1_identical_sequence(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        assert list(algorithm1(engine.structures[0])) == TABLE_1_ROWS

    def test_no_duplicates(self):
        assert len(set(TABLE_1_ROWS)) == 23


class TestAlgorithm1Fidelity:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_generator_enumeration(self, seed):
        rng = random.Random(seed)
        query = random_q_hierarchical_query(rng)
        engine = QHierarchicalEngine(query)
        for command in random_stream(query, rng, rounds=60):
            engine.apply(command)
        for structure in engine.structures:
            assert list(algorithm1(structure)) == list(structure.enumerate())

    def test_empty_structure(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        assert list(algorithm1(engine.structures[0])) == []

    def test_boolean_structure(self):
        engine = QHierarchicalEngine(zoo.E_T_BOOLEAN)
        assert list(algorithm1(engine.structures[0])) == []
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        assert list(algorithm1(engine.structures[0])) == [()]


class TestDocumentOrderSemantics:
    def test_rightmost_variable_cycles_fastest(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        rows = list(engine.enumerate())
        # Document order is (x, y, z, z', y'): consecutive rows with the
        # same (x, y, z, z') must differ only in y' (position 3 of the
        # output order).
        for previous, current in zip(rows, rows[1:]):
            if (
                previous[0] == current[0]
                and previous[1] == current[1]
                and previous[2] == current[2]
                and previous[4] == current[4]
            ):
                assert previous[3] != current[3]

    def test_prefix_monotone_blocks(self):
        """x changes at most once over the whole enumeration (start
        list is walked once, in order)."""
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        xs = [row[0] for row in engine.enumerate()]
        changes = sum(1 for a, b in zip(xs, xs[1:]) if a != b)
        assert changes == 1

"""Property-style tests: batched net-effect application ≡ replaying the
raw stream command-by-command.

For random update streams (including redundant and self-cancelling
commands), a :meth:`Session.batch` commit must leave every view with
exactly the ``result_set()``/``count()`` that applying the same stream
one command at a time through a :class:`RecomputeEngine` produces —
net-effect compression is an optimisation, never a semantics change.
"""

import random

import pytest

from repro.api import Session
from repro.cq.parser import parse_query
from repro.extensions.ucq import UnionOfCQs
from repro.ivm.recompute import RecomputeEngine
from repro.storage.updates import delete, insert

VIEW_CQ = parse_query("V(x, y) :- R(x, y), S(x)")
VIEW_UCQ_TEXT = "V(x, y) :- R(x, y), S(x); V(x, y) :- T(x, y)"
UCQ_DISJUNCTS = (VIEW_CQ, parse_query("V(x, y) :- T(x, y)"))

SCHEMA = {"R": 2, "S": 1, "T": 2}


def churny_stream(rng: random.Random, rounds: int, domain: int = 4):
    """A redundant stream: small domain, frequent toggles, duplicate
    inserts and deletes of absent tuples all occur."""
    commands = []
    for _ in range(rounds):
        relation = rng.choice(sorted(SCHEMA))
        row = tuple(rng.randint(1, domain) for _ in range(SCHEMA[relation]))
        op = insert if rng.random() < 0.6 else delete
        commands.append(op(relation, row))
    return commands


def recompute_union_truth(commands) -> set:
    """Replay the raw stream per disjunct through RecomputeEngine."""
    result = set()
    for disjunct in UCQ_DISJUNCTS:
        engine = RecomputeEngine(disjunct)
        for command in commands:
            if command.relation in engine.database.schema:
                engine.apply(command)
        result |= engine.result_set()
    return result


@pytest.mark.parametrize("seed", range(8))
def test_batched_session_matches_per_command_recompute(seed):
    rng = random.Random(seed)
    commands = churny_stream(rng, rounds=120)

    session = Session()
    cq_view = session.view("cq", VIEW_CQ)
    ucq_view = session.view("ucq", VIEW_UCQ_TEXT)

    # Apply in a handful of batches (transaction boundaries shouldn't
    # matter either) while the baseline replays command-by-command.
    chunk = max(1, len(commands) // 3)
    for start in range(0, len(commands), chunk):
        with session.batch() as batch:
            batch.apply_all(commands[start : start + chunk])
        assert batch.stats["net"] <= batch.stats["buffered"]

    baseline_cq = RecomputeEngine(VIEW_CQ)
    for command in commands:
        if command.relation in baseline_cq.database.schema:
            baseline_cq.apply(command)

    assert cq_view.result_set() == baseline_cq.result_set()
    assert cq_view.count() == baseline_cq.count()
    assert ucq_view.result_set() == recompute_union_truth(commands)
    assert ucq_view.count() == len(recompute_union_truth(commands))


@pytest.mark.parametrize("seed", range(4))
def test_single_batch_matches_per_command_session(seed):
    rng = random.Random(1000 + seed)
    commands = churny_stream(rng, rounds=150, domain=3)

    def build_session():
        session = Session()
        view = session.view("v", VIEW_CQ)
        session.view("t", parse_query("W(x, y) :- T(x, y)"))
        return session, view

    batched, batched_view = build_session()
    with batched.batch() as batch:
        batch.apply_all(commands)

    sequential, sequential_view = build_session()
    sequential.apply_all(commands)

    assert batched_view.result_set() == sequential_view.result_set()
    for relation in SCHEMA:
        assert batched.rows(relation) == sequential.rows(relation)

"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestClassifyCommand:
    def test_q_hierarchical_query(self, capsys):
        status = main(["classify", "Q(x, y) :- E(x, y), T(y)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "q-hierarchical:   True" in out

    def test_hard_query_shows_witness(self, capsys):
        status = main(["classify", "Q(x) :- E(x, y), T(y)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "q-hierarchical:   False" in out
        assert "condition (ii)" in out
        assert "hard" in out

    def test_core_shown_when_it_folds(self, capsys):
        main(["classify", "Q() :- E(x, x), E(x, y), E(y, y)"])
        out = capsys.readouterr().out
        assert "homomorphic core:" in out

    def test_syntax_error_exit_code(self, capsys):
        status = main(["classify", "Q("])
        err = capsys.readouterr().err
        assert status == 2
        assert "error:" in err


class TestQTreeCommand:
    def test_prints_tree(self, capsys):
        status = main(["qtree", "Q(x, y) :- R(x, y), S(y)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "rep:" in out
        assert "└─" in out

    def test_failure_prints_reason(self, capsys):
        status = main(["qtree", "Q(x, y) :- S(x), E(x, y), T(y)"])
        out = capsys.readouterr().out
        assert status == 1
        assert "no q-tree" in out
        assert "condition (i)" in out

    def test_multi_component(self, capsys):
        status = main(["qtree", "Q(x, u) :- R(x), U(u)"])
        out = capsys.readouterr().out
        assert status == 0
        assert out.count("component") == 2


class TestPlanCommand:
    def test_q_hierarchical_query_plans_theorem_32(self, capsys):
        status = main(["plan", "Q(x, y) :- E(x, y), T(y)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "engine: qhierarchical (auto-selected)" in out
        assert "Theorem 3.2" in out

    def test_hard_query_plans_fallback_with_witness(self, capsys):
        status = main(["plan", "Q(x) :- E(x, y), T(y)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "engine: delta_ivm (auto-selected)" in out
        assert "condition (ii)" in out

    def test_ucq_plans_union_engine(self, capsys):
        status = main(["plan", "Q(x) :- R(x); Q(x) :- S(x)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "engine: ucq_union (auto-selected)" in out
        assert "kind:   ucq" in out

    def test_forced_engine(self, capsys):
        status = main(["plan", "--engine", "recompute", "Q(x) :- R(x)"])
        out = capsys.readouterr().out
        assert status == 0
        assert "engine: recompute (forced by caller)" in out

    def test_ucq_with_hard_disjunct_exits_2(self, capsys):
        status = main(
            ["plan", "Q(x, y) :- S(x), E(x, y), T(y); Q(x, y) :- W(x, y)"]
        )
        err = capsys.readouterr().err
        assert status == 2
        assert "not q-hierarchical" in err


class TestDemoCommand:
    def test_demo_reproduces_counts(self, capsys):
        status = main(["demo"])
        out = capsys.readouterr().out
        assert status == 0
        assert "23 (paper: 23)" in out
        assert "38 (paper: 38)" in out

"""Differential tests for the compiled update-plan layer.

The compiled path (generated runners, zero-aware incremental counters,
bulk loaders + finalizers) must be observationally identical to the
seed reference implementation (``compiled=False``): same ``snapshot()``
state, same count/answer/enumerate/contains, across random effective
update streams and bulk loads.  The reference path doubles as the
oracle because it is the literal rendering of Section 6.4 that the
seed test-suite (Figure 3, brute-force invariants) already pins down.
"""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.plans import loader_fuses_leaf, plan_summary
from repro.core.structure import ComponentStructure
from repro.core.validation import check_engine
from repro.cq import zoo
from repro.cq.analysis import find_violation
from repro.errors import EngineStateError
from repro.storage.database import Database
from repro.workloads.distributions import UniformDomain
from repro.workloads.streams import insert_only_stream, mixed_stream

QH_QUERIES = [
    query
    for query in zoo.PAPER_QUERIES.values()
    if find_violation(query) is None
] + [
    zoo.star_query(3, free_leaves=3),
    zoo.star_query(4, free_leaves=0),
]


def snapshots(engine) -> list:
    return [structure.snapshot() for structure in engine.structures]


def build_database(query, commands) -> Database:
    database = Database.empty_like(query)
    for command in commands:
        database.insert(command.relation, command.row)
    return database


@pytest.mark.parametrize("query", QH_QUERIES, ids=lambda q: q.name)
class TestCompiledVsReference:
    def test_random_stream_identical_state(self, query):
        rng = random.Random(101)
        stream = mixed_stream(rng, query, 1500, domain=UniformDomain(25))
        compiled = QHierarchicalEngine(query, compiled=True)
        reference = QHierarchicalEngine(query, compiled=False)
        for i, command in enumerate(stream):
            assert compiled.apply(command) == reference.apply(command)
            if i % 500 == 499:  # periodic deep checks along the stream
                assert snapshots(compiled) == snapshots(reference)
        assert snapshots(compiled) == snapshots(reference)
        assert compiled.count() == reference.count()
        assert compiled.answer() == reference.answer()
        assert compiled.result_set() == reference.result_set()

    def test_random_stream_invariants_hold(self, query):
        rng = random.Random(57)
        stream = mixed_stream(rng, query, 800, domain=UniformDomain(15))
        engine = QHierarchicalEngine(query, compiled=True)
        for command in stream:
            engine.apply(command)
        report = check_engine(engine)
        assert report.ok, str(report)

    def test_contains_agrees_along_stream(self, query):
        rng = random.Random(33)
        stream = mixed_stream(rng, query, 600, domain=UniformDomain(10))
        compiled = QHierarchicalEngine(query, compiled=True)
        reference = QHierarchicalEngine(query, compiled=False)
        for command in stream:
            compiled.apply(command)
            reference.apply(command)
        result = compiled.result_set()
        for row in list(result)[:50]:
            assert compiled.contains(row)
            assert reference.contains(row)
        arity = len(query.free)
        for _ in range(50):
            probe = tuple(rng.randrange(20) for _ in range(arity))
            assert compiled.contains(probe) == reference.contains(probe)

    def test_bulk_load_matches_replay_byte_identical(self, query):
        rng = random.Random(7)
        commands = insert_only_stream(rng, query, 1200, domain=UniformDomain(20))
        database = build_database(query, commands)
        bulk = QHierarchicalEngine(query, database, compiled=True)
        replay = QHierarchicalEngine(query, database, compiled=False)
        assert snapshots(bulk) == snapshots(replay)
        assert bulk.count() == replay.count()
        assert bulk.result_set() == replay.result_set()
        assert check_engine(bulk).ok

    def test_updates_after_bulk_load(self, query):
        rng = random.Random(13)
        commands = insert_only_stream(rng, query, 600, domain=UniformDomain(12))
        database = build_database(query, commands)
        bulk = QHierarchicalEngine(query, database, compiled=True)
        replay = QHierarchicalEngine(query, database, compiled=False)
        for command in mixed_stream(rng, query, 600, domain=UniformDomain(12)):
            assert bulk.apply(command) == replay.apply(command)
        assert snapshots(bulk) == snapshots(replay)
        assert check_engine(bulk).ok

    def test_delete_everything_returns_to_pristine(self, query):
        rng = random.Random(3)
        commands = insert_only_stream(rng, query, 300, domain=UniformDomain(8))
        database = build_database(query, commands)
        engine = QHierarchicalEngine(query, database, compiled=True)
        for relation in database.relations():
            for row in relation.rows:
                engine.delete(relation.name, row)
        assert engine.count() == 0
        assert not engine.answer()
        assert engine.item_count() == 0


class TestPlanCompilation:
    def test_plans_cover_every_atom(self):
        for query in QH_QUERIES:
            engine = QHierarchicalEngine(query)
            for structure in engine.structures:
                assert len(structure.plans) == len(structure.query.atoms)
                for index, plan in enumerate(structure.plans):
                    assert plan.atom_index == index
                    assert plan.relation == structure.query.atoms[index].relation
                    # extract must lay the row out in root-path order
                    assert len(plan.extract) == len(plan.path)

    def test_eq_checks_capture_repeated_variables(self):
        engine = QHierarchicalEngine(zoo.FIGURE_1)
        [structure] = engine.structures
        # R(x4, x1, x2, x1): positions 1 and 3 carry the same variable.
        assert (1, 3) in structure.plans[1].eq

    def test_eq_mismatch_is_structural_noop(self):
        from repro.cq.parser import parse_query

        query = parse_query("Q() :- R(x, y, x)")
        structure = ComponentStructure(query)
        before = structure.snapshot()
        structure.apply(True, "R", (1, 2, 9))  # x would need 1 and 9
        assert structure.snapshot() == before
        structure.apply(True, "R", (1, 2, 1))
        assert structure.answer()

    def test_runner_sources_exposed(self):
        engine = QHierarchicalEngine(zoo.E_T_QF)
        [structure] = engine.structures
        for plan in structure.plans:
            assert "def _runner" in plan.runner_source

    def test_plan_summary_shape(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        [structure] = engine.structures
        summary = plan_summary(structure.plans)
        assert summary["atom_plans"] == 5
        assert summary["max_path_depth"] == 3
        assert summary["plans_per_relation"] == {"R": 2, "E": 2, "S": 1}

    def test_engine_plan_stats(self):
        engine = QHierarchicalEngine(zoo.E_T_QF)
        stats = engine.plan_stats()
        assert stats["compiled"] is True
        assert stats["components"] == 1
        assert stats["atom_plans"] == 2
        assert stats["dispatch_width"] == {"E": 1, "T": 1}

    def test_loader_fusion_only_for_exclusive_leaves(self):
        engine = QHierarchicalEngine(zoo.E_T_QF)
        [structure] = engine.structures
        fused = {
            plan.relation: loader_fuses_leaf(plan) for plan in structure.plans
        }
        assert fused == {"E": True, "T": False}


class TestBulkLoadGuards:
    def test_bulk_load_requires_pristine_structure(self):
        structure = ComponentStructure(zoo.E_T_QF)
        structure.apply(True, "E", (1, 2))
        with pytest.raises(EngineStateError):
            structure.bulk_load({"E": [(3, 4)]})

    def test_bulk_load_direct_on_structure(self):
        structure = ComponentStructure(zoo.E_T_QF)
        structure.bulk_load({"E": [(1, 5), (2, 5)], "T": [(5,)]})
        assert structure.count() == 2
        assert sorted(structure.enumerate()) == [(1, 5), (2, 5)]

    def test_compiled_flag_round_trip(self):
        assert ComponentStructure(zoo.E_T_QF, compiled=True).compiled
        assert not ComponentStructure(zoo.E_T_QF, compiled=False).compiled


class TestPreloadParity:
    def test_extra_empty_relation_accepted_like_replay(self):
        from repro.storage.database import Schema

        database = Database(Schema({"E": 2, "T": 1, "UNRELATED": 2}))
        database.insert("E", (1, 2))
        database.insert("T", (2,))
        bulk = QHierarchicalEngine(zoo.E_T_QF, database, compiled=True)
        replay = QHierarchicalEngine(zoo.E_T_QF, database, compiled=False)
        assert bulk.count() == replay.count() == 1

    def test_populated_unknown_relation_raises_in_both_modes(self):
        from repro.errors import SchemaError
        from repro.storage.database import Schema

        database = Database(Schema({"E": 2, "T": 1, "UNRELATED": 2}))
        database.insert("UNRELATED", (1, 1))
        for compiled in (True, False):
            with pytest.raises(SchemaError):
                QHierarchicalEngine(zoo.E_T_QF, database, compiled=compiled)


class TestBucketViewLiveness:
    def test_view_survives_bucket_delete_and_recreate(self):
        from repro.storage.indexes import HashIndex

        index = HashIndex((0,), [(1, "a")])
        view = index.probe((1,))
        index.remove((1, "a"))  # bucket emptied and pruned
        assert len(view) == 0
        index.add((1, "z"))  # fresh bucket under the same key
        assert set(view) == {(1, "z")}
        assert len(index) == 1  # O(1) size counter stays exact


class TestSessionExplainStats:
    def test_view_explain_carries_plan_stats(self):
        from repro.api.session import Session

        session = Session()
        view = session.view("v", "Q(x, y) :- E(x, y), T(y)")
        plan = view.explain()
        assert plan.stats is not None
        assert plan.stats["atom_plans"] == 2
        assert "plan stats:" in plan.render()

    def test_delta_ivm_reports_arms(self):
        from repro.api.session import Session

        session = Session()
        view = session.view("hard", "Q(x, y) :- S(x), E(x, y), T(y)")
        assert view.engine_name == "delta_ivm"
        stats = view.explain().stats
        assert stats["delta_arms"] == 3

"""Tests for homomorphisms, cores and the Π permutation group."""

import pytest

from repro.cq import zoo
from repro.cq.homomorphism import (
    all_homomorphisms,
    core,
    find_homomorphism,
    free_permutations,
    has_homomorphism,
    is_core,
    is_equivalent,
)
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.errors import QueryStructureError


class TestHomomorphisms:
    def test_identity(self):
        q = zoo.S_E_T
        hom = find_homomorphism(q, q)
        assert hom is not None
        assert hom["x"] == "x" and hom["y"] == "y"

    def test_free_variables_fixed_positionally(self):
        source = parse_query("Q(x) :- R(x, y)")
        target = parse_query("Q(u) :- R(u, w)")
        hom = find_homomorphism(source, target)
        assert hom == {"x": "u", "y": "w"}

    def test_arity_mismatch_raises(self):
        with pytest.raises(QueryStructureError):
            find_homomorphism(zoo.S_E_T, zoo.S_E_T_BOOLEAN)

    def test_quantified_can_fold(self):
        source = parse_query("Q() :- E(x, y), E(y, z)")
        target = parse_query("Q() :- E(u, u)")
        assert has_homomorphism(source, target)
        assert not has_homomorphism(target, source)

    def test_all_homomorphisms_count(self):
        source = parse_query("Q() :- E(x, y)")
        target = parse_query("Q() :- E(a, b), E(b, c)")
        homs = list(all_homomorphisms(source, target))
        assert len(homs) == 2

    def test_fixed_override(self):
        q = parse_query("Q() :- E(x, y), E(y, x)")
        assert has_homomorphism(q, q, fixed={"x": "y"})

    def test_relation_mismatch(self):
        assert not has_homomorphism(
            parse_query("Q() :- R(x)"), parse_query("Q() :- S(x)")
        )


class TestCore:
    def test_self_join_free_is_own_core(self):
        assert core(zoo.S_E_T) == zoo.S_E_T
        assert is_core(zoo.S_E_T)

    def test_loop_triangle_core(self):
        # Section 3: core of ∃x∃y (Exx ∧ Exy ∧ Eyy) is ∃x Exx.
        folded = core(zoo.LOOP_TRIANGLE)
        assert len(folded.atoms) == 1
        atom = folded.atoms[0]
        assert atom.relation == "E" and atom.args[0] == atom.args[1]

    def test_phi1_is_its_own_core(self):
        # Free variables x, y block the folding: ϕ1 is a hard core.
        assert is_core(zoo.PHI_1)

    def test_hierarchical_rre_core_folds_primes(self):
        folded = core(zoo.HIERARCHICAL_RRE)
        assert len(folded.atoms) == 2
        assert {a.relation for a in folded.atoms} == {"R", "E"}

    def test_core_preserves_free_tuple(self):
        q = parse_query("Q(x) :- E(x, y), E(x, z)")
        folded = core(q)
        assert folded.free == ("x",)
        assert len(folded.atoms) == 1

    def test_core_is_equivalent_to_original(self):
        for query in [zoo.LOOP_TRIANGLE, zoo.HIERARCHICAL_RRE, zoo.PHI_2]:
            folded = core(query)
            assert is_equivalent(query, folded)

    def test_core_idempotent(self):
        for query in zoo.PAPER_QUERIES.values():
            folded = core(query)
            assert core(folded) == folded

    def test_path_with_fold(self):
        # E(x,y) ∧ E(y,z) folds onto a loop only if one exists; over a
        # pure path pattern the core keeps both atoms.
        q = parse_query("Q() :- E(x, y), E(y, z)")
        assert len(core(q).atoms) == 2


class TestFreePermutations:
    def test_identity_always_present(self):
        for query in [zoo.S_E_T, zoo.PHI_1, zoo.EXAMPLE_6_1]:
            perms = free_permutations(query)
            assert tuple(range(query.arity)) in perms

    def test_symmetric_query_has_swap(self):
        q = parse_query("Q(x, y) :- E(x, y), E(y, x)")
        perms = free_permutations(q)
        assert (1, 0) in perms
        assert len(perms) == 2

    def test_asymmetric_query_identity_only(self):
        q = parse_query("Q(x, y) :- S(x), E(x, y)")
        assert free_permutations(q) == [(0, 1)]

    def test_boolean_query_single_empty_permutation(self):
        assert free_permutations(zoo.S_E_T_BOOLEAN) == [()]

    def test_three_way_symmetry(self):
        q = parse_query("Q(x, y, z) :- E(x, y), E(y, z), E(z, x)")
        perms = free_permutations(q)
        # Cyclic rotations extend to endomorphisms; the full group here
        # is the 3 rotations (transpositions reverse edge direction).
        assert len(perms) == 3

"""Tests for the O(1) membership primitive (engine.contains)."""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.cq import zoo
from repro.cq.generators import random_q_hierarchical_query
from repro.cq.parser import parse_query
from repro.eval_static.naive import evaluate as evaluate_naive
from tests.conftest import example_6_1_database, random_stream


class TestContains:
    def test_example_6_1_members(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        result = evaluate_naive(zoo.EXAMPLE_6_1, d0)
        for row in result:
            assert engine.contains(row)

    def test_example_6_1_non_members(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        assert not engine.contains(("a", "e", "a", "e", "zzz"))
        assert not engine.contains(("b", "p", "a", "d", "a"))  # unfit y=p
        assert not engine.contains(("nope",) * 5)

    def test_wrong_arity(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        assert not engine.contains(("a",))
        assert not engine.contains(())

    def test_boolean_query(self):
        engine = QHierarchicalEngine(zoo.E_T_BOOLEAN)
        assert not engine.contains(())
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        assert engine.contains(())

    def test_tracks_updates(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        target = ("b", "p", "a", "d", "a")
        assert not engine.contains(target)
        engine.insert("E", ("b", "p"))
        assert engine.contains(target)
        engine.delete("E", ("b", "p"))
        assert not engine.contains(target)

    def test_disconnected_query(self):
        q = parse_query("Q(x, u) :- R(x), U(u)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (1,))
        engine.insert("U", (7,))
        assert engine.contains((1, 7))
        assert not engine.contains((1, 8))
        assert not engine.contains((2, 7))

    def test_boolean_component_gates_membership(self):
        q = parse_query("Q(x) :- R(x), S(u)")
        engine = QHierarchicalEngine(q)
        engine.insert("R", (1,))
        assert not engine.contains((1,))  # S component empty
        engine.insert("S", (5,))
        assert engine.contains((1,))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_enumeration_exactly(self, seed):
        rng = random.Random(seed)
        query = random_q_hierarchical_query(rng)
        engine = QHierarchicalEngine(query)
        for command in random_stream(query, rng, rounds=60, domain=5):
            engine.apply(command)
        result = engine.result_set()
        for row in result:
            assert engine.contains(row)
        # Random non-members (perturb one coordinate).
        for row in list(result)[:10]:
            if not row:
                continue
            fake = ("missing-value",) + row[1:]
            assert engine.contains(fake) == (fake in result)

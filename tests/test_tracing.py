"""Cross-process tracing: one logical RPC, one parent/child span pair.

The client stamps every RPC attempt with a ``_trace`` context that
rides inside the request frame; the worker opens a child span under
it.  These tests pin the properties that make the span log usable for
attribution: the pairing survives multiplexed out-of-order replies,
blind read retries share a trace while each attempt keeps its own
span, a kill -9 recovery leaves a ``recovery`` span carrying the
journal epoch, and the crash-consistent stats/metrics folds never let
cumulative traffic shrink because a worker died.
"""

import threading
import time

import pytest

from repro.serve.cluster import ShardCluster
from repro.serve.faults import Fault, FaultPlan
from repro.serve.journal import CommandJournal
from repro.serve.supervisor import Supervisor
from repro.storage.updates import insert

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def cluster():
    with ShardCluster(workers=2) as deployment:
        yield deployment


@pytest.fixture(scope="module")
def client(cluster):
    with cluster.client() as facade:
        yield facade


def _await_death(cluster, index, timeout=5.0):
    deadline = time.monotonic() + timeout
    while cluster.workers[index].alive() and time.monotonic() < deadline:
        time.sleep(0.02)


def _worker_spans(metrics_dump):
    spans = []
    for entry in metrics_dump["per_worker"].values():
        if entry is not None:
            spans.extend(entry["spans"])
    return [span for span in spans if span["name"].startswith("worker:")]


# ---------------------------------------------------------------------------
# the differential: every RPC is a cross-process parent/child pair
# ---------------------------------------------------------------------------


def test_every_rpc_op_shows_up_as_a_cross_process_pair(client):
    client.view("tr", "V(x, y) :- TR(x, y)")
    client.insert("TR", (1, 2))
    client.delete("TR", (9, 9))
    client.count("tr")
    cursor = client.open_cursor("tr")
    client.fetch(cursor, 8)
    client.close_cursor(cursor)
    # A multi-worker batch runs 2PC: prepare/ping/commit legs.
    client.view("ts", "W(x) :- TS(x)")
    client.batch(
        [insert("TR", (i, i)) for i in range(3)]
        + [insert("TS", (i,)) for i in range(3)]
    )

    dump = client.metrics()
    client_spans = {
        span["span_id"]: span
        for span in dump["spans"]
        if span["name"].startswith("rpc:")
    }
    worker_spans = _worker_spans(dump)
    assert worker_spans

    driven = {
        "register_view",
        "insert",
        "delete",
        "count",
        "open_cursor",
        "fetch",
        "close_cursor",
    }
    covered = set()
    for span in worker_spans:
        # Only connection hellos arrive without a client span context;
        # every real op must link back across the process boundary.
        assert span["parent_id"] is not None, span
        parent = client_spans[span["parent_id"]]
        assert parent["trace_id"] == span["trace_id"]
        assert parent["name"] == span["name"].replace("worker:", "rpc:")
        assert span["attrs"]["op"] == parent["attrs"]["op"]
        covered.add(span["attrs"]["op"])
    assert driven <= covered

    # The 2PC legs each got their own span under one shared trace.
    legs = [
        span
        for span in client_spans.values()
        if span["attrs"]["op"] in ("batch_prepare", "batch_commit")
    ]
    assert len(legs) >= 4  # two workers x (prepare + commit)
    assert len({span["trace_id"] for span in legs}) == 1
    assert len({span["span_id"] for span in legs}) == len(legs)


# ---------------------------------------------------------------------------
# mux out-of-order replies
# ---------------------------------------------------------------------------


def test_spans_survive_mux_out_of_order_replies():
    plan = FaultPlan(
        faults=(
            # Frame 4 on worker 0's request channel = the reply to the
            # first count after hello(1), register_view(2), insert(3) —
            # held 0.6s, so later counts on the same mux lane overtake.
            Fault(
                action="delay",
                frame=4,
                worker=0,
                channel="request",
                delay=0.6,
            ),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(faults=plan) as facade:
            facade.view("oo", "V(x) :- OO(x)")
            facade.insert("OO", (1,))
            slow_result = {}

            def slow_read():
                slow_result["count"] = facade.count("oo")

            thread = threading.Thread(target=slow_read)
            thread.start()
            time.sleep(0.1)  # the delayed request is in flight
            fast = [facade.count("oo") for _ in range(3)]
            thread.join()
            assert slow_result["count"] == 1 and fast == [1, 1, 1]

            counts = [
                span
                for span in facade.spans.snapshot()
                if span["name"] == "rpc:count"
            ]
            assert len(counts) == 4
            for span in counts:
                assert span["error"] is None
                assert span["duration_ms"] is not None
            # Four distinct traces: the replies re-matched by mux id,
            # not by arrival order.
            assert len({span["trace_id"] for span in counts}) == 4
            delayed = max(counts, key=lambda span: span["duration_ms"])
            assert delayed["duration_ms"] >= 500.0
            # The held span crossed REPRO_SLOW_OP_MS (default 100ms)
            # and survives in the dedicated slow ring.
            assert any(
                span["name"] == "rpc:count"
                and span["duration_ms"] >= 500.0
                for span in facade.spans.slow_snapshot()
            )

            # Worker-side children still pair one-to-one with exactly
            # the attempt that carried them.
            dump = facade.metrics()
            children = {
                span["parent_id"]
                for span in _worker_spans(dump)
                if span["attrs"]["op"] == "count"
            }
            for span in counts:
                assert span["span_id"] in children


# ---------------------------------------------------------------------------
# blind read retries
# ---------------------------------------------------------------------------


def test_blind_read_retry_shares_trace_with_distinct_attempt_spans():
    plan = FaultPlan(
        faults=(
            # Drop the reply to the first count: the mux deadline fires
            # and the retry-safe read is blindly re-sent.
            Fault(action="drop", frame=4, worker=0, channel="request"),
        )
    )
    with ShardCluster(workers=2) as deployment:
        with deployment.client(
            request_timeout=0.5, retry_budget=2, faults=plan
        ) as facade:
            facade.view("rt", "V(x) :- RT(x)")
            facade.insert("RT", (1,))
            assert facade.count("rt") == 1
            attempts = sorted(
                (
                    span
                    for span in facade.spans.snapshot()
                    if span["name"] == "rpc:count"
                ),
                key=lambda span: span["attrs"]["attempt"],
            )
            assert [span["attrs"]["attempt"] for span in attempts] == [1, 2]
            first, second = attempts
            # One logical read, one trace — but each attempt is its own
            # span, so the timed-out leg stays attributable.
            assert first["trace_id"] == second["trace_id"]
            assert first["span_id"] != second["span_id"]
            assert "DeadlineExceededError" in first["error"]
            assert second["error"] is None


# ---------------------------------------------------------------------------
# kill -9: the recovery span and the crash-consistent folds
# ---------------------------------------------------------------------------


def test_kill9_recovery_span_carries_the_journal_epoch():
    with ShardCluster(workers=2) as deployment:
        journal = CommandJournal()
        with deployment.client(journal=journal) as facade:
            facade.view("rc", "V(x) :- RC(x)")
            facade.insert("RC", (1,))
            victim = facade._worker_of_view("rc")
            supervisor = Supervisor(deployment, facade, journal=journal)
            facade.attach_supervisor(supervisor)
            deployment.kill_worker(victim)
            _await_death(deployment, victim)
            assert supervisor.sweep() == [victim]
            assert facade.result_set("rc") == {(1,)}

            recoveries = [
                span
                for span in facade.spans.snapshot()
                if span["name"] == "recovery"
            ]
            assert len(recoveries) == 1
            span = recoveries[0]
            assert span["error"] is None
            assert span["duration_ms"] > 0
            assert span["attrs"]["worker"] == victim
            assert (
                span["attrs"]["journal_epoch"]
                == supervisor.recoveries[0]["epoch"]
            )
            # The respawned worker answers RPCs with child spans again.
            dump = facade.metrics()
            entry = dump["per_worker"][victim]
            assert entry is not None
            assert any(
                rpc_span["parent_id"] is not None
                for rpc_span in entry["spans"]
            )


def test_stats_fold_never_shrinks_after_kill9():
    with ShardCluster(workers=2) as deployment:
        with deployment.client() as facade:
            facade.view("fa", "V(x) :- FA(x)")
            facade.view("fb", "W(x) :- FB(x)")
            for i in range(6):
                facade.insert("FA", (i,))
                facade.insert("FB", (i,))
            facade.count("fa")
            facade.count("fb")
            before = facade.stats()
            assert before["writes"] >= 12

            victim = facade._worker_of_view("fa")
            deployment.kill_worker(victim)
            _await_death(deployment, victim)
            after = facade.stats()
            assert victim in after["dead_workers"]
            assert after["per_worker"][victim] is None
            # The dead worker's last-known counters fold in: cumulative
            # cluster traffic is monotone across the crash.
            assert after["writes"] >= before["writes"]
            assert after["reads"] >= before["reads"]


def test_metrics_merge_is_monotone_across_kill9():
    with ShardCluster(workers=2) as deployment:
        with deployment.client() as facade:
            facade.view("ma", "V(x) :- MA(x)")
            facade.view("mb", "W(x) :- MB(x)")
            for i in range(5):
                facade.insert("MA", (i,))
                facade.insert("MB", (i,))

            def engine_updates(dump):
                return sum(
                    value
                    for key, value in dump["merged"]["counters"].items()
                    if key.startswith("repro_engine_updates_total")
                )

            first = facade.metrics()
            assert engine_updates(first) == 10

            victim = facade._worker_of_view("ma")
            deployment.kill_worker(victim)
            _await_death(deployment, victim)
            second = facade.metrics()
            assert second["per_worker"][victim] is None
            # The dead incarnation contributes its last scraped
            # snapshot, so cumulative series never move backwards.
            assert second["retired_snapshots"] >= 1
            assert engine_updates(second) >= engine_updates(first)

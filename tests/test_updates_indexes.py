"""Tests for update commands, streams and hash indexes."""

import pytest

from repro.errors import UpdateError
from repro.storage.database import Database
from repro.storage.indexes import HashIndex, IndexPool
from repro.storage.updates import (
    UpdateCommand,
    apply_all,
    delete,
    diff_updates,
    insert,
)


class TestUpdateCommand:
    def test_construction_and_apply(self):
        db = Database.from_dict({"E": [(1, 2)]})
        assert insert("E", (3, 4)).apply_to(db)
        assert delete("E", (1, 2)).apply_to(db)
        assert not delete("E", (9, 9)).apply_to(db)

    def test_invalid_op(self):
        with pytest.raises(UpdateError):
            UpdateCommand("upsert", "E", (1,))

    def test_inverse(self):
        cmd = insert("E", (1, 2))
        assert cmd.inverse() == delete("E", (1, 2))
        assert cmd.inverse().inverse() == cmd

    def test_str(self):
        assert str(insert("E", (1, 2))) == "insert E(1, 2)"

    def test_apply_all_counts_effective(self):
        db = Database.from_dict({"E": [(1, 2)]})
        commands = [insert("E", (1, 2)), insert("E", (3, 4)), delete("E", (5, 6))]
        assert apply_all(db, commands) == 1


class TestDiffUpdates:
    def test_diff_roundtrip(self):
        old = Database.from_dict({"E": [(1, 2), (3, 4)]})
        new = Database.from_dict({"E": [(3, 4), (5, 6)]})
        commands = diff_updates(old, new)
        assert len(commands) == 2
        patched = old.copy()
        apply_all(patched, commands)
        assert patched == new

    def test_diff_empty(self):
        db = Database.from_dict({"E": [(1, 2)]})
        assert diff_updates(db, db.copy()) == []


class TestHashIndex:
    def test_probe(self):
        index = HashIndex([0], [(1, "a"), (1, "b"), (2, "c")])
        assert index.probe((1,)) == {(1, "a"), (1, "b")}
        assert index.probe((3,)) == frozenset()

    def test_add_remove(self):
        index = HashIndex([1])
        index.add((1, "k"))
        index.add((2, "k"))
        assert len(index.probe(("k",))) == 2
        index.remove((1, "k"))
        assert index.probe(("k",)) == {(2, "k")}
        index.remove((2, "k"))
        assert not index.contains_key(("k",))
        assert index.bucket_count() == 0

    def test_multi_column_key(self):
        index = HashIndex([0, 2], [(1, "x", 9), (1, "y", 9)])
        assert len(index.probe((1, 9))) == 2

    def test_empty_columns_single_bucket(self):
        index = HashIndex([], [(1,), (2,)])
        assert len(index.probe(())) == 2

    def test_len(self):
        index = HashIndex([0], [(1,), (2,), (3,)])
        assert len(index) == 3


class TestIndexPool:
    def test_caches_by_columns(self):
        from repro.storage.database import Relation

        rel = Relation("E", 2, [(1, 2), (1, 3)])
        pool = IndexPool(rel)
        first = pool.get([0])
        second = pool.get((0,))
        assert first is second
        assert first.probe((1,)) == {(1, 2), (1, 3)}

    def test_invalidate(self):
        from repro.storage.database import Relation

        rel = Relation("E", 2, [(1, 2)])
        pool = IndexPool(rel)
        old = pool.get([0])
        pool.invalidate()
        assert pool.get([0]) is not old

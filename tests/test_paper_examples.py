"""End-to-end fixtures tied to the paper's printed artefacts.

Everything here mirrors a concrete number, figure or table in the PDF:
if one of these tests fails, the reproduction no longer matches the
paper.
"""

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.qtree import build_q_tree
from repro.core.render import render_q_tree, render_structure
from repro.cq import zoo
from repro.cq.analysis import classify
from tests.conftest import example_6_1_database, feed_example_6_1_sorted


class TestFigure1:
    def test_both_q_trees_exist(self):
        left = build_q_tree(zoo.FIGURE_1, prefer=("x1",))
        right = build_q_tree(zoo.FIGURE_1, prefer=("x2",))
        assert left.root == "x1" and right.root == "x2"

    def test_renders_contain_all_variables(self):
        tree = build_q_tree(zoo.FIGURE_1, prefer=("x1",))
        rendering = render_q_tree(tree)
        for var in ["x1", "x2", "x3", "x4", "x5"]:
            assert var in rendering

    def test_free_variables_form_top_of_tree(self):
        for prefer in [("x1",), ("x2",)]:
            tree = build_q_tree(zoo.FIGURE_1, prefer=prefer)
            assert tree.is_valid()
            for free_var in ["x1", "x2", "x3"]:
                parent = tree.parent[free_var]
                assert parent is None or parent in {"x1", "x2", "x3"}


class TestFigure2:
    def test_annotated_render(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        rendering = render_q_tree(tree, annotate=True)
        assert "rep: {∅}" in rendering  # rep(x) = ∅
        assert "E(x, y)" in rendering
        assert "S(x, y, z)" in rendering


class TestFigure3:
    def test_structure_render_carries_weights(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        rendering = render_structure(engine.structures[0])
        assert "C_start = 23" in rendering
        assert "C=14" in rendering  # item [x='a']
        assert "C=9" in rendering  # item [x='b']
        assert "(unfit)" in rendering  # the weight-0 item [y='p']

    def test_render_after_update(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        engine.insert("E", ("b", "p"))
        rendering = render_structure(engine.structures[0])
        assert "C_start = 38" in rendering
        assert "C=24" in rendering

    def test_hide_unfit(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        rendering = render_structure(
            engine.structures[0], include_unfit=False
        )
        assert "(unfit)" not in rendering


class TestSection3ClassificationTable:
    """The classification facts stated in Sections 1, 3 and 7."""

    def test_dichotomy_table(self):
        expectations = {
            # name: (q_hierarchical, boolean_tractable, counting_tractable)
            "S_E_T": (False, False, False),
            "S_E_T_BOOLEAN": (False, False, False),
            "E_T": (False, True, False),
            "E_T_QF": (True, True, True),
            "E_T_BOOLEAN": (True, True, True),
            "HIERARCHICAL_RRE": (True, True, True),
            "LOOP_TRIANGLE": (False, True, True),
            "PHI_1": (False, True, False),
            "EXAMPLE_6_1": (True, True, True),
        }
        for name, (qh, boolean, counting) in expectations.items():
            verdict = classify(zoo.PAPER_QUERIES[name])
            assert verdict.q_hierarchical is qh, name
            assert verdict.boolean_tractable is boolean, name
            assert verdict.counting_tractable is counting, name

    def test_phi2_open_enumeration_but_hard_counting(self):
        verdict = classify(zoo.PHI_2)
        assert verdict.enumeration_tractable is None  # self-join, open
        assert not verdict.counting_tractable  # Thm 3.5 applies

    def test_database_measures_of_d0(self):
        db = example_6_1_database()
        assert db.cardinality == 20
        # adom = {a, b, c, d, e, f, g, h, p}.
        assert db.active_domain_size == 9

"""Tests for hierarchical / q-hierarchical analysis (Definition 3.1)."""

import pytest

from repro.cq import zoo
from repro.cq.analysis import (
    atoms_map,
    classify,
    find_violation,
    is_hierarchical,
    is_q_hierarchical,
)
from repro.cq.parser import parse_query


class TestAtomsMap:
    def test_indices(self):
        mapping = atoms_map(zoo.S_E_T)
        assert mapping["x"] == {0, 1}  # S(x), E(x,y)
        assert mapping["y"] == {1, 2}  # E(x,y), T(y)


class TestHierarchical:
    def test_s_e_t_not_hierarchical(self):
        # Condition (i) fails on the {S, E, T} pattern — eq. (2).
        assert not is_hierarchical(zoo.S_E_T)
        assert not is_hierarchical(zoo.S_E_T_BOOLEAN)

    def test_e_t_hierarchical(self):
        # atoms(x) ⊆ atoms(y) — eq. (4) is hierarchical.
        assert is_hierarchical(zoo.E_T)

    def test_paper_section3_example(self):
        # ∃x∃y∃z∃y'∃z' (Rxyz ∧ Rxyz' ∧ Exy ∧ Exy') from Section 3.
        assert is_hierarchical(zoo.HIERARCHICAL_RRE)

    def test_loop_triangle_not_hierarchical(self):
        assert not is_hierarchical(zoo.LOOP_TRIANGLE)

    def test_path_hierarchy_threshold(self):
        # Length 2 is still hierarchical (the middle variable dominates
        # both ends); length 3 introduces overlapping incomparable sets.
        assert is_hierarchical(zoo.path_query(2))
        assert not is_hierarchical(zoo.path_query(3))

    def test_star_hierarchical(self):
        assert is_hierarchical(zoo.star_query(3))


class TestQHierarchical:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("S_E_T", False),
            ("S_E_T_BOOLEAN", False),
            ("E_T", False),
            ("E_T_QF", True),
            ("E_T_BOOLEAN", True),
            ("E_T_Y_QUANTIFIED", True),
            ("HIERARCHICAL_RRE", True),
            ("LOOP_TRIANGLE", False),
            ("LOOP_CORE", True),
            ("PHI_1", False),
            ("PHI_2", False),
            ("EXAMPLE_6_1", True),
            ("FIGURE_1", True),
        ],
    )
    def test_paper_zoo(self, name, expected):
        assert is_q_hierarchical(zoo.PAPER_QUERIES[name]) is expected

    def test_boolean_qh_iff_hierarchical(self):
        # Remark after Definition 3.1.
        for query in zoo.PAPER_QUERIES.values():
            boolean = query.boolean_version()
            assert is_q_hierarchical(boolean) == is_hierarchical(boolean)

    def test_et_variants_from_paper_text(self):
        # "all other versions ... are q-hierarchical" (Section 3).
        variants = [
            parse_query("Q(y) :- E(x, y), T(y)"),
            parse_query("Q(x, y) :- E(x, y), T(y)"),
            parse_query("Q() :- E(x, y), T(y)"),
        ]
        for variant in variants:
            assert is_q_hierarchical(variant)

    def test_star_with_quantified_center_and_free_leaf(self):
        query = zoo.star_query(2, free_center=False, free_leaves=1)
        assert not is_q_hierarchical(query)

    def test_disconnected_query_componentwise(self):
        query = parse_query("Q(x) :- R(x), S(u, v), T(v)")
        # R-component fine; S-T component is ∃u∃v Suv ∧ Tv: hierarchical?
        # atoms(u) = {S}, atoms(v) = {S, T}: u ⊂ v fine; all quantified.
        assert is_q_hierarchical(query)


class TestViolationWitnesses:
    def test_condition_i_witness_shape(self):
        violation = find_violation(zoo.S_E_T)
        assert violation is not None
        assert violation.kind == "condition_i"
        x, y = violation.x, violation.y
        assert {x, y} == {"x", "y"}
        assert violation.psi_x.variables & {x, y} == {x}
        assert violation.psi_xy.variables >= {x, y}
        assert violation.psi_y.variables & {x, y} == {y}
        assert "condition (i)" in violation.describe()

    def test_condition_ii_witness_shape(self):
        violation = find_violation(zoo.E_T)
        assert violation is not None
        assert violation.kind == "condition_ii"
        assert violation.x == "x"  # free
        assert violation.y == "y"  # quantified
        assert violation.psi_x is None
        assert violation.psi_xy.variables >= {"x", "y"}
        assert violation.psi_y.variables & {"x", "y"} == {"y"}
        assert "condition (ii)" in violation.describe()

    def test_no_witness_for_q_hierarchical(self):
        assert find_violation(zoo.EXAMPLE_6_1) is None

    def test_condition_i_preferred(self):
        # S_E_T (non-Boolean) violates (i); witness should say so even
        # though free-variable structure also matters.
        assert find_violation(zoo.S_E_T).kind == "condition_i"


class TestClassify:
    def test_loop_triangle_boolean_easy_counting_core(self):
        verdict = classify(zoo.LOOP_TRIANGLE)
        # Core is ∃x Exx: q-hierarchical, so Boolean answering is easy.
        assert verdict.core_q_hierarchical
        assert verdict.boolean_tractable
        assert verdict.counting_tractable
        assert not verdict.q_hierarchical

    def test_phi1_all_hard(self):
        verdict = classify(zoo.PHI_1)
        # ϕ1 is a non-q-hierarchical core (Section 5.4 discussion).
        assert not verdict.core_q_hierarchical
        assert not verdict.counting_tractable
        # Enumeration dichotomy is open for self-joins: None.
        assert verdict.enumeration_tractable is None

    def test_s_e_t_enumeration_hard(self):
        verdict = classify(zoo.S_E_T)
        assert verdict.self_join_free
        assert verdict.enumeration_tractable is False

    def test_example_6_1_fully_tractable(self):
        verdict = classify(zoo.EXAMPLE_6_1)
        assert verdict.q_hierarchical
        assert verdict.enumeration_tractable is True
        assert verdict.counting_tractable
        assert verdict.boolean_tractable

    def test_e_t_boolean_easy_counting_hard(self):
        # The paper's key asymmetry: ∃x ϕE-T is q-hierarchical, so the
        # Boolean version is easy, but counting ϕE-T itself is OV-hard.
        verdict = classify(zoo.E_T)
        assert verdict.boolean_tractable
        assert not verdict.counting_tractable
        assert verdict.enumeration_tractable is False

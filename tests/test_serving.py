"""The serving layer: cursors, delta subscriptions, dispatcher.

Three invariant families, all differential:

* **delta correctness** — for every engine kind,
  ``apply_with_delta`` must report exactly
  ``result_set(after) − result_set(before)`` / the reverse, on
  randomized effective streams (the O(δ) touched-path derivation of the
  q-hierarchical engine versus the brute-force diff oracle);
* **cursor semantics** — interleaving fetch/update/fetch yields either
  a safe resume (update elsewhere), a precise
  :class:`CursorInvalidatedError` (plain cursor), or the pinned
  pre-update result (snapshot cursor) — never silent garbage;
* **bound enumeration** — pinned q-tree prefixes and filtered bindings
  agree with brute-force filtering of the full result, and the
  pointer-walking Algorithm 1 agrees with the generator rendering.

Plus the bulk-preprocessing satellites: merged same-relation loaders
and the union / delta-IVM bulk preloads must be state-identical to
their replay baselines.
"""

import itertools
import random
import threading

import pytest

from conftest import random_stream
from repro.api import Session
from repro.core.engine import QHierarchicalEngine
from repro.core.enumeration import algorithm1
from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.errors import (
    CursorInvalidatedError,
    EngineStateError,
    QueryStructureError,
)
from repro.extensions.ucq import UnionEngine, parse_union
from repro.ivm.delta import DeltaIVMEngine
from repro.ivm.recompute import RecomputeEngine
from repro.serve import Server
from repro.storage.database import Database
from repro.storage.updates import delete, insert
from repro.workloads.distributions import UniformDomain
from repro.workloads.streams import insert_only_stream

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

UNION_TEXT = "A(x, y) :- R(x, y), S(x)\nA(x, y) :- T(x, y)"


def union_stream(union, rng, rounds=200, domain=6):
    relations = [(r, union.arity_of(r)) for r in union.relations]
    live = set()
    commands = []
    for _ in range(rounds):
        name, arity = rng.choice(relations)
        candidates = sorted(t for t in live if t[0] == name)
        if candidates and rng.random() < 0.35:
            chosen = rng.choice(candidates)
            live.discard(chosen)
            commands.append(delete(name, chosen[1]))
        else:
            row = tuple(rng.randint(1, domain) for _ in range(arity))
            live.add((name, row))
            commands.append(insert(name, row))
    return commands


# ---------------------------------------------------------------------------
# apply_with_delta ≡ result_set diff (every engine kind)
# ---------------------------------------------------------------------------

DELTA_QUERIES = [
    "E_T_QF",
    "E_T_BOOLEAN",
    "E_T_Y_QUANTIFIED",
    "EXAMPLE_6_1",
    "HIERARCHICAL_RRE",
    "FIGURE_1",
]


@pytest.mark.parametrize("name", DELTA_QUERIES)
@pytest.mark.parametrize("compiled", [True, False])
def test_qhierarchical_delta_matches_result_diff(name, compiled):
    query = zoo.PAPER_QUERIES[name]
    engine = QHierarchicalEngine(query, compiled=compiled)
    oracle = QHierarchicalEngine(query)
    rng = random.Random(hash(name) % 1000 + compiled)
    for command in random_stream(query, rng, rounds=200, domain=6):
        before = oracle.result_set()
        oracle.apply(command)
        after = oracle.result_set()
        added, removed = engine.apply_with_delta(command)
        assert set(added) == after - before
        assert set(removed) == before - after
        assert len(set(added)) == len(added)  # duplicate-free
        assert len(set(removed)) == len(removed)
        assert not (added and removed)  # single-tuple commands are monotone


def test_disconnected_query_delta_crosses_components():
    query = parse_query("Q(x, z) :- R(x), S(z), T(w)")
    engine = QHierarchicalEngine(query)
    oracle = RecomputeEngine(query)
    rng = random.Random(3)
    for command in random_stream(query, rng, rounds=250, domain=5):
        before = oracle.result_set()
        oracle.apply(command)
        after = oracle.result_set()
        added, removed = engine.apply_with_delta(command)
        assert set(added) == after - before
        assert set(removed) == before - after


@pytest.mark.parametrize("seed", range(3))
def test_union_delta_matches_result_diff(seed):
    union = parse_union(UNION_TEXT)
    engine = UnionEngine(union)
    oracle = UnionEngine(union)
    rng = random.Random(seed)
    for command in union_stream(union, rng, rounds=250):
        before = oracle.result_set()
        oracle.apply(command)
        after = oracle.result_set()
        added, removed = engine.apply_with_delta(command)
        assert set(added) == after - before
        assert set(removed) == before - after


@pytest.mark.parametrize("engine_cls", [DeltaIVMEngine, RecomputeEngine])
def test_fallback_engine_delta_matches_result_diff(engine_cls):
    query = zoo.S_E_T  # not q-hierarchical: the fallback regime
    engine = engine_cls(query)
    oracle = RecomputeEngine(query)
    rng = random.Random(7)
    for command in random_stream(query, rng, rounds=200, domain=5):
        before = oracle.result_set()
        oracle.apply(command)
        after = oracle.result_set()
        added, removed = engine.apply_with_delta(command)
        assert set(added) == after - before
        assert set(removed) == before - after


def test_delta_noop_commands_report_empty():
    engine = QHierarchicalEngine(zoo.E_T_QF)
    assert engine.apply_with_delta(insert("T", (2,))) == ((), ())
    assert engine.apply_with_delta(insert("E", (1, 2))) == (((1, 2),), ())
    assert engine.apply_with_delta(insert("E", (1, 2))) == ((), ())  # dup
    assert engine.apply_with_delta(delete("E", (9, 9))) == ((), ())  # absent
    epoch = engine.epoch
    assert engine.apply_with_delta(insert("E", (1, 2))) == ((), ())
    assert engine.epoch == epoch  # no-ops do not bump the epoch


# ---------------------------------------------------------------------------
# subscriptions through the session (replay ≡ result_set)
# ---------------------------------------------------------------------------

SUBSCRIPTION_VIEWS = [
    ("qh", "V(x, y) :- E(x, y), T(y)", "auto"),  # q-hierarchical
    ("union", "V(x, y) :- R(x, y), S(x); V(x, y) :- T(x, y)", "auto"),
    ("ivm", "V(x, y) :- S(x), E(x, y), T(y)", "auto"),  # delta-IVM fallback
    ("rec", "V(x, y) :- S(x), E(x, y), T(y)", "recompute"),
]


@pytest.mark.parametrize("name,text,engine", SUBSCRIPTION_VIEWS)
@pytest.mark.parametrize("seed", range(3))
def test_subscription_deltas_reconstruct_result_set(name, text, engine, seed):
    session = Session()
    view = session.view(name, text, engine=engine)
    subscription = view.subscribe()
    query = view.query
    rng = random.Random(seed)
    mirror = set(view.result_set())
    assert mirror == set()

    relations = [(r, query.arity_of(r)) for r in query.relations]
    for _ in range(150):
        relation, arity = rng.choice(relations)
        row = tuple(rng.randint(1, 5) for _ in range(arity))
        if rng.random() < 0.6:
            session.insert(relation, row)
        else:
            session.delete(relation, row)
        for d in subscription.poll():
            overlap = set(d.added) & mirror
            assert not overlap  # added tuples were absent
            assert set(d.removed) <= mirror  # removed ones were present
            mirror |= set(d.added)
            mirror -= set(d.removed)
        assert mirror == view.result_set()


def test_subscription_callback_and_epochs_increase():
    session = Session()
    view = session.view("v", "V(x) :- R(x)")
    seen = []
    view.subscribe(callback=seen.append)
    session.insert("R", (1,))
    session.insert("R", (1,))  # no-op: no delta
    session.insert("R", (2,))
    session.delete("R", (1,))
    assert [(d.added, d.removed) for d in seen] == [
        (((1,),), ()),
        (((2,),), ()),
        ((), ((1,),)),
    ]
    epochs = [d.epoch for d in seen]
    assert epochs == sorted(epochs) and len(set(epochs)) == len(epochs)


def test_subscription_through_batch_sees_net_effect():
    session = Session()
    view = session.view("v", "V(x, y) :- E(x, y), T(y)")
    subscription = view.subscribe()
    with session.batch() as batch:
        batch.insert("E", (1, 2)).insert("T", (2,))
        batch.insert("E", (3, 2)).delete("E", (3, 2))  # cancels
    mirror = set()
    for d in subscription.poll():
        mirror |= set(d.added)
        mirror -= set(d.removed)
    assert mirror == view.result_set() == {(1, 2)}


def test_subscription_max_pending_drops_oldest():
    session = Session()
    view = session.view("v", "V(x) :- R(x)")
    subscription = view.subscribe(max_pending=2)
    for i in range(5):
        session.insert("R", (i,))
    assert subscription.dropped == 3
    polled = subscription.poll()
    assert [d.added for d in polled] == [(((3,),)), (((4,),))]


def test_subscription_close_stops_delivery():
    session = Session()
    view = session.view("v", "V(x) :- R(x)")
    subscription = view.subscribe()
    session.insert("R", (1,))
    subscription.close()
    session.insert("R", (2,))
    assert [d.added for d in subscription.poll()] == [(((1,),))]


# ---------------------------------------------------------------------------
# cursors
# ---------------------------------------------------------------------------


def make_feed_session():
    session = Session()
    view = session.view("feed", "F(x, y) :- E(x, y), T(y)")
    other = session.view("other", "O(d) :- Flagged(d)")
    for i in range(6):
        session.insert("E", (i, i % 3))
        session.insert("T", (i % 3,))
    return session, view, other


def test_cursor_pages_without_restart_and_exhausts():
    session, view, _ = make_feed_session()
    full = list(view.enumerate())
    cursor = view.cursor()
    pages = []
    while True:
        page = cursor.fetch(2)
        if not page:
            break
        pages.append(page)
    assert [row for page in pages for row in page] == full
    assert cursor.exhausted and cursor.fetch(5) == []
    assert cursor.fetched == len(full)
    assert cursor not in view.open_cursors  # deregistered when drained


def test_cursor_survives_updates_to_other_views():
    session, view, _ = make_feed_session()
    cursor = view.cursor()
    first = cursor.fetch(1)
    session.insert("Flagged", ("x",))  # other view's relation
    rest = cursor.fetch_all()
    assert first + rest == list(view.enumerate())
    assert cursor.valid


def test_cursor_invalidation_is_precise():
    # Genuinely invalidating: the write removes a tuple the cursor has
    # already handed out, so no consistent resume exists.
    session, view, _ = make_feed_session()
    opened = view.epoch
    cursor = view.cursor()
    first = cursor.fetch(1)[0]
    command = delete("E", first)  # F(x, y) :- E(x, y), T(y): direct hit
    session.apply(command)
    with pytest.raises(CursorInvalidatedError) as excinfo:
        cursor.fetch(1)
    report = excinfo.value.invalidation
    assert report.view == "feed"
    assert report.opened_epoch == opened
    assert report.invalidated_epoch == view.epoch
    assert report.command == command
    assert report.fetched == 1
    assert not cursor.valid
    # invalidation sticks
    with pytest.raises(CursorInvalidatedError):
        cursor.fetch(1)


def test_cursor_revalidates_on_empty_delta_and_after_frontier_writes():
    # A touching write with an empty delta (the result did not move)
    # re-anchors the walk instead of killing the cursor; so does a
    # write whose delta lands entirely beyond what was fetched.
    session, view, _ = make_feed_session()
    cursor = view.cursor()
    got = cursor.fetch(1)
    session.insert("E", (50, 9))  # T(9) absent: touching, delta empty
    assert cursor.valid and cursor.revalidations == 1
    session.insert("E", (77, 2))  # T(2) present: delta adds (77, 2)
    assert cursor.valid and cursor.revalidations == 2
    got += cursor.fetch_all()  # the rebuilt walk serves the remainder
    assert sorted(got) == sorted(view.result_set())
    assert len(got) == len(set(got))


def test_snapshot_cursor_pins_pre_update_result():
    session, view, _ = make_feed_session()
    pre = set(view.result_set())
    cursor = view.cursor(snapshot=True)
    got = [cursor.fetch(1)[0]]
    session.insert("E", (99, 0))
    session.delete("T", (1,))
    got += cursor.fetch_all()
    assert set(got) == pre
    assert set(view.result_set()) != pre  # the live view moved on


def test_plain_and_snapshot_cursor_interleaving_property():
    for seed in range(5):
        rng = random.Random(seed)
        session = Session()
        view = session.view("v", "V(x, y) :- E(x, y), T(y)")
        for command in random_stream(view.query, rng, rounds=60, domain=5):
            session.apply(command)
        pre = list(view.enumerate())
        snapshot = rng.random() < 0.5
        cursor = view.cursor(snapshot=snapshot)
        got = []
        invalidated = False
        for step in range(30):
            if rng.random() < 0.4:
                relation = rng.choice(["E", "T"])
                arity = 2 if relation == "E" else 1
                row = tuple(rng.randint(1, 5) for _ in range(arity))
                (session.insert if rng.random() < 0.6 else session.delete)(
                    relation, row
                )
            else:
                try:
                    got.extend(cursor.fetch(rng.randint(1, 4)))
                except CursorInvalidatedError:
                    invalidated = True
                    break
                if cursor.exhausted:
                    break
        if snapshot:
            assert not invalidated
            remaining = cursor.fetch_all() if not cursor.exhausted else []
            assert got + remaining == pre  # the pinned pre-update result
        elif not invalidated:
            # survived every touching write: the revalidated cursor
            # enumerates exactly the FINAL result, duplicate-free (the
            # emitted prefix stayed live, the rebuilt walk served the
            # rest)
            total = got + (cursor.fetch_all() if not cursor.exhausted else [])
            assert len(total) == len(set(total))
            assert set(total) == view.result_set()
        else:
            # invalidated: the precise report matches what was consumed
            report = cursor.invalidation
            assert report is not None and report.fetched == len(got)
            assert report.command is not None and not report.command.is_insert


def test_bound_cursor_prefix_and_filter():
    session = Session()
    view = session.view("v", "V(x, y, z) :- R(x, y), W(x, z)")
    rng = random.Random(9)
    for _ in range(150):
        session.insert("R", (rng.randint(1, 4), rng.randint(1, 4)))
        session.insert("W", (rng.randint(1, 4), rng.randint(1, 4)))
    full = set(view.result_set())
    # ancestor-closed binding (root x): pinned fast path
    got = set(view.cursor(x=2).fetch_all())
    assert got == {t for t in full if t[0] == 2}
    # non-prefix binding (leaf without root): filter fallback
    got = set(view.cursor(z=3).fetch_all())
    assert got == {t for t in full if t[2] == 3}
    # full binding
    got = set(view.cursor(x=2, y=1, z=3).fetch_all())
    assert got == {t for t in full if t == (2, 1, 3)}
    with pytest.raises(QueryStructureError):
        view.cursor(nope=1)


def test_bound_cursor_on_union_and_fallback_views():
    session = Session()
    union = session.view("u", UNION_TEXT.replace("\n", ";"))
    fallback = session.view("f", "F(x, y) :- S(x), E(x, y), Last(y)")
    rng = random.Random(4)
    for _ in range(120):
        session.insert("R", (rng.randint(1, 4), rng.randint(1, 4)))
        session.insert("T", (rng.randint(1, 4), rng.randint(1, 4)))
        session.insert("S", (rng.randint(1, 4),))
        session.insert("E", (rng.randint(1, 4), rng.randint(1, 4)))
        session.insert("Last", (rng.randint(1, 4),))
    for view, var in ((union, "x"), (fallback, "y")):
        full = set(view.result_set())
        position = list(view.query.free).index(var)
        rows = view.cursor(**{var: 2}).fetch_all()
        assert len(rows) == len(set(rows))
        assert set(rows) == {t for t in full if t[position] == 2}


def test_cursor_close_and_errors():
    session, view, _ = make_feed_session()
    cursor = view.cursor()
    cursor.close()
    with pytest.raises(EngineStateError):
        cursor.fetch(1)
    cursor.close()  # idempotent
    fresh = view.cursor()
    with pytest.raises(EngineStateError):
        fresh.fetch(-1)
    session.drop_view("feed")
    assert not fresh.valid or fresh.exhausted  # serving state released


# ---------------------------------------------------------------------------
# bound enumeration ≡ brute force; Algorithm 1 with pinning
# ---------------------------------------------------------------------------

BINDING_QUERIES = ["E_T_QF", "EXAMPLE_6_1", "FIGURE_1"]


@pytest.mark.parametrize("name", BINDING_QUERIES)
def test_enumerate_bound_matches_brute_force(name):
    query = zoo.PAPER_QUERIES[name]
    engine = QHierarchicalEngine(query)
    rng = random.Random(5)
    for command in random_stream(query, rng, rounds=250, domain=5):
        engine.apply(command)
    full = engine.result_set()
    free = query.free
    for size in (1, 2):
        for variables in itertools.combinations(free, size):
            for value in (1, 3):
                binding = {v: value for v in variables}
                rows = list(engine.enumerate_bound(binding))
                assert len(rows) == len(set(rows))
                assert set(rows) == {
                    t
                    for t in full
                    if all(t[free.index(v)] == value for v in variables)
                }


@pytest.mark.parametrize("name", BINDING_QUERIES)
def test_algorithm1_pinned_agrees_with_generator(name):
    query = zoo.PAPER_QUERIES[name]
    engine = QHierarchicalEngine(query)
    rng = random.Random(6)
    for command in random_stream(query, rng, rounds=250, domain=5):
        engine.apply(command)
    for structure in engine.structures:
        order = structure.free_order
        for k in range(1, len(order) + 1):
            prefix = order[:k]
            parent_of = structure.qtree.parent
            closed = all(
                parent_of[v] is None or parent_of[v] in prefix
                for v in prefix
            )
            if not closed:
                continue
            for value in (1, 4):
                pinned = {v: value for v in prefix}
                assert list(algorithm1(structure, pinned)) == list(
                    structure.enumerate_bound(pinned)
                )


def test_algorithm1_rejects_non_ancestor_closed_pinning():
    query = zoo.EXAMPLE_6_1
    engine = QHierarchicalEngine(query)
    engine.insert("E", (1, 2))
    structure = engine.structures[0]
    order = structure.free_order
    deepest = order[-1]
    assert structure.qtree.parent[deepest] is not None
    with pytest.raises(QueryStructureError):
        list(algorithm1(structure, {deepest: 1}))


# ---------------------------------------------------------------------------
# bulk preprocessing satellites
# ---------------------------------------------------------------------------

SELFJOIN_QUERIES = [
    ("HIERARCHICAL_RRE", zoo.HIERARCHICAL_RRE),
    ("EXAMPLE_6_1", zoo.EXAMPLE_6_1),
    ("FIGURE_1", zoo.FIGURE_1),
    ("LOOP_CORE", zoo.LOOP_CORE),
    ("selfstar3", zoo.selfjoin_star_query(3)),
    ("selfstar4_partial", zoo.selfjoin_star_query(4, free_leaves=2)),
]


@pytest.mark.parametrize("name,query", SELFJOIN_QUERIES)
def test_merged_loaders_state_identical_to_per_atom_and_replay(name, query):
    rng = random.Random(len(name))
    database = Database.empty_like(query)
    for command in insert_only_stream(
        rng, query, 1500, domain=UniformDomain(12)
    ):
        database.insert(command.relation, command.row)
    merged = QHierarchicalEngine(query, database, merged_loaders=True)
    per_atom = QHierarchicalEngine(query, database, merged_loaders=False)
    replay = QHierarchicalEngine(query, database, compiled=False)
    assert merged.count() == per_atom.count() == replay.count()
    for sm, sp, sr in zip(
        merged.structures, per_atom.structures, replay.structures
    ):
        assert sm.snapshot() == sp.snapshot() == sr.snapshot()
    # the merged-loaded engine keeps updating correctly
    for command in random_stream(query, rng, rounds=100, domain=8):
        merged.apply(command)
        replay.apply(command)
    assert merged.count() == replay.count()


def test_union_bulk_preload_matches_replay():
    union = parse_union(UNION_TEXT)
    rng = random.Random(8)
    database = Database.from_dict(
        {
            "R": [(rng.randint(1, 6), rng.randint(1, 6)) for _ in range(40)],
            "S": [(i,) for i in range(1, 5)],
            "T": [(rng.randint(1, 6), rng.randint(1, 6)) for _ in range(30)],
        }
    )
    bulk = UnionEngine(union, database)
    replayed = UnionEngine(union)
    for relation in database.relations():
        for row in relation.rows:
            replayed.insert(relation.name, row)
    assert bulk.count() == replayed.count()
    assert bulk.result_set() == replayed.result_set()
    # and the loaded engine keeps maintaining correctly
    for command in union_stream(union, rng, rounds=120):
        bulk.apply(command)
        replayed.apply(command)
    assert bulk.result_set() == replayed.result_set()
    assert bulk.count() == replayed.count()


def test_delta_ivm_bulk_preload_matches_replay():
    query = zoo.S_E_T
    rng = random.Random(12)
    database = Database.from_dict(
        {
            "S": [(i,) for i in range(6)],
            "E": [(rng.randint(0, 5), rng.randint(0, 5)) for _ in range(40)],
            "T": [(i,) for i in range(4)],
        }
    )
    bulk = DeltaIVMEngine(query, database)
    replayed = DeltaIVMEngine(query)
    for relation in database.relations():
        for row in relation.rows:
            replayed.insert(relation.name, row)
    assert bulk._counts == replayed._counts
    assert bulk.count() == replayed.count()
    for command in random_stream(query, rng, rounds=120, domain=6):
        bulk.apply(command)
        replayed.apply(command)
    assert bulk._counts == replayed._counts


# ---------------------------------------------------------------------------
# the dispatcher
# ---------------------------------------------------------------------------


def test_server_request_loop_roundtrip():
    server = Server()
    replies = list(
        server.serve(
            [
                {"op": "view", "name": "v", "query": "V(x) :- R(x), S(x)"},
                {"op": "insert", "relation": "R", "row": (1,)},
                {"op": "insert", "relation": "S", "row": (1,)},
                {"op": "count", "view": "v"},
                {"op": "open_cursor", "view": "v"},
                {"op": "subscribe", "view": "v"},
                {"op": "insert", "relation": "R", "row": (2,)},
                {"op": "insert", "relation": "S", "row": (2,)},
                {"op": "epochs"},
                {"op": "nonsense"},
            ]
        )
    )
    assert replies[0]["ok"] is True
    assert replies[0]["view"] == "v"
    assert replies[0]["engine"] == "qhierarchical"
    assert replies[0]["backend"] in ("python", "vectorized")
    assert replies[3] == {"ok": True, "count": 1}
    cursor = replies[4]["cursor"]
    subscription = replies[5]["subscription"]
    assert replies[8]["epochs"]["v"] == 4
    assert replies[9]["ok"] is False

    # the two later inserts only added beyond the cursor's (empty)
    # frontier, so it revalidated and serves the updated result
    reply = server.handle({"op": "fetch", "cursor": cursor, "n": 1})
    assert reply["ok"] is True and len(reply["rows"]) == 1
    emitted = reply["rows"][0]

    # deleting the emitted row is genuinely invalidating — precisely
    server.handle({"op": "delete", "relation": "R", "row": emitted})
    reply = server.handle({"op": "fetch", "cursor": cursor, "n": 10})
    assert reply["ok"] is False
    assert reply["error"] == "CursorInvalidatedError"
    assert reply["invalidation"]["view"] == "v"
    assert reply["invalidation"]["fetched"] == 1

    polled = server.handle({"op": "poll", "subscription": subscription})
    assert [d["added"] for d in polled["deltas"]] == [[(2,)], []]
    assert [d["removed"] for d in polled["deltas"]] == [[], [emitted]]

    # restore the deleted row; a fresh cursor pages fine through the loop
    server.handle({"op": "insert", "relation": "R", "row": emitted})
    cursor = server.handle({"op": "open_cursor", "view": "v"})["cursor"]
    rows = server.handle({"op": "fetch", "cursor": cursor, "n": 10})
    assert sorted(rows["rows"]) == [(1,), (2,)] and rows["exhausted"]

    batch = server.handle(
        {
            "op": "batch",
            "commands": [
                ("insert", "R", (3,)),
                ("insert", "S", (3,)),
                ("delete", "R", (3,)),
            ],
        }
    )
    assert batch["stats"]["net"] < batch["stats"]["buffered"]
    assert server.handle({"op": "count", "view": "v"})["count"] == 2


def test_server_multithreaded_readers_and_writers():
    server = Server()
    server.view("v", "V(x, y) :- E(x, y), T(y)")
    subscription = server.subscribe("v")
    stop = threading.Event()
    failures = []

    def writer(seed):
        rng = random.Random(seed)
        for _ in range(150):
            relation = rng.choice(["E", "T"])
            arity = 2 if relation == "E" else 1
            row = tuple(rng.randint(1, 6) for _ in range(arity))
            try:
                if rng.random() < 0.7:
                    server.insert(relation, row)
                else:
                    server.delete(relation, row)
            except Exception as error:  # pragma: no cover
                failures.append(error)

    def reader(seed):
        rng = random.Random(seed)
        while not stop.is_set():
            try:
                cursor = server.open_cursor("v", snapshot=rng.random() < 0.5)
                while True:
                    try:
                        if not server.fetch(cursor, 8):
                            break
                    except CursorInvalidatedError:
                        break
                server.close_cursor(cursor)
                server.count("v")
            except Exception as error:  # pragma: no cover
                failures.append(error)

    readers = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
    writers = [
        threading.Thread(target=writer, args=(100 + i,)) for i in range(2)
    ]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    assert not failures

    # the subscription log replays to the final state
    mirror = set()
    for d in server.poll(subscription):
        mirror |= set(d.added)
        mirror -= set(d.removed)
    assert mirror == server.session["v"].result_set()

    # and the final state equals a sequential replay oracle
    oracle = RecomputeEngine(server.session["v"].query)
    for relation in ("E", "T"):
        for row in server.session.rows(relation):
            oracle.insert(relation, row)
    assert mirror == oracle.result_set()


def test_subscription_callback_may_reenter_the_server():
    # The callback runs inside the write path; the RW lock is
    # writer-reentrant so reading the server back must not deadlock.
    server = Server()
    server.view("v", "V(x, y) :- E(x, y)")
    seen = []
    server.subscribe("v", callback=lambda d: seen.append(server.count("v")))
    done = []
    thread = threading.Thread(
        target=lambda: done.append(server.insert("E", (1, 2)))
    )
    thread.start()
    thread.join(timeout=5)
    assert not thread.is_alive(), "writer deadlocked on its own lock"
    assert done == [True] and seen == [1]


def test_binding_to_none_constant_filters_correctly():
    # None is a legal stored constant; binding to it must filter, not
    # silently disable the filter.
    query = parse_query("Q(x, y) :- E(x, y)")
    engine = QHierarchicalEngine(query)
    for row in [(1, None), (1, 2), (3, None)]:
        engine.insert("E", row)
    assert set(engine.enumerate_bound({"y": None})) == {(1, None), (3, None)}
    assert set(engine.enumerate_bound({"x": 1, "y": None})) == {(1, None)}


def test_server_drop_view_releases_handles():
    server = Server()
    server.view("v", "V(x) :- R(x)")
    cursor = server.open_cursor("v")
    subscription = server.subscribe("v")
    server.drop_view("v")
    with pytest.raises(EngineStateError):
        server.fetch(cursor, 1)
    with pytest.raises(EngineStateError):
        server.poll(subscription)

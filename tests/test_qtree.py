"""Tests for q-tree construction (Section 4, Lemma 4.2)."""

import random

import pytest

from repro.cq import zoo
from repro.cq.analysis import is_q_hierarchical
from repro.cq.generators import random_cq, random_q_hierarchical_query
from repro.cq.parser import parse_query
from repro.core.qtree import build_q_tree, try_build_q_tree
from repro.errors import NotQHierarchicalError, QueryStructureError


class TestBuildOnPaperQueries:
    def test_example_6_1_matches_figure_2(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        assert tree.root == "x"
        assert tree.children["x"] == ["y", "y'"]
        assert tree.children["y"] == ["z", "z'"]
        assert tree.children["y'"] == []
        # rep sets exactly as printed in Figure 2.
        atoms = zoo.EXAMPLE_6_1.atoms
        label = lambda idx: str(atoms[idx])
        assert tree.rep["x"] == []
        assert [label(i) for i in tree.rep["y"]] == ["E(x, y)"]
        assert sorted(label(i) for i in tree.rep["z"]) == [
            "R(x, y, z)",
            "S(x, y, z)",
        ]
        assert [label(i) for i in tree.rep["z'"]] == ["R(x, y, z')"]
        assert [label(i) for i in tree.rep["y'"]] == ["E(x, y')"]

    def test_figure_1_two_trees(self):
        left = build_q_tree(zoo.FIGURE_1, prefer=("x1",))
        right = build_q_tree(zoo.FIGURE_1, prefer=("x2",))
        assert left.root == "x1" and right.root == "x2"
        # Figure 1 left: x1 → x2 → {x3 → x5, x4}.
        assert left.children["x1"] == ["x2"]
        assert set(left.children["x2"]) == {"x3", "x4"}
        assert left.children["x3"] == ["x5"]
        # Figure 1 right mirrors the first two levels.
        assert right.children["x2"] == ["x1"]
        assert set(right.children["x1"]) == {"x3", "x4"}
        for tree in (left, right):
            assert tree.is_valid()

    def test_non_q_hierarchical_queries_fail(self):
        for name in ["S_E_T", "E_T", "PHI_1", "LOOP_TRIANGLE"]:
            query = zoo.PAPER_QUERIES[name]
            for component in query.connected_components():
                assert try_build_q_tree(component) is None, name

    def test_build_q_tree_raises_with_witness(self):
        with pytest.raises(NotQHierarchicalError) as excinfo:
            build_q_tree(zoo.E_T)
        assert excinfo.value.violation is not None
        assert excinfo.value.violation.kind == "condition_ii"

    def test_requires_connected_component(self):
        q = parse_query("Q() :- R(x), S(y)")
        with pytest.raises(QueryStructureError):
            try_build_q_tree(q)


class TestQTreeProperties:
    def test_document_order_is_preorder(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        assert tree.document_order() == ["x", "y", "z", "z'", "y'"]

    def test_free_document_order_quantifier_free(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        assert tree.free_document_order() == tree.document_order()

    def test_free_document_order_with_quantified(self):
        tree = build_q_tree(zoo.FIGURE_1, prefer=("x1",))
        # x4 and x5 are quantified.
        assert set(tree.free_document_order()) == {"x1", "x2", "x3"}

    def test_paths(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        assert tree.path["z"] == ("x", "y", "z")
        assert tree.path["y'"] == ("x", "y'")
        assert tree.depth("z") == 2 and tree.depth("x") == 0

    def test_rep_node_of(self):
        tree = build_q_tree(zoo.EXAMPLE_6_1)
        atoms = zoo.EXAMPLE_6_1.atoms
        e_xy = next(i for i, a in enumerate(atoms) if str(a) == "E(x, y)")
        assert tree.rep_node_of(e_xy) == "y"

    def test_free_root_preference(self):
        # free variable must become the root when free(ϕ) ≠ ∅.
        q = parse_query("Q(y) :- E(x, y), F(y)")
        tree = build_q_tree(q)
        assert tree.root == "y"

    def test_boolean_component_builds(self):
        tree = build_q_tree(zoo.E_T_BOOLEAN)
        assert tree.is_valid()
        assert set(tree.parent) == {"x", "y"}


class TestLemma42Equivalence:
    """try_build_q_tree succeeds iff Definition 3.1 holds (Lemma 4.2)."""

    def test_on_random_queries(self):
        rng = random.Random(99)
        for _ in range(400):
            query = random_cq(rng)
            expected = is_q_hierarchical(query)
            got = all(
                try_build_q_tree(component) is not None
                for component in query.connected_components()
            )
            assert got == expected, query

    def test_on_random_q_hierarchical(self):
        rng = random.Random(100)
        for _ in range(150):
            query = random_q_hierarchical_query(rng)
            for component in query.connected_components():
                tree = try_build_q_tree(component)
                assert tree is not None, query
                assert tree.is_valid(), query

"""Tests for the f-representation export (core.factorized)."""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.factorized import (
    compression_ratio,
    factorize,
    flat_size,
)
from repro.cq import zoo
from repro.cq.generators import random_q_hierarchical_query
from repro.cq.parser import parse_query
from tests.conftest import feed_example_6_1_sorted, random_stream


def rows_of(expression, free_tuple):
    return {
        tuple(assignment[v] for v in free_tuple)
        for assignment in expression.assignments()
    }


class TestFactorizeExample61:
    def test_count_matches_engine(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        structure = engine.structures[0]
        expression = factorize(structure)
        assert expression.count() == 23 == structure.count()

    def test_assignments_match_enumeration(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        structure = engine.structures[0]
        expression = factorize(structure)
        assert rows_of(expression, zoo.EXAMPLE_6_1.free) == set(
            structure.enumerate()
        )

    def test_factorization_is_smaller_than_flat(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        structure = engine.structures[0]
        expression = factorize(structure)
        # 23 tuples × 5 vars = 115 flat symbols; the f-representation
        # shares prefixes and branches.
        assert flat_size(structure) == 115
        assert expression.size() < 115
        assert compression_ratio(structure) > 1.0

    def test_render_mentions_values(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        text = str(factorize(engine.structures[0]))
        assert "⟨x='a'⟩" in text
        assert "×" in text  # independent y / y' branches


class TestFactorizeShapes:
    def test_boolean_satisfied(self):
        engine = QHierarchicalEngine(zoo.E_T_BOOLEAN)
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        expression = factorize(engine.structures[0])
        assert expression.count() == 1

    def test_boolean_unsatisfied(self):
        engine = QHierarchicalEngine(zoo.E_T_BOOLEAN)
        expression = factorize(engine.structures[0])
        assert expression.count() == 0

    def test_quantified_subtrees_not_exported(self):
        # Free x only: the y-witnesses are existence checks, not nodes.
        q = parse_query("Q(x) :- E(x, y)")
        engine = QHierarchicalEngine(q)
        for y in range(5):
            engine.insert("E", (1, y))
        expression = factorize(engine.structures[0])
        assert expression.count() == 1
        assert expression.size() == 1  # just ⟨x=1⟩

    def test_cartesian_compression(self):
        # Star with two free leaves: n × n results, 2n + 1 symbols.
        query = zoo.star_query(2, free_leaves=2)
        engine = QHierarchicalEngine(query)
        engine.insert("S", (0,))
        n = 12
        for leaf in range(n):
            engine.insert("E1", (0, leaf))
            engine.insert("E2", (0, leaf))
        structure = engine.structures[0]
        expression = factorize(structure)
        assert expression.count() == n * n
        assert expression.size() == 1 + 2 * n
        assert compression_ratio(structure) > n / 2

    @pytest.mark.parametrize("seed", range(5))
    def test_random_queries_roundtrip(self, seed):
        rng = random.Random(seed)
        query = random_q_hierarchical_query(rng)
        engine = QHierarchicalEngine(query)
        for command in random_stream(query, rng, rounds=50, domain=5):
            engine.apply(command)
        for structure in engine.structures:
            expression = factorize(structure)
            assert expression.count() == structure.count()
            if structure.query.free:
                assert rows_of(expression, structure.query.free) == set(
                    structure.enumerate()
                )

    def test_snapshot_immune_to_updates(self):
        engine = QHierarchicalEngine(zoo.E_T_QF)
        engine.insert("E", (1, 2))
        engine.insert("T", (2,))
        expression = factorize(engine.structures[0])
        before = expression.count()
        engine.insert("E", (3, 2))
        # The engine moved on; the exported expression did not.
        assert expression.count() == before
        assert engine.count() == before + 1

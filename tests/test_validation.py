"""Tests for the structure invariant checker (core.validation)."""

import random

import pytest

from repro.core.engine import QHierarchicalEngine
from repro.core.validation import check_engine, check_structure
from repro.cq import zoo
from repro.cq.generators import random_q_hierarchical_query
from tests.conftest import example_6_1_database, feed_example_6_1_sorted, random_stream


class TestCheckStructure:
    def test_example_6_1_sound(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        feed_example_6_1_sorted(engine)
        report = check_engine(engine)
        assert report.ok, str(report)
        assert str(report) == "structure OK"

    def test_empty_engine_sound(self):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1)
        assert check_engine(engine).ok

    @pytest.mark.parametrize("seed", range(5))
    def test_random_streams_keep_invariants(self, seed):
        rng = random.Random(seed)
        query = random_q_hierarchical_query(rng)
        engine = QHierarchicalEngine(query)
        for command in random_stream(query, rng, rounds=50, domain=5):
            engine.apply(command)
        report = check_engine(engine)
        assert report.ok, str(report)

    def test_detects_corrupted_weight(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        structure = engine.structures[0]
        item = structure.item("x", ("a",))
        item.weight += 1  # sabotage
        report = check_structure(structure, engine.database)
        assert not report.ok
        assert any("C =" in error for error in report.errors)

    def test_detects_corrupted_counter(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        structure = engine.structures[0]
        item = structure.item("y", ("a", "e"))
        key = next(iter(item.c_atom))
        item.c_atom[key] += 5  # sabotage
        report = check_structure(structure, engine.database)
        assert not report.ok

    def test_detects_corrupted_start_total(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        structure = engine.structures[0]
        structure.c_start += 3  # sabotage
        report = check_structure(structure, engine.database)
        assert not report.ok
        assert any("C_start" in error for error in report.errors)

    def test_detects_missing_item(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        structure = engine.structures[0]
        # Remove an item behind the structure's back.
        item = structure.item("y'", ("a", "e"))
        del structure._items["y'"][("a", "e")]
        report = check_structure(structure, engine.database)
        assert not report.ok
        assert any("missing item" in error for error in report.errors)

    def test_report_renders_errors(self, d0):
        engine = QHierarchicalEngine(zoo.EXAMPLE_6_1, d0)
        structure = engine.structures[0]
        structure.c_start += 1
        report = check_structure(structure, engine.database)
        assert "violation" in str(report)

"""Delta-aware cursor revalidation: randomized differential coverage.

The contract under test (:mod:`repro.serve.cursors`): a plain cursor on
a view whose engine derives O(δ) deltas survives

* **touching-but-empty-delta writes** — the update hits a relation the
  view mentions but moves no result tuple, and
* **after-frontier writes** — every tuple the update adds or removes
  sits beyond what the cursor has emitted,

and is invalidated by exactly the **genuinely invalidating** writes:
those removing an already-emitted tuple (plus any touching write on a
no-delta path, where the cursor must assume the worst).  A surviving
cursor, drained to the end, enumerates exactly the *final* result with
no duplicates — checked against fresh enumeration on randomized
interleavings for every engine kind.
"""

import random

import pytest

from repro.api import Session
from repro.errors import CursorInvalidatedError
from repro.storage.updates import delete, insert

VIEW_TEXT = "V(x, y) :- E(x, y), T(y)"


def populated_session(rng, rows=40, domain=6, engine="auto"):
    session = Session()
    view = session.view("v", VIEW_TEXT, engine=engine)
    for value in range(domain):
        session.insert("T", (value,))
    for _ in range(rows):
        session.insert("E", (rng.randrange(domain * 3), rng.randrange(domain)))
    return session, view


# ---------------------------------------------------------------------------
# the three write classes, checked exactly
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_randomized_interleaving_survives_exactly_the_right_writes(seed):
    rng = random.Random(seed)
    session, view = populated_session(rng)
    cursor = view.cursor()
    emitted = list(cursor.fetch(rng.randint(1, 10)))
    revalidations = 0
    fresh_key = 1000

    for _ in range(40):
        if cursor.exhausted or not cursor.valid:
            break
        kind = rng.choice(["empty", "after", "invalidate", "fetch"])
        if kind == "fetch":
            emitted.extend(cursor.fetch(rng.randint(1, 4)))
        elif kind == "empty":
            # E row whose y has no T partner: touching, zero delta
            fresh_key += 1
            session.insert("E", (fresh_key, 99))
            revalidations += 1
            assert cursor.valid
        elif kind == "after":
            # brand-new joining row: the delta adds a tuple the cursor
            # cannot have emitted yet
            fresh_key += 1
            session.insert("E", (fresh_key, rng.randrange(6)))
            revalidations += 1
            assert cursor.valid
        elif kind == "invalidate" and emitted:
            victim = rng.choice(emitted)
            session.delete("E", victim)  # removes an emitted tuple
            assert not cursor.valid
            with pytest.raises(CursorInvalidatedError) as excinfo:
                cursor.fetch(1)
            report = excinfo.value.invalidation
            assert report.fetched == len(emitted)
            assert report.command == delete("E", victim)
            break

    if cursor.valid and not cursor.exhausted:
        assert cursor.revalidations == revalidations
        emitted.extend(cursor.fetch_all())
    if cursor.valid:
        # duplicate-free and exactly the final result
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == view.result_set()


@pytest.mark.parametrize("seed", range(5))
def test_surviving_cursor_equals_final_result_under_heavy_churn(seed):
    # Differential drain: interleave only survivable writes (empty-delta
    # and after-frontier, including beyond-frontier deletes) and check
    # the drained cursor against fresh enumeration of the final state.
    rng = random.Random(100 + seed)
    session, view = populated_session(rng, rows=60)
    cursor = view.cursor()
    got = list(cursor.fetch(5))
    seen = set(got)
    for step in range(60):
        roll = rng.random()
        if roll < 0.3:
            session.insert("E", (2000 + step, rng.randrange(6)))
        elif roll < 0.5:
            session.insert("E", (3000 + step, 77))  # empty delta
        elif roll < 0.7:
            # delete a live result row the cursor has NOT emitted
            candidates = [t for t in view.result_set() if t not in seen]
            if candidates:
                session.delete("E", rng.choice(candidates))
        else:
            page = cursor.fetch(rng.randint(1, 6))
            got.extend(page)
            seen.update(page)
            if cursor.exhausted:
                break  # an exhausted cursor is done; later writes are
                # a fresh cursor's business
        assert cursor.valid
    got.extend(cursor.fetch_all() if not cursor.exhausted else [])
    assert len(got) == len(set(got))
    assert set(got) == view.result_set()


def test_delete_beyond_frontier_survives_and_skips_the_row():
    rng = random.Random(42)
    session, view = populated_session(rng)
    cursor = view.cursor()
    first = cursor.fetch(1)
    unseen = next(t for t in view.enumerate() if t not in first)
    session.delete("E", unseen)
    assert cursor.valid and cursor.revalidations == 1
    rest = cursor.fetch_all()
    assert unseen not in rest
    assert set(first + rest) == view.result_set()


def test_bound_cursor_revalidates_within_its_binding():
    session = Session()
    view = session.view("v", VIEW_TEXT)
    for y in range(4):
        session.insert("T", (y,))
    for x in range(8):
        session.insert("E", (x, x % 4))
    cursor = view.cursor(y=1)
    first = cursor.fetch(1)
    # writes entirely outside the binding: survivable, invisible
    session.insert("E", (50, 2))
    session.delete("E", (0, 0))
    # and one inside the binding, beyond the frontier
    session.insert("E", (60, 1))
    assert cursor.valid and cursor.revalidations == 3
    rows = first + cursor.fetch_all()
    assert len(rows) == len(set(rows))
    assert set(rows) == {t for t in view.result_set() if t[1] == 1}


# ---------------------------------------------------------------------------
# engine coverage: every cheap-delta engine revalidates; others do not
# ---------------------------------------------------------------------------

ENGINE_VIEWS = [
    ("qh", "V(x, y) :- E(x, y), T(y)", "auto"),
    ("union", "V(x, y) :- R(x, y), S(x); V(x, y) :- T2(x, y)", "auto"),
    ("ivm", "V(x, y) :- S(x), E(x, y), T(y)", "auto"),  # delta-IVM fallback
]


@pytest.mark.parametrize("name,text,engine", ENGINE_VIEWS)
def test_every_cheap_delta_engine_revalidates(name, text, engine):
    session = Session()
    view = session.view(name, text, engine=engine)
    assert view.engine.supports_cheap_delta
    rng = random.Random(len(name))
    relations = [(r, view.query.arity_of(r)) for r in view.query.relations]
    for _ in range(120):
        relation, arity = rng.choice(relations)
        session.insert(
            relation, tuple(rng.randint(1, 5) for _ in range(arity))
        )
    cursor = view.cursor()
    got = list(cursor.fetch(2))
    # fresh values: any resulting delta lies beyond the frontier
    for relation, arity in relations:
        session.insert(relation, tuple(900 for _ in range(arity)))
    assert cursor.valid and cursor.revalidations == len(relations)
    got.extend(cursor.fetch_all())
    assert len(got) == len(set(got))
    assert set(got) == view.result_set()


def test_no_delta_engine_still_invalidates_eagerly():
    # recompute derives no cheap delta; without a subscriber the session
    # applies plainly and the cursor must assume the worst.
    session = Session()
    view = session.view("v", VIEW_TEXT, engine="recompute")
    assert not view.engine.supports_cheap_delta
    session.insert("T", (1,))
    session.insert("E", (1, 1))
    cursor = view.cursor()
    session.insert("E", (5, 99))  # would be an empty delta
    assert not cursor.valid
    with pytest.raises(CursorInvalidatedError):
        cursor.fetch(1)


def test_no_delta_engine_revalidates_when_a_subscriber_pays_for_the_diff():
    # With a subscriber the diff-based delta exists anyway, so the
    # cursor revalidates opportunistically even on a recompute engine.
    session = Session()
    view = session.view("v", VIEW_TEXT, engine="recompute")
    subscription = view.subscribe()
    session.insert("T", (1,))
    session.insert("E", (1, 1))
    cursor = view.cursor()
    session.insert("E", (5, 99))  # empty delta, derived by diff
    assert cursor.valid and cursor.revalidations == 1
    assert cursor.fetch_all() == [(1, 1)]
    assert [d.size for d in subscription.poll()] == [1]  # empty ones skipped


def test_snapshot_cursor_still_pins_across_survivable_writes():
    rng = random.Random(7)
    session, view = populated_session(rng)
    pre = list(view.enumerate())
    cursor = view.cursor(snapshot=True)
    session.insert("E", (999, 0))  # after-frontier for a plain cursor
    session.insert("E", (998, 77))  # empty delta
    assert cursor.fetch_all() == pre  # pinned regardless
    assert cursor.revalidations == 0


def test_exhausted_cursor_is_indifferent_to_later_writes():
    session = Session()
    view = session.view("v", VIEW_TEXT)
    session.insert("T", (1,))
    session.insert("E", (1, 1))
    cursor = view.cursor()
    assert cursor.fetch_all() == [(1, 1)]
    assert cursor.exhausted
    session.insert("E", (2, 1))
    assert cursor.exhausted and cursor.fetch(10) == []
    assert cursor.revalidations == 0

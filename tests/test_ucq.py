"""Tests for the UCQ extension (unions of q-hierarchical CQs)."""

import random

import pytest

from repro.cq.parser import parse_query
from repro.errors import NotQHierarchicalError, QueryStructureError
from repro.eval_static.naive import evaluate as evaluate_naive
from repro.extensions.ucq import UnionEngine, UnionOfCQs, intersection_query
from repro.storage.database import Database
from repro.storage.updates import insert as insert_command
from tests.conftest import random_stream

D1 = parse_query("Q(x, y) :- R(x, y), S(x)")
D2 = parse_query("Q(x, y) :- T(x, y)")
D3 = parse_query("Q(x, y) :- W(x), V(y)")


def union_truth(union: UnionOfCQs, database: Database) -> set:
    result = set()
    for query in union.disjuncts:
        result |= evaluate_naive(query, database)
    return result


def shared_database() -> Database:
    from repro.storage.database import Schema

    schema = Schema({"R": 2, "S": 1, "T": 2, "W": 1, "V": 1})
    return Database(schema)


class TestUnionOfCQs:
    def test_construction(self):
        union = UnionOfCQs([D1, D2])
        assert union.arity == 2
        assert union.relations == ("R", "S", "T")
        assert "∪" in str(union)

    def test_free_mirrors_conjunctive_query(self):
        union = UnionOfCQs([D1, D2])
        assert union.free == D1.free == ("x", "y")

    def test_arity_of(self):
        union = UnionOfCQs([D1, D2])
        assert union.arity_of("R") == 2
        assert union.arity_of("S") == 1
        with pytest.raises(QueryStructureError):
            union.arity_of("Nope")

    def test_empty_rejected(self):
        with pytest.raises(QueryStructureError):
            UnionOfCQs([])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryStructureError):
            UnionOfCQs([D1, parse_query("Q(x) :- T(x, y)")])

    def test_relation_arity_clash_rejected(self):
        with pytest.raises(QueryStructureError):
            UnionOfCQs([D1, parse_query("Q(x, y) :- S(x, y)")])


class TestIntersectionQuery:
    def test_free_variables_unified(self):
        q = intersection_query(D1, D2)
        assert q.free == ("x", "y")
        assert len(q.atoms) == 3

    def test_quantified_renamed_apart(self):
        left = parse_query("Q(x) :- R(x, y)")
        right = parse_query("Q(u) :- T(u, y)")
        q = intersection_query(left, right)
        # right's y must not collide with left's y.
        assert len(q.variables) == 3

    def test_semantics(self):
        db = Database.from_dict(
            {"R": [(1, 2), (3, 4)], "S": [(1,), (3,)], "T": [(1, 2), (9, 9)]}
        )
        q = intersection_query(D1, D2)
        assert evaluate_naive(q, db) == {(1, 2)}


class TestUnionEngine:
    def test_rejects_non_q_hierarchical_disjunct(self):
        hard = parse_query("Q(x, y) :- S(x), E(x, y), T(y)")
        with pytest.raises(NotQHierarchicalError):
            UnionEngine(UnionOfCQs([hard]))

    def test_basic_union(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        engine.insert("R", (1, 2))
        engine.insert("S", (1,))
        engine.insert("T", (1, 2))  # duplicate result via D2
        engine.insert("T", (5, 6))
        rows = list(engine.enumerate())
        assert len(rows) == len(set(rows)) == 2
        assert set(rows) == {(1, 2), (5, 6)}
        assert engine.count() == 2
        assert engine.answer()

    def test_counting_supported_flag(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        # intersection (R ∧ S ∧ T over x,y) is q-hierarchical.
        assert engine.counting_supported
        assert len(engine.intersection_engines) == 1

    def test_counting_fallback_when_intersection_hard(self):
        # D_a(x,y) :- A(x), E(x,y); D_b(x,y) :- E(x,y), B(y).
        # Each is q-hierarchical, but their intersection is the
        # S-E-T pattern — counting degrades to enumeration.
        da = parse_query("Q(x, y) :- A(x), E(x, y)")
        db_query = parse_query("Q(x, y) :- E(x, y), B(y)")
        engine = UnionEngine(UnionOfCQs([da, db_query]))
        assert not engine.counting_supported
        engine.insert("A", (1,))
        engine.insert("E", (1, 2))
        engine.insert("E", (3, 4))
        engine.insert("B", (4,))
        assert set(engine.enumerate()) == {(1, 2), (3, 4)}
        assert engine.count() == 2  # enumeration fallback still exact

    def test_contains(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        engine.insert("T", (7, 8))
        assert engine.contains((7, 8))
        assert not engine.contains((8, 7))

    def test_deletions(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        engine.insert("R", (1, 2))
        engine.insert("S", (1,))
        engine.insert("T", (1, 2))
        assert engine.count() == 1
        engine.delete("T", (1, 2))
        assert engine.count() == 1  # still derived by D1
        engine.delete("S", (1,))
        assert engine.count() == 0
        assert not engine.answer()

    def test_three_disjuncts_inclusion_exclusion(self):
        # Three binary-pattern disjuncts whose intersections all stay
        # q-hierarchical: O(1) counting via inclusion–exclusion.
        d3_ok = parse_query("Q(x, y) :- U2(x, y)")
        engine = UnionEngine(UnionOfCQs([D1, D2, d3_ok]))
        assert engine.counting_supported
        assert len(engine.intersection_engines) == 4  # 3 pairs + 1 triple
        engine.insert("R", (1, 2))
        engine.insert("S", (1,))
        engine.insert("T", (1, 2))
        engine.insert("T", (5, 6))
        engine.insert("U2", (1, 2))  # triple overlap
        engine.insert("U2", (7, 8))
        rows = set(engine.enumerate())
        assert rows == {(1, 2), (5, 6), (7, 8)}
        assert engine.count() == 3

    def test_cartesian_disjunct_intersection_is_hard(self):
        # D1 ∩ D3 = R(x,y) ∧ S(x) ∧ W(x) ∧ V(y) contains the S-E-T
        # pattern: exact O(1) counting of this union is *not* available
        # (the paper's Theorem 3.5 machinery explains why), and the
        # engine must degrade gracefully instead of lying.
        engine = UnionEngine(UnionOfCQs([D1, D2, D3]))
        assert not engine.counting_supported
        engine.insert("R", (1, 2))
        engine.insert("S", (1,))
        engine.insert("T", (1, 2))
        engine.insert("T", (5, 6))
        engine.insert("W", (1,))
        engine.insert("V", (2,))
        rows = set(engine.enumerate())
        assert rows == {(1, 2), (5, 6)}
        assert engine.count() == 2  # exact via enumeration fallback

    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_match_naive_union(self, seed):
        rng = random.Random(seed)
        union = UnionOfCQs([D1, D2, D3])
        engine = UnionEngine(union)
        # Build a stream over the merged schema via a pseudo-query.
        pseudo = parse_query(
            "Q(x, y) :- R(x, y), S(x), T(x, y), W(x), V(y)"
        )
        db = shared_database()
        for command in random_stream(pseudo, rng, rounds=80, domain=5):
            engine.apply(command)
            command.apply_to(db)
        truth = union_truth(union, db)
        rows = list(engine.enumerate())
        assert len(rows) == len(set(rows))
        assert set(rows) == truth
        assert engine.count() == len(truth)
        assert engine.answer() == bool(truth)
        for row in list(truth)[:5]:
            assert engine.contains(row)

    def test_preload_database(self):
        db = Database.from_dict(
            {"R": [(1, 2)], "S": [(1,)], "T": [(9, 9)]}
        )
        engine = UnionEngine(UnionOfCQs([D1, D2]), db)
        assert set(engine.enumerate()) == {(1, 2), (9, 9)}

    def test_every_step_emits(self):
        """The Durand–Strozecki merge never has a silent step: the
        number of items pulled from the merged stream equals the union
        size, and duplicates are replaced by earlier-disjunct tuples."""
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        for i in range(20):
            engine.insert("R", (i, i + 1))
            engine.insert("S", (i,))
            engine.insert("T", (i, i + 1))  # all duplicates
        engine.insert("T", (99, 100))  # one fresh
        rows = list(engine.enumerate())
        assert len(rows) == 21
        assert len(set(rows)) == 21

    def test_repr(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        assert "O(1)" in repr(engine)

    def test_single_disjunct_degenerates_to_plain_engine(self):
        engine = UnionEngine(UnionOfCQs([D1]))
        engine.insert("R", (1, 2))
        engine.insert("S", (1,))
        assert engine.count() == 1
        assert set(engine.enumerate()) == {(1, 2)}
        assert engine.counting_supported
        assert engine.intersection_engines == {}

    def test_contains_tracks_deletes(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        engine.insert("T", (4, 5))
        assert engine.contains((4, 5))
        engine.delete("T", (4, 5))
        assert not engine.contains((4, 5))

    def test_is_a_dynamic_engine(self):
        """The refactor: UnionEngine shares the DynamicEngine contract."""
        from repro.interface import ENGINE_REGISTRY, DynamicEngine

        engine = UnionEngine(UnionOfCQs([D1, D2]))
        assert isinstance(engine, DynamicEngine)
        assert ENGINE_REGISTRY["ucq_union"] is UnionEngine
        # The second insert is a set-semantics no-op, filtered once by
        # the shared base class.
        changed = engine.apply_all(2 * [insert_command("T", (1, 2))])
        assert changed == 1
        assert engine.database.cardinality == 1
        assert engine.result_set() == {(1, 2)}

    def test_result_set_returns_typed_set(self):
        engine = UnionEngine(UnionOfCQs([D1, D2]))
        engine.insert("T", (1, 2))
        rows = engine.result_set()
        assert isinstance(rows, set)
        assert all(isinstance(row, tuple) for row in rows)

    def test_accepts_plain_cq(self):
        engine = UnionEngine(D2)
        engine.insert("T", (3, 4))
        assert engine.count() == 1
        assert engine.union.disjuncts == (D2,)

    def test_supports_exact_counting_helper(self):
        from repro.extensions.ucq import supports_exact_counting

        assert supports_exact_counting(UnionOfCQs([D1, D2]))
        da = parse_query("Q(x, y) :- A(x), E(x, y)")
        db_query = parse_query("Q(x, y) :- E(x, y), B(y)")
        assert not supports_exact_counting(UnionOfCQs([da, db_query]))

    def test_parse_union(self):
        from repro.extensions.ucq import parse_union

        union = parse_union(
            """
            # two rules, one view
            Q(x, y) :- R(x, y), S(x)
            Q(x, y) :- T(x, y)
            """
        )
        assert len(union.disjuncts) == 2
        assert union.disjuncts == (D1, D2)

"""Snapshot-consistent cross-shard reads.

The contract under test: ``snapshot()`` pins a *mutually consistent*
cut — every accessor answers from the same epoch per view, a cut taken
under concurrent writes is byte-identical to some prefix of the
single-writer history, and a mid-snapshot ``kill -9`` either completes
the cut from the respawned worker's journal replay (supervised) or
raises :class:`~repro.errors.SnapshotInvalidatedError` naming the
worker (unsupervised) — never a silently mixed result.
"""

import os
import signal
import threading
import time

import pytest

from repro import Server
from repro.errors import (
    DeadlineExceededError,
    EngineStateError,
    SnapshotInvalidatedError,
)
from repro.serve.cluster import ShardCluster
from repro.serve.journal import CommandJournal
from repro.serve.snapshot import Snapshot
from repro.serve.supervisor import Supervisor
from repro.storage.updates import delete, insert

pytestmark = pytest.mark.cluster


# ---------------------------------------------------------------------------
# threads backend: Server.snapshot under one read-all lock
# ---------------------------------------------------------------------------


def test_server_snapshot_is_consistent_and_pageable():
    server = Server(shards=2)
    try:
        server.view("sa", "V(x) :- SA(x)")
        server.view("sb", "W(x, y) :- SB(x, y)")
        for i in range(5):
            server.insert("SA", (i,))
        server.insert("SB", (1, 2))
        snap = server.snapshot()
        assert isinstance(snap, Snapshot)
        assert snap.views == ("sa", "sb")
        assert snap.count("sa") == 5
        assert snap.result_set("sb") == frozenset({(1, 2)})
        assert snap.contains("sa", (3,)) and (3,) in snap.rows("sa")
        # a later write never leaks into the pinned cut
        server.insert("SA", (99,))
        assert snap.count("sa") == 5
        assert not snap.contains("sa", (99,))
        # fetch pages statefully over the repr-sorted pinned rows
        first = snap.fetch("sa", 2)
        second = snap.fetch("sa", 2)
        rest = snap.fetch("sa", 10)
        assert first + second + rest == list(snap.rows("sa"))
        assert snap.fetch("sa", 10) == []
        snap.rewind("sa")
        assert snap.fetch("sa", 3) == first + second[:1]
        # explicit offsets reposition the cursor
        assert snap.fetch("sa", 2, offset=3) == list(snap.rows("sa"))[3:5]
    finally:
        server.close()


def test_server_snapshot_rejects_unknown_view_and_bad_paging():
    server = Server(shards=1)
    try:
        server.view("known", "V(x) :- KS(x)")
        snap = server.snapshot(views=["known"])
        with pytest.raises(EngineStateError, match="not part of this snapshot"):
            snap.result_set("mystery")
        with pytest.raises(EngineStateError, match="fetch size"):
            snap.fetch("known", -1)
        with pytest.raises(EngineStateError, match="offset"):
            snap.fetch("known", 1, offset=-2)
        with pytest.raises(EngineStateError, match="no view named"):
            server.snapshot(views=["mystery"])
    finally:
        server.close()


# ---------------------------------------------------------------------------
# cluster backend: the double-collect pin
# ---------------------------------------------------------------------------


@pytest.fixture
def rig():
    with ShardCluster(workers=2) as deployment:
        with deployment.client() as facade:
            yield deployment, facade


@pytest.fixture
def supervised_rig():
    with ShardCluster(workers=2) as deployment:
        journal = CommandJournal()
        with deployment.client(journal=journal) as facade:
            supervisor = Supervisor(
                deployment, facade, journal=journal, heartbeat=0.1
            ).start()
            try:
                yield deployment, facade, supervisor
            finally:
                supervisor.stop()


def test_cluster_snapshot_spans_workers_quiescent(rig):
    _deployment, facade = rig
    facade.view("qa", "V(x) :- QA(x)")
    facade.view("qb", "W(x) :- QB(x)")
    for i in range(4):
        facade.insert("QA", (i,))
    facade.insert("QB", (9,))
    snap = facade.snapshot()
    # the cut spans both shard workers and pinned on the first attempt
    assert set(snap.workers.values()) == {0, 1}
    assert snap.pin_attempts == 1 and snap.rereads == 0
    assert snap.count("qa") == 4 and snap.result_set("qb") == frozenset({(9,)})
    assert snap.epochs == {"qa": 4, "qb": 1}
    assert "2 views" in repr(snap)
    # empty pin is a degenerate but valid snapshot
    empty = facade.snapshot(views=[])
    assert empty.views == () and empty.pin_attempts == 0
    with pytest.raises(EngineStateError, match="no view named"):
        facade.snapshot(views=["mystery"])


def _history_states(commands, views):
    """The single-writer oracle: replay ``commands`` on an in-process
    Server and record every intermediate (and the initial) state as a
    tuple of per-view frozensets."""
    oracle = Server(shards=1)
    try:
        for name, text in views:
            oracle.view(name, text)

        def state():
            return tuple(
                frozenset(oracle.result_set(name)) for name, _ in views
            )

        states = [state()]
        for command in commands:
            if command.op == "insert":
                oracle.insert(command.relation, command.row)
            else:
                oracle.delete(command.relation, command.row)
            states.append(state())
        return states
    finally:
        oracle.close()


def test_cluster_snapshot_is_a_prefix_of_the_writer_history(rig):
    _deployment, facade = rig
    views = [("ha", "V(x) :- HA(x)"), ("hb", "W(x) :- HB(x)")]
    for name, text in views:
        facade.view(name, text)
    # Alternate relations so any mixed cut (view A from step i, view B
    # from step j covering an intervening write) is a state pair that
    # never coexisted in the linear history.
    commands = []
    for i in range(60):
        commands.append(insert("HA" if i % 2 == 0 else "HB", (i,)))
        if i % 7 == 6:
            commands.append(delete("HA" if i % 2 == 0 else "HB", (i,)))
    history = set(_history_states(commands, views))

    errors = []

    def writer():
        try:
            for command in commands:
                if command.op == "insert":
                    facade.insert(command.relation, command.row)
                else:
                    facade.delete(command.relation, command.row)
                time.sleep(0.001)
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    thread = threading.Thread(target=writer)
    thread.start()
    cuts = 0
    try:
        while thread.is_alive():
            snap = facade.snapshot(views=["ha", "hb"])
            observed = (snap.result_set("ha"), snap.result_set("hb"))
            assert observed in history, (
                f"snapshot {observed} matches no prefix of the writer "
                f"history (epochs {snap.epochs})"
            )
            cuts += 1
    finally:
        thread.join()
    assert not errors, errors
    assert cuts > 0
    # the settled end state is the last history entry
    final = facade.snapshot(views=["ha", "hb"])
    assert (final.result_set("ha"), final.result_set("hb")) in history


def test_cluster_snapshot_converges_against_a_hot_writer(rig):
    _deployment, facade = rig
    facade.view("hwa", "V(x) :- HWA(x)")
    facade.view("hwb", "W(x) :- HWB(x)")
    facade.insert("HWB", (0,))
    stop = threading.Event()

    def writer():
        n = 0
        while not stop.is_set():
            facade.insert("HWA", (n,))
            n += 1

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        # A writer that never pauses can livelock the optimistic pin;
        # the final escalated attempt holds the client's write gate and
        # must converge instead of raising.
        snap = facade.snapshot(views=["hwa", "hwb"])
        assert snap.count("hwa") == snap.epochs["hwa"]
        assert snap.count("hwb") == 1
    finally:
        stop.set()
        thread.join()


def test_supervised_kill_mid_snapshot_completes_from_replay(supervised_rig):
    _deployment, facade, _supervisor = supervised_rig
    facade.view("ka", "V(x) :- KA(x)")
    facade.view("kb", "W(x) :- KB(x)")
    for i in range(10):
        facade.insert("KA", (i,))
    facade.insert("KB", (1,))
    victim = facade._worker_of_view("ka")
    pid = facade.ping()[victim]

    def killer():
        time.sleep(0.01)
        os.kill(pid, signal.SIGKILL)

    thread = threading.Thread(target=killer)
    thread.start()
    try:
        snap = facade.snapshot()
    finally:
        thread.join()
    # the journal replay restored the killed shard; the cut is complete
    assert snap.count("ka") == 10
    assert snap.result_set("kb") == frozenset({(1,)})
    # the snapshot stays readable even if pinned across the failover
    assert snap.fetch("ka", 100) == list(snap.rows("ka"))


def test_unsupervised_kill_mid_snapshot_raises_named_invalidation(rig):
    _deployment, facade = rig
    facade.view("ua", "V(x) :- UA(x)")
    facade.view("ub", "W(x) :- UB(x)")
    facade.insert("UA", (1,))
    facade.insert("UB", (2,))
    victim = facade._worker_of_view("ua")
    os.kill(facade.ping()[victim], signal.SIGKILL)
    time.sleep(0.2)
    with pytest.raises(SnapshotInvalidatedError) as info:
        facade.snapshot()
    error = info.value
    assert error.details["worker"] == victim
    assert f"worker {victim}" in str(error)
    assert "SnapshotInvalidatedError(" in repr(error)


def test_snapshot_survives_worker_death_after_pinning(supervised_rig):
    _deployment, facade, supervisor = supervised_rig
    facade.view("pa", "V(x) :- PA(x)")
    for i in range(8):
        facade.insert("PA", (i,))
    snap = facade.snapshot(views=["pa"])
    first = snap.fetch("pa", 3)
    # the worker dies between two fetch pages; rows are pinned
    # client-side so paging continues, byte-identical
    os.kill(facade.ping()[snap.workers["pa"]], signal.SIGKILL)
    rest = snap.fetch("pa", 100)
    assert first + rest == list(snap.rows("pa"))
    assert len(first + rest) == 8
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if not facade.dead_workers and supervisor.recoveries:
            break
        time.sleep(0.02)
    assert facade.count("pa") == 8


# ---------------------------------------------------------------------------
# error surface
# ---------------------------------------------------------------------------


def test_deadline_and_invalidation_errors_carry_details():
    deadline = DeadlineExceededError(
        "op timed out", op="count", worker=1, elapsed=0.25, attempts=3
    )
    assert deadline.details == {
        "op": "count",
        "worker": 1,
        "elapsed": 0.25,
        "attempts": 3,
    }
    assert "op='count'" in repr(deadline)
    invalid = SnapshotInvalidatedError(
        "cut lost",
        worker=0,
        expected_epochs={"v": 3},
        observed_epochs={"v": 5},
        attempts=2,
    )
    assert invalid.details["worker"] == 0
    assert invalid.details["expected_epochs"] == {"v": 3}
    assert invalid.details["observed_epochs"] == {"v": 5}
    assert "attempts=2" in repr(invalid)

"""Tests for the OMv / OuMv / OV problem layer."""

import random

import pytest

from repro.errors import ReductionError
from repro.lowerbounds.omv import (
    OMvInstance,
    OuMvInstance,
    solve_omv_naive,
    solve_omv_numpy,
    solve_oumv_naive,
    solve_oumv_numpy,
)
from repro.lowerbounds.ov import (
    OVInstance,
    find_orthogonal_pair,
    log_dimension,
    solve_ov_naive,
    solve_ov_numpy,
)
from repro.workloads.matrices import (
    random_omv_instance,
    random_oumv_instance,
    random_ov_instance,
)


class TestInstances:
    def test_omv_validation(self):
        with pytest.raises(ReductionError):
            OMvInstance(matrix=((0, 1), (1,)), vectors=())
        with pytest.raises(ReductionError):
            OMvInstance(matrix=((0, 1), (1, 0)), vectors=((1,),))
        with pytest.raises(ReductionError):
            OMvInstance(matrix=((0, 2), (1, 0)), vectors=())

    def test_oumv_validation(self):
        with pytest.raises(ReductionError):
            OuMvInstance(matrix=((0,),), pairs=(((0, 1), (1,)),))

    def test_ov_validation(self):
        with pytest.raises(ReductionError):
            OVInstance(u_set=(), v_set=((1,),))
        with pytest.raises(ReductionError):
            OVInstance(u_set=((1, 0),), v_set=((1,),))

    def test_log_dimension(self):
        assert log_dimension(2) == 1
        assert log_dimension(8) == 3
        assert log_dimension(9) == 4
        assert log_dimension(1) == 1


class TestOMvSolvers:
    def test_hand_example(self):
        instance = OMvInstance(
            matrix=((1, 0), (1, 1)),
            vectors=((1, 0), (0, 1), (0, 0)),
        )
        assert solve_omv_naive(instance) == [(1, 1), (0, 1), (0, 0)]

    @pytest.mark.parametrize("seed", range(5))
    def test_naive_vs_numpy(self, seed):
        rng = random.Random(seed)
        instance = random_omv_instance(rng, n=9)
        assert solve_omv_naive(instance) == solve_omv_numpy(instance)


class TestOuMvSolvers:
    def test_hand_example(self):
        instance = OuMvInstance(
            matrix=((1, 0), (0, 0)),
            pairs=(
                ((1, 0), (1, 0)),  # u^T M v = 1
                ((0, 1), (1, 0)),  # row 2 empty: 0
                ((1, 0), (0, 1)),  # column 2 empty: 0
            ),
        )
        assert solve_oumv_naive(instance) == (1, 0, 0)

    @pytest.mark.parametrize("seed", range(5))
    def test_naive_vs_numpy(self, seed):
        rng = random.Random(seed + 50)
        instance = random_oumv_instance(rng, n=9)
        assert solve_oumv_naive(instance) == solve_oumv_numpy(instance)


class TestOVSolvers:
    def test_hand_example(self):
        instance = OVInstance(
            u_set=((1, 0), (1, 1)),
            v_set=((1, 1), (0, 1)),
        )
        # u1=(1,0) ⊥ v2=(0,1).
        assert solve_ov_naive(instance)
        assert find_orthogonal_pair(instance) == (0, 1)

    def test_no_pair(self):
        instance = OVInstance(
            u_set=((1, 1),),
            v_set=((1, 0), (0, 1)),
        )
        assert not solve_ov_naive(instance)
        assert find_orthogonal_pair(instance) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_naive_vs_numpy(self, seed):
        rng = random.Random(seed + 100)
        instance = random_ov_instance(rng, n=20)
        assert solve_ov_naive(instance) == solve_ov_numpy(instance)

    def test_paper_dimension_default(self):
        rng = random.Random(1)
        instance = random_ov_instance(rng, n=16)
        assert instance.d == log_dimension(16) == 4

"""Hypothesis property tests over the paper's key invariants.

These are the "executable theorems" of the reproduction: each property
is a statement the paper proves, checked here on randomly generated
queries, databases and update streams.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.engine import QHierarchicalEngine
from repro.core.enumeration import algorithm1
from repro.core.qtree import try_build_q_tree
from repro.core.selfjoin import Phi2Engine
from repro.cq import zoo
from repro.cq.acyclicity import is_free_connex
from repro.cq.analysis import is_hierarchical, is_q_hierarchical
from repro.cq.generators import random_cq, random_q_hierarchical_query
from repro.cq.homomorphism import core, is_equivalent
from repro.eval_static.naive import evaluate as evaluate_naive
from repro.ivm import DeltaIVMEngine
from repro.lowerbounds.counting_lemma import solve_vandermonde
from repro.storage.database import Database
from tests.conftest import loop_graph_stream, random_stream

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_engine_equivalence_under_updates(seed):
    """Theorem 3.2 correctness: the dynamic engine agrees with naive
    re-evaluation and delta IVM after any update sequence."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    fast = QHierarchicalEngine(query)
    ivm = DeltaIVMEngine(query)
    stream = random_stream(query, rng, rounds=50, domain=6)
    for command in stream:
        fast.apply(command)
        ivm.apply(command)
    truth = evaluate_naive(query, fast.database)
    assert fast.result_set() == truth
    assert ivm.result_set() == truth
    assert fast.count() == ivm.count() == len(truth)
    assert fast.answer() == bool(truth)


@settings(max_examples=120, deadline=None)
@given(seed=seeds)
def test_lemma_4_2_qtree_iff_q_hierarchical(seed):
    """Lemma 4.2: a q-tree exists iff Definition 3.1 holds."""
    rng = random.Random(seed)
    query = random_cq(rng)
    built = all(
        try_build_q_tree(component) is not None
        for component in query.connected_components()
    )
    assert built == is_q_hierarchical(query)


@settings(max_examples=120, deadline=None)
@given(seed=seeds)
def test_q_hierarchical_implies_hierarchical_and_free_connex(seed):
    """Section 1.2 inclusions: q-hierarchical ⊆ hierarchical and
    q-hierarchical ⊆ free-connex acyclic."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    assert is_q_hierarchical(query)
    assert is_hierarchical(query)
    assert is_free_connex(query)


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_core_preserves_semantics(seed):
    """Chandra–Merlin: core(ϕ)(D) = ϕ(D) on every database."""
    rng = random.Random(seed)
    query = random_cq(rng, max_vars=4, max_atoms=3)
    folded = core(query)
    assert is_equivalent(query, folded)
    db = Database.empty_like(query)
    for atom in query.atoms:
        for _ in range(8):
            db.insert(
                atom.relation,
                tuple(rng.randint(1, 4) for _ in range(atom.arity)),
            )
    assert evaluate_naive(query, db) == evaluate_naive(folded, db)


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_enumeration_no_duplicates_and_count_consistent(seed):
    """Algorithm 1 yields each result exactly once, and the O(1) count
    equals the enumeration length (Lemma 6.2 + Section 6.5)."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=60, domain=5):
        engine.apply(command)
    rows = list(engine.enumerate())
    assert len(rows) == len(set(rows))
    assert len(rows) == engine.count()


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_pointer_algorithm_matches_generator(seed):
    """The literal Algorithm 1 and the recursive generator enumerate
    identical sequences."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=40, domain=5):
        engine.apply(command)
    for structure in engine.structures:
        assert list(algorithm1(structure)) == list(structure.enumerate())


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_full_deletion_resets_structure(seed):
    """Deleting every tuple (in random order) empties the item store —
    no leaked items, weights or list entries."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=50, domain=5):
        engine.apply(command)
    rows = [
        (relation.name, row)
        for relation in engine.database.relations()
        for row in relation.rows
    ]
    rng.shuffle(rows)
    for name, row in rows:
        engine.delete(name, row)
    assert engine.count() == 0
    assert not engine.answer()
    assert engine.item_count() == 0


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_phi2_engine_matches_naive(seed):
    """Lemma A.2 engine equals brute-force ϕ2 evaluation on random
    loop-heavy graphs under mixed updates."""
    rng = random.Random(seed)
    engine = Phi2Engine(zoo.PHI_2)
    for command in loop_graph_stream(rng, rounds=60, domain=6):
        engine.apply(command)
    truth = evaluate_naive(zoo.PHI_2, engine.database)
    rows = list(engine.enumerate())
    assert len(rows) == len(set(rows))
    assert set(rows) == truth
    assert engine.count() == len(truth)


@settings(max_examples=60, deadline=None)
@given(
    coefficients=st.lists(
        st.integers(min_value=0, max_value=10**6), min_size=1, max_size=6
    )
)
def test_vandermonde_roundtrip(coefficients):
    """The exact solver inverts polynomial evaluation at ℓ = 1..k+1."""
    values = [
        sum(c * ell**j for j, c in enumerate(coefficients))
        for ell in range(1, len(coefficients) + 1)
    ]
    solved = solve_vandermonde(values)
    assert [int(x) for x in solved] == coefficients


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_boolean_answer_equals_emptiness(seed):
    """answer() is exactly non-emptiness of the enumerated result."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng).boolean_version()
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=40, domain=4):
        engine.apply(command)
    assert engine.answer() == bool(list(engine.enumerate()))


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_structure_invariants_after_streams(seed):
    """The full Section 6 invariant audit (weights, counters, lists,
    sums, presence) holds after arbitrary update sequences."""
    from repro.core.validation import check_engine

    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng, max_depth=2, max_children=2)
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=35, domain=4):
        engine.apply(command)
    report = check_engine(engine)
    assert report.ok, str(report)


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_membership_equals_enumerated_set(seed):
    """contains() agrees with the enumerated result, member or not."""
    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=40, domain=4):
        engine.apply(command)
    result = engine.result_set()
    for row in result:
        assert engine.contains(row)
    domain_values = list(range(1, 5))
    for _ in range(10):
        fake = tuple(
            rng.choice(domain_values) for _ in range(len(query.free))
        )
        assert engine.contains(fake) == (fake in result)


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_factorized_export_roundtrip(seed):
    """The f-representation export represents exactly the result."""
    from repro.core.factorized import factorize

    rng = random.Random(seed)
    query = random_q_hierarchical_query(rng)
    engine = QHierarchicalEngine(query)
    for command in random_stream(query, rng, rounds=40, domain=4):
        engine.apply(command)
    for structure in engine.structures:
        expression = factorize(structure)
        assert expression.count() == structure.count()
        if structure.query.free:
            rows = {
                tuple(a[v] for v in structure.query.free)
                for a in expression.assignments()
            }
            assert rows == set(structure.enumerate())


@settings(max_examples=80, deadline=None)
@given(seed=seeds)
def test_query_text_roundtrip(seed):
    """``parse_query(str(q)) == q`` for generated queries."""
    from repro.cq.parser import parse_query

    rng = random.Random(seed)
    query = (
        random_q_hierarchical_query(rng)
        if seed % 2
        else random_cq(rng)
    )
    assert parse_query(str(query)) == query


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_union_engine_matches_naive_union(seed):
    """UCQ extension: the union engine equals the set union of its
    disjuncts' ground-truth evaluations after random streams."""
    from repro.extensions.ucq import UnionEngine, UnionOfCQs
    from repro.storage.database import Database, Schema

    rng = random.Random(seed)
    # Draw disjuncts of equal arity with disjoint relation namespaces.
    first = random_q_hierarchical_query(
        rng, max_depth=2, max_children=2, relation_prefix="A", var_prefix="a"
    )
    second = None
    for _ in range(40):
        candidate = random_q_hierarchical_query(
            rng, max_depth=2, max_children=2, relation_prefix="B", var_prefix="b"
        )
        if candidate.arity == first.arity:
            second = candidate
            break
    if second is None:
        return  # extremely unlikely; skip silently
    union = UnionOfCQs([first, second])
    engine = UnionEngine(union)

    arities = {}
    for query in union.disjuncts:
        for relation in query.relations:
            arities[relation] = query.arity_of(relation)
    db = Database(Schema(arities))

    pseudo_atoms = [a for q in union.disjuncts for a in q.atoms]
    from repro.cq.query import ConjunctiveQuery

    pseudo = ConjunctiveQuery(pseudo_atoms, (), name="pseudo")
    for command in random_stream(pseudo, rng, rounds=50, domain=4):
        engine.apply(command)
        command.apply_to(db)

    truth = set()
    for query in union.disjuncts:
        truth |= evaluate_naive(query, db)
    rows = list(engine.enumerate())
    assert len(rows) == len(set(rows))
    assert set(rows) == truth
    assert engine.count() == len(truth)

"""Tests for the engine interface and registry."""

import pytest

from repro.cq import zoo
from repro.errors import EngineStateError
from repro.interface import ENGINE_REGISTRY, make_engine
from repro.storage.updates import insert
from tests.conftest import example_6_1_database


class TestRegistry:
    def test_all_engines_registered(self):
        assert {
            "qhierarchical",
            "recompute",
            "delta_ivm",
            "phi2_appendix",
            "ucq_union",
        } <= set(ENGINE_REGISTRY)

    def test_make_engine(self):
        engine = make_engine("recompute", zoo.S_E_T)
        assert engine.name == "recompute"
        assert engine.query is zoo.S_E_T

    def test_make_engine_with_database(self):
        db = example_6_1_database()
        engine = make_engine("qhierarchical", zoo.EXAMPLE_6_1, db)
        assert engine.count() == 23

    def test_unknown_engine(self):
        with pytest.raises(EngineStateError):
            make_engine("nope", zoo.S_E_T)


class TestDynamicEngineBase:
    def test_apply_all_counts_effective_changes(self):
        engine = make_engine("delta_ivm", zoo.E_T_QF)
        commands = [
            insert("E", (1, 2)),
            insert("E", (1, 2)),  # duplicate: no-op
            insert("T", (2,)),
        ]
        assert engine.apply_all(commands) == 2

    def test_result_set(self):
        engine = make_engine("qhierarchical", zoo.E_T_QF)
        engine.insert("E", (1, 2))
        engine.insert("T", (2,))
        assert engine.result_set() == {(1, 2)}

    def test_repr_mentions_n(self):
        engine = make_engine("recompute", zoo.E_T_QF)
        engine.insert("E", (1, 2))
        assert "n=2" in repr(engine)

    def test_database_view_tracks_updates(self):
        engine = make_engine("qhierarchical", zoo.E_T_QF)
        engine.insert("E", (1, 2))
        assert ("1" not in engine.database.active_domain)
        assert engine.database.cardinality == 1
        engine.delete("E", (1, 2))
        assert engine.database.cardinality == 0

    def test_preprocessing_equals_replay(self):
        db = example_6_1_database()
        preprocessed = make_engine("qhierarchical", zoo.EXAMPLE_6_1, db)
        replayed = make_engine("qhierarchical", zoo.EXAMPLE_6_1)
        for relation in db.relations():
            for row in relation.rows:
                replayed.insert(relation.name, row)
        assert preprocessed.count() == replayed.count()
        assert preprocessed.result_set() == replayed.result_set()

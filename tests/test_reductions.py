"""Tests for the executable lower-bound reductions (Section 5.4, App. A)."""

import random

import pytest

from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.errors import ReductionError
from repro.ivm import DeltaIVMEngine, RecomputeEngine
from repro.lowerbounds.omv import solve_omv_naive, solve_oumv_naive
from repro.lowerbounds.ov import solve_ov_naive
from repro.lowerbounds.reductions import (
    OMvEnumerationReduction,
    OuMvBooleanReduction,
    OuMvCountingReduction,
    OuMvPhi1Reduction,
    OVCountingReduction,
    SectionFiveFourEncoding,
)
from repro.workloads.matrices import (
    random_omv_instance,
    random_oumv_instance,
    random_ov_instance,
)


class TestEncoding:
    def test_iota_images(self):
        encoding = SectionFiveFourEncoding(zoo.S_E_T_BOOLEAN, "x", "y")
        atom = zoo.S_E_T_BOOLEAN.atoms[1]  # E(x, y)
        assert encoding.row(atom, 3, 7) == (("a", 3), ("b", 7))

    def test_atom_rows_collapse_unused_indices(self):
        encoding = SectionFiveFourEncoding(zoo.S_E_T_BOOLEAN, "x", "y")
        s_atom = zoo.S_E_T_BOOLEAN.atoms[0]  # S(x)
        rows = encoding.atom_rows(s_atom, range(1, 4), range(1, 100))
        assert rows == {(("a", 1),), (("a", 2),), (("a", 3),)}

    def test_constant_tagging_disjoint(self):
        encoding = SectionFiveFourEncoding(zoo.S_E_T_BOOLEAN, "x", "y")
        assert encoding.constant("x", 1, 1) != encoding.constant("y", 1, 1)
        assert encoding.constant("z", 0, 0) == ("c", "z")


class TestOuMvBooleanReduction:
    @pytest.mark.parametrize("engine_cls", [DeltaIVMEngine, RecomputeEngine])
    def test_matches_direct_solver(self, engine_cls):
        rng = random.Random(1)
        instance = random_oumv_instance(rng, n=6)
        reduction = OuMvBooleanReduction(zoo.S_E_T_BOOLEAN, engine_cls)
        assert reduction.solve(instance) == solve_oumv_naive(instance)

    def test_updates_per_round_linear(self):
        rng = random.Random(2)
        n = 8
        instance = random_oumv_instance(rng, n=n, rounds=4)
        reduction = OuMvBooleanReduction(zoo.S_E_T_BOOLEAN, DeltaIVMEngine)
        reduction.solve(instance)
        static = reduction.updates_issued
        # Static encoding is ≤ n² + O(n); each round adds ≤ 2n diffs.
        assert static <= n * n + 2 + 4 * 2 * n

    def test_rejects_non_boolean(self):
        with pytest.raises(ReductionError):
            OuMvBooleanReduction(zoo.S_E_T, DeltaIVMEngine)

    def test_rejects_easy_core(self):
        # Section 3: core of the loop query is ∃x Exx — q-hierarchical.
        with pytest.raises(ReductionError):
            OuMvBooleanReduction(zoo.LOOP_TRIANGLE, DeltaIVMEngine)

    def test_runs_on_core_of_padded_query(self):
        # A Boolean query with a redundant padded atom folding away but
        # a genuinely hard S-E-T core.
        q = parse_query("Q() :- S(x), E(x, y), T(y), E(x, y')")
        rng = random.Random(3)
        instance = random_oumv_instance(rng, n=5)
        reduction = OuMvBooleanReduction(q, DeltaIVMEngine)
        assert reduction.solve(instance) == solve_oumv_naive(instance)

    def test_all_zero_vectors(self):
        n = 4
        instance_pairs = tuple(
            ((0,) * n, (0,) * n) for _ in range(3)
        )
        from repro.lowerbounds.omv import OuMvInstance
        from repro.workloads.matrices import random_bit_matrix

        instance = OuMvInstance(
            matrix=random_bit_matrix(random.Random(4), n, 0.8),
            pairs=instance_pairs,
        )
        reduction = OuMvBooleanReduction(zoo.S_E_T_BOOLEAN, DeltaIVMEngine)
        assert reduction.solve(instance) == (0, 0, 0)


class TestOMvEnumerationReduction:
    @pytest.mark.parametrize("engine_cls", [DeltaIVMEngine, RecomputeEngine])
    def test_matches_direct_solver(self, engine_cls):
        rng = random.Random(5)
        instance = random_omv_instance(rng, n=6)
        reduction = OMvEnumerationReduction(zoo.E_T, engine_cls)
        assert reduction.solve(instance) == solve_omv_naive(instance)

    def test_rejects_condition_i_queries(self):
        with pytest.raises(ReductionError):
            OMvEnumerationReduction(zoo.S_E_T, DeltaIVMEngine)

    def test_rejects_q_hierarchical(self):
        with pytest.raises(ReductionError):
            OMvEnumerationReduction(zoo.E_T_QF, DeltaIVMEngine)

    def test_rejects_self_joins(self):
        with pytest.raises(ReductionError):
            OMvEnumerationReduction(zoo.PHI_1, DeltaIVMEngine)

    def test_bigger_condition_ii_query(self):
        # A wider query violating (ii): free x and z, quantified y.
        q = parse_query("Q(x, z) :- E(x, y), T(y), W(z)")
        rng = random.Random(6)
        instance = random_omv_instance(rng, n=5)
        reduction = OMvEnumerationReduction(q, DeltaIVMEngine)
        assert reduction.solve(instance) == solve_omv_naive(instance)


class TestOVCountingReduction:
    @pytest.mark.parametrize("engine_cls", [DeltaIVMEngine, RecomputeEngine])
    def test_matches_direct_solver(self, engine_cls):
        rng = random.Random(7)
        for trial in range(4):
            instance = random_ov_instance(rng, n=5, density=0.6)
            reduction = OVCountingReduction(zoo.E_T, engine_cls)
            assert reduction.solve(instance) == solve_ov_naive(instance), trial

    def test_guaranteed_orthogonal_pair(self):
        from repro.lowerbounds.ov import OVInstance

        instance = OVInstance(
            u_set=((1, 0, 0), (0, 1, 1)),
            v_set=((0, 1, 0), (1, 1, 1)),
        )
        reduction = OVCountingReduction(zoo.E_T, DeltaIVMEngine)
        assert reduction.solve(instance) is True

    def test_no_orthogonal_pair(self):
        from repro.lowerbounds.ov import OVInstance

        instance = OVInstance(
            u_set=((1, 1, 0), (0, 1, 1)),
            v_set=((0, 1, 0), (1, 1, 1)),
        )
        reduction = OVCountingReduction(zoo.E_T, DeltaIVMEngine)
        assert reduction.solve(instance) is False

    def test_rejects_boolean(self):
        with pytest.raises(ReductionError):
            OVCountingReduction(zoo.S_E_T_BOOLEAN, DeltaIVMEngine)


class TestOuMvCountingReduction:
    """Theorem 3.5, first case: counting when condition (i) fails."""

    def test_phi1_matches_direct_solver(self):
        # ϕ1 is the paper's own example of a non-q-hierarchical core
        # whose *Boolean* version is easy — counting is the only way
        # to extract OuMv hardness, via Lemma 5.8.
        rng = random.Random(11)
        instance = random_oumv_instance(rng, n=5)
        reduction = OuMvCountingReduction(zoo.PHI_1, DeltaIVMEngine)
        assert reduction.solve(instance) == solve_oumv_naive(instance)

    def test_s_e_t_matches_direct_solver(self):
        rng = random.Random(12)
        instance = random_oumv_instance(rng, n=5)
        reduction = OuMvCountingReduction(zoo.S_E_T, DeltaIVMEngine)
        assert reduction.solve(instance) == solve_oumv_naive(instance)

    def test_rejects_boolean(self):
        with pytest.raises(ReductionError):
            OuMvCountingReduction(zoo.S_E_T_BOOLEAN, DeltaIVMEngine)

    def test_rejects_non_core(self):
        # (Exx ∧ Exy ∧ Eyy ∧ Ez1z2) with all free is its own core, but
        # the same atoms with only x free fold: the reduction demands
        # the caller pass the core explicitly.
        q = parse_query("Q(x) :- E(x, x), E(x, y), E(y, y)")
        with pytest.raises(ReductionError):
            OuMvCountingReduction(q, DeltaIVMEngine)

    def test_rejects_condition_ii_queries(self):
        with pytest.raises(ReductionError):
            OuMvCountingReduction(zoo.E_T, DeltaIVMEngine)

    def test_rejects_q_hierarchical(self):
        with pytest.raises(ReductionError):
            OuMvCountingReduction(zoo.E_T_QF, DeltaIVMEngine)


class TestOuMvPhi1Reduction:
    @pytest.mark.parametrize("engine_cls", [DeltaIVMEngine, RecomputeEngine])
    def test_matches_direct_solver(self, engine_cls):
        rng = random.Random(8)
        instance = random_oumv_instance(rng, n=5)
        reduction = OuMvPhi1Reduction(engine_cls)
        assert reduction.solve(instance) == solve_oumv_naive(instance)

    def test_inspects_bounded_prefix(self):
        # Correctness despite only reading 2n+1 output tuples per round.
        rng = random.Random(9)
        instance = random_oumv_instance(rng, n=7, vector_density=0.9)
        reduction = OuMvPhi1Reduction(DeltaIVMEngine)
        assert reduction.solve(instance) == solve_oumv_naive(instance)

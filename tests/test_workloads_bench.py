"""Tests for workload generators and the benchmark harness."""

import random

import pytest

from repro.bench.harness import ScalingExperiment
from repro.bench.reporting import banner, format_series, format_table, format_time
from repro.bench.timing import (
    DelayRecorder,
    growth_exponent,
    median,
    percentile,
)
from repro.cq import zoo
from repro.storage.database import Database
from repro.storage.updates import apply_all
from repro.workloads.distributions import UniformDomain, ZipfDomain
from repro.workloads.streams import (
    insert_only_stream,
    mixed_stream,
    sliding_window_stream,
    star_database,
)


class TestDistributions:
    def test_uniform_bounds(self):
        rng = random.Random(0)
        domain = UniformDomain(10)
        samples = domain.sample_many(rng, 500)
        assert all(0 <= s < 10 for s in samples)
        assert len(set(samples)) > 5

    def test_zipf_bounds_and_skew(self):
        rng = random.Random(1)
        domain = ZipfDomain(100, exponent=1.2)
        samples = domain.sample_many(rng, 2000)
        assert all(0 <= s < 100 for s in samples)
        head = sum(1 for s in samples if s < 5)
        tail = sum(1 for s in samples if s >= 50)
        assert head > tail  # heavy head

    def test_zipf_size_one(self):
        rng = random.Random(2)
        assert ZipfDomain(1).sample(rng) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UniformDomain(0)


class TestStreams:
    def test_insert_only(self):
        rng = random.Random(3)
        stream = insert_only_stream(rng, zoo.S_E_T, 50)
        assert len(stream) == 50
        assert all(cmd.is_insert for cmd in stream)
        relations = {cmd.relation for cmd in stream}
        assert relations <= {"S", "E", "T"}

    def test_mixed_stream_deletes_are_effective(self):
        rng = random.Random(4)
        stream = mixed_stream(rng, zoo.S_E_T, 200, delete_fraction=0.4)
        db = Database.empty_like(zoo.S_E_T)
        effective = apply_all(db, stream)
        assert effective == len(stream)  # every command changes the db

    def test_sliding_window_bounds_live_size(self):
        rng = random.Random(5)
        window = 12
        stream = sliding_window_stream(rng, zoo.E_T_QF, 120, window=window)
        db = Database.empty_like(zoo.E_T_QF)
        max_live = 0
        for command in stream:
            command.apply_to(db)
            max_live = max(max_live, db.cardinality)
        assert max_live <= window + 1

    def test_star_database_shape(self):
        rng = random.Random(6)
        db = star_database(rng, n=20, fanout=3)
        assert len(db.relation("S")) == 20
        for i in range(1, 4):
            assert len(db.relation(f"E{i}")) > 0
        assert db.active_domain_size <= 20


class TestTiming:
    def test_median_and_percentile(self):
        values = [5.0, 1.0, 3.0]
        assert median(values) == 3.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        assert percentile(values, 100) == 5.0
        assert percentile(values, 1) == 1.0

    def test_growth_exponent_shapes(self):
        sizes = [100, 200, 400, 800]
        linear = [s * 1e-6 for s in sizes]
        quadratic = [s * s * 1e-9 for s in sizes]
        flat = [5e-6] * 4
        assert abs(growth_exponent(sizes, linear) - 1.0) < 0.01
        assert abs(growth_exponent(sizes, quadratic) - 2.0) < 0.01
        assert abs(growth_exponent(sizes, flat)) < 0.01

    def test_growth_exponent_needs_points(self):
        with pytest.raises(ValueError):
            growth_exponent([10], [1.0])

    def test_delay_recorder_counts(self):
        recorder = DelayRecorder()
        produced = recorder.consume(iter(range(5)))
        assert produced == 5
        # 5 inter-output delays + 1 end-of-enumeration delay.
        assert len(recorder.delays) == 6
        assert recorder.max_delay >= 0

    def test_delay_recorder_limit(self):
        recorder = DelayRecorder()
        produced = recorder.consume(iter(range(100)), limit=7)
        assert produced == 7
        assert len(recorder.delays) == 7


class TestReporting:
    def test_format_time_scales(self):
        assert format_time(2.5e-9).endswith("ns")
        assert format_time(2.5e-6).endswith("µs")
        assert format_time(2.5e-3).endswith("ms")
        assert format_time(2.5).endswith("s")

    def test_format_table(self):
        table = format_table(["n", "time"], [[10, "1ms"], [100, "2ms"]])
        lines = table.splitlines()
        assert "n" in lines[0] and "time" in lines[0]
        assert len(lines) == 4

    def test_format_series(self):
        series = format_series("delay", [1, 2], [0.5, 0.25])
        assert "delay" in series and "0.25" in series

    def test_banner(self):
        assert "THM" in banner("THM 3.2")


class TestScalingExperiment:
    def test_runs_and_renders(self):
        def measure(engine, n, rng):
            return {"fast": 1e-6, "slow": n * 1e-6}[engine]

        experiment = ScalingExperiment(
            title="demo",
            sizes=[100, 200, 400],
            measure=measure,
            engines=["fast", "slow"],
        ).run()
        assert abs(experiment.exponent("fast")) < 0.01
        assert abs(experiment.exponent("slow") - 1.0) < 0.01
        speedups = experiment.speedups()
        assert speedups[-1] > speedups[0]
        assert "demo" in experiment.render()

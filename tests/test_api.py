"""Tests for the Session/View facade, the planner and batches."""

import pytest

from repro.api import Plan, Planner, Session, parse_view
from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.errors import (
    EngineStateError,
    NotQHierarchicalError,
    QuerySyntaxError,
    SchemaError,
    UpdateError,
)
from repro.extensions.ucq import UnionOfCQs
from repro.interface import ENGINE_REGISTRY, make_engine
from repro.storage.database import Database
from repro.storage.updates import compress_commands, delete, insert

QH_TEXT = "Feed(me, a, p) :- Follows(me, a), Posted(a, p)"
HARD_TEXT = "Q(x, y) :- S(x), E(x, y), T(y)"  # the paper's ϕ_S-E-T
UCQ_TEXT = """
    Alert(d, e) :- Event(d, e), Flagged(d)
    Alert(d, e) :- Critical(d, e)
"""


class TestParseView:
    def test_single_rule_is_cq(self):
        query = parse_view(QH_TEXT)
        assert query.free == ("me", "a", "p")
        assert not isinstance(query, UnionOfCQs)

    def test_multiple_rules_are_ucq(self):
        union = parse_view(UCQ_TEXT)
        assert isinstance(union, UnionOfCQs)
        assert len(union.disjuncts) == 2

    def test_semicolon_separator(self):
        union = parse_view("Q(x) :- R(x); Q(x) :- S(x)")
        assert isinstance(union, UnionOfCQs)

    def test_name_override(self):
        assert parse_view(QH_TEXT, name="feed").name == "feed"
        assert parse_view(UCQ_TEXT, name="alerts").name == "alerts"

    def test_empty_text_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_view("   # only a comment\n")


class TestPlanner:
    def test_q_hierarchical_cq_gets_theorem_32_engine(self):
        plan = Planner().plan(QH_TEXT)
        assert plan.engine == "qhierarchical"
        assert plan.auto and plan.kind == "cq"
        assert plan.classification.q_hierarchical
        assert plan.guarantees["count"] == "O(1)"

    def test_hard_cq_falls_back_to_delta_ivm(self):
        plan = Planner().plan(HARD_TEXT)
        assert plan.engine == "delta_ivm"
        assert "condition (i)" in plan.reason
        assert not plan.classification.q_hierarchical

    def test_configurable_fallback(self):
        plan = Planner(fallback="recompute").plan(HARD_TEXT)
        assert plan.engine == "recompute"

    def test_unknown_fallback_rejected(self):
        with pytest.raises(EngineStateError):
            Planner(fallback="nope")

    def test_ucq_gets_union_engine(self):
        plan = Planner().plan(UCQ_TEXT)
        assert plan.engine == "ucq_union"
        assert plan.kind == "ucq"
        assert plan.counting_exact

    def test_ucq_with_hard_intersection_flags_counting(self):
        plan = Planner().plan(
            "Q(x, y) :- A(x), E(x, y); Q(x, y) :- E(x, y), B(y)"
        )
        assert plan.engine == "ucq_union"
        assert not plan.counting_exact
        assert "degrades to enumeration" in plan.render()

    def test_ucq_with_hard_disjunct_refused_with_witness(self):
        with pytest.raises(NotQHierarchicalError) as excinfo:
            Planner().plan(f"{HARD_TEXT}; Q(x, y) :- W(x, y)")
        assert excinfo.value.violation is not None

    def test_single_disjunct_union_planned_as_cq(self):
        plan = Planner().plan(UnionOfCQs([parse_query(QH_TEXT)]))
        assert plan.kind == "cq"
        assert plan.engine == "qhierarchical"

    def test_forced_engine(self):
        plan = Planner().plan(QH_TEXT, engine="recompute")
        assert plan.engine == "recompute" and not plan.auto
        assert "forced" in plan.render()

    def test_forced_infeasible_engine_refused_at_plan_time(self):
        # A plan must never advertise guarantees its build() would
        # refuse to deliver.
        with pytest.raises(NotQHierarchicalError):
            Planner().plan(HARD_TEXT, engine="qhierarchical")
        with pytest.raises(NotQHierarchicalError):
            Planner().plan(f"{HARD_TEXT}; Q(x, y) :- W(x, y)", engine="ucq_union")

    def test_plan_guarantees_are_not_shared_state(self):
        plan = Planner().plan(QH_TEXT)
        plan.guarantees["count"] = "corrupted"
        assert Planner().plan(QH_TEXT).guarantees["count"] == "O(1)"

    def test_forced_unknown_engine(self):
        with pytest.raises(EngineStateError):
            Planner().plan(QH_TEXT, engine="nope")

    def test_forced_cq_engine_on_union_rejected(self):
        with pytest.raises(EngineStateError):
            Planner().plan(UCQ_TEXT, engine="delta_ivm")

    def test_plan_build_runs_preprocessing(self):
        db = Database.from_dict({"E": [(1, 2)], "T": [(2,)]})
        engine = Planner().plan(zoo.E_T_QF).build(db)
        assert engine.name == "qhierarchical"
        assert engine.count() == 1

    def test_render_mentions_all_aspects(self):
        text = Planner().plan(QH_TEXT).render()
        for aspect in ("preprocessing", "update", "delay", "count", "answer"):
            assert aspect in text


class TestMakeEngineAuto:
    def test_registry_lists_union_engine(self):
        assert "ucq_union" in ENGINE_REGISTRY

    def test_auto_picks_by_dichotomy(self):
        assert make_engine("auto", QH_TEXT).name == "qhierarchical"
        assert make_engine("auto", HARD_TEXT).name == "delta_ivm"
        assert make_engine("auto", UCQ_TEXT).name == "ucq_union"

    def test_auto_with_query_object_and_database(self):
        db = Database.from_dict({"E": [(1, 2)], "T": [(2,)]})
        engine = make_engine("auto", zoo.E_T_QF, db)
        assert engine.result_set() == {(1, 2)}

    def test_named_engine_with_text(self):
        engine = make_engine("recompute", QH_TEXT)
        assert engine.name == "recompute"

    def test_union_engine_from_registry(self):
        engine = make_engine("ucq_union", UCQ_TEXT)
        engine.insert("Critical", (1, 2))
        assert engine.result_set() == {(1, 2)}

    def test_union_rejected_by_cq_engine(self):
        with pytest.raises(EngineStateError):
            make_engine("qhierarchical", UCQ_TEXT)


class TestSessionViews:
    def test_view_auto_selection_triple(self):
        session = Session()
        assert session.view("a", QH_TEXT).explain().engine == "qhierarchical"
        assert session.view("b", HARD_TEXT).explain().engine == "delta_ivm"
        assert session.view("c", UCQ_TEXT).explain().engine == "ucq_union"

    def test_shared_updates_fan_out(self):
        session = Session()
        flagged = session.view("flagged", "V(d, e) :- Event(d, e), Flagged(d)")
        events = session.view("events", "W(d, e) :- Event(d, e)")
        session.insert("Event", (1, 2))
        session.insert("Flagged", (1,))
        assert flagged.result_set() == {(1, 2)}
        assert events.result_set() == {(1, 2)}
        session.delete("Event", (1, 2))
        assert flagged.count() == 0 and events.count() == 0

    def test_late_view_preloaded_with_current_state(self):
        session = Session()
        session.view("events", "W(d, e) :- Event(d, e)")
        session.insert("Event", (1, 2))
        session.insert("Event", (3, 4))
        late = session.view("late", "V(e, d) :- Event(d, e)")
        assert late.result_set() == {(2, 1), (4, 3)}

    def test_update_not_fanned_to_unrelated_view(self):
        session = Session()
        events = session.view("events", "W(d, e) :- Event(d, e)")
        session.view("pings", "P(x) :- Ping(x)")
        session.insert("Ping", (7,))
        assert events.engine.database.cardinality == 0

    def test_duplicate_view_name(self):
        session = Session()
        session.view("v", QH_TEXT)
        with pytest.raises(EngineStateError):
            session.view("v", QH_TEXT)

    def test_unknown_relation_rejected(self):
        session = Session()
        session.view("v", QH_TEXT)
        with pytest.raises(SchemaError):
            session.insert("Nope", (1,))

    def test_arity_check(self):
        session = Session()
        session.view("v", QH_TEXT)
        with pytest.raises(UpdateError):
            session.insert("Follows", (1, 2, 3))

    def test_arity_conflict_across_views(self):
        session = Session()
        session.view("v", "Q(x) :- R(x)")
        with pytest.raises(SchemaError):
            session.view("w", "Q(x, y) :- R(x, y)")

    def test_getitem_contains_drop(self):
        session = Session()
        view = session.view("v", QH_TEXT)
        assert session["v"] is view
        assert "v" in session and "w" not in session
        session.drop_view("v")
        assert "v" not in session
        with pytest.raises(EngineStateError):
            session["v"]
        with pytest.raises(EngineStateError):
            session.drop_view("v")

    def test_dropped_view_no_longer_updated(self):
        session = Session()
        view = session.view("v", "W(d, e) :- Event(d, e)")
        session.drop_view("v")
        session.insert("Event", (1, 2))
        assert view.count() == 0

    def test_ingest_and_database_snapshot(self):
        session = Session()
        session.view("v", zoo.E_T_QF)
        db = Database.from_dict({"E": [(1, 2)], "T": [(2,)]})
        assert session.ingest(db) == 2
        assert session.cardinality == 2
        assert session.database == db
        assert session.rows("E") == {(1, 2)}

    def test_contains_with_and_without_engine_support(self):
        session = Session()
        fast = session.view("fast", QH_TEXT)
        slow = session.view("slow", HARD_TEXT)
        session.insert("Follows", ("me", "ada"))
        session.insert("Posted", ("ada", "p1"))
        session.insert("S", (1,))
        session.insert("E", (1, 2))
        session.insert("T", (2,))
        assert fast.contains(("me", "ada", "p1"))  # O(1) engine probe
        assert slow.contains((1, 2))  # result-set fallback
        assert not slow.contains((2, 1))

    def test_repr(self):
        session = Session()
        session.view("v", QH_TEXT)
        assert "v:qhierarchical" in repr(session)


class TestBatch:
    def test_net_effect_compression_stats(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        session.insert("Event", (9, 9))
        with session.batch() as batch:
            batch.insert("Event", (1, 2))
            batch.delete("Event", (1, 2))  # cancels the insert
            batch.insert("Event", (3, 4))
            batch.insert("Event", (3, 4))  # duplicate buffer entry
            batch.insert("Event", (9, 9))  # no-op vs current state
            batch.delete("Event", (5, 6))  # delete of absent tuple
        assert batch.stats == {"buffered": 6, "net": 1, "applied": 1}
        assert session["v"].result_set() == {(9, 9), (3, 4)}

    def test_insert_then_delete_of_present_tuple_nets_to_delete(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        session.insert("Event", (1, 2))
        with session.batch() as batch:
            batch.insert("Event", (1, 2))
            batch.delete("Event", (1, 2))
        assert batch.stats["net"] == 1
        assert session["v"].count() == 0

    def test_exception_rolls_back_everything(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        with pytest.raises(RuntimeError):
            with session.batch() as batch:
                batch.insert("Event", (1, 2))
                raise RuntimeError("boom")
        assert session["v"].count() == 0
        assert session.cardinality == 0

    def test_bad_command_aborts_transaction(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        with pytest.raises(SchemaError):
            with session.batch() as batch:
                batch.insert("Event", (1, 2))
                batch.insert("Nope", (1,))
        assert session["v"].count() == 0

    def test_direct_updates_blocked_while_batch_open(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        with session.batch() as batch:
            with pytest.raises(EngineStateError):
                session.insert("Event", (1, 2))
            batch.insert("Event", (3, 4))
        assert session["v"].result_set() == {(3, 4)}

    def test_view_registration_blocked_while_batch_open(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        with session.batch():
            with pytest.raises(EngineStateError):
                session.view("w", "P(x) :- Ping(x)")

    def test_nested_batches_rejected(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        with session.batch():
            with pytest.raises(EngineStateError):
                session.batch().__enter__()

    def test_batches_are_one_shot(self):
        # Re-entering a finished batch would replay its stale commands
        # (their net effect was computed against the old state).
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        batch = session.batch()
        with batch:
            batch.insert("Event", (1, 2))
        session.delete("Event", (1, 2))
        with pytest.raises(EngineStateError):
            with batch:
                pass
        assert session["v"].count() == 0  # (1, 2) was not resurrected

    def test_rolled_back_batch_cannot_be_reused(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        batch = session.batch()
        with pytest.raises(RuntimeError):
            with batch:
                raise RuntimeError("boom")
        with pytest.raises(EngineStateError):
            batch.__enter__()

    def test_unopened_batch_rejects_commands(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        with pytest.raises(EngineStateError):
            session.batch().insert("Event", (1, 2))

    def test_apply_all_and_len(self):
        session = Session()
        session.view("v", "W(d, e) :- Event(d, e)")
        commands = [insert("Event", (i, i)) for i in range(5)]
        with session.batch() as batch:
            batch.apply_all(commands)
            assert len(batch) == 5
        assert session["v"].count() == 5

    def test_batch_fans_out_to_ucq_view(self):
        session = Session()
        alerts = session.view("alerts", UCQ_TEXT)
        with session.batch() as batch:
            batch.insert("Event", (1, 2))
            batch.insert("Flagged", (1,))
            batch.insert("Critical", (1, 2))  # duplicate output tuple
            batch.insert("Critical", (5, 6))
        assert alerts.result_set() == {(1, 2), (5, 6)}
        assert alerts.count() == 2


class TestCompressCommands:
    def test_last_op_wins_and_state_dedup(self):
        present = {("R", (1,)): True}
        commands = [
            insert("R", (1,)),  # present already → dropped
            insert("R", (2,)),
            delete("R", (2,)),  # cancels to delete-of-absent → dropped
            delete("R", (3,)),  # absent → dropped
            insert("R", (4,)),
        ]
        net = compress_commands(
            commands, lambda rel, row: present.get((rel, row), False)
        )
        assert net == [insert("R", (4,))]

    def test_preserves_first_touch_order(self):
        commands = [insert("R", (2,)), insert("R", (1,)), insert("R", (2,))]
        net = compress_commands(commands, lambda rel, row: False)
        assert net == [insert("R", (2,)), insert("R", (1,))]

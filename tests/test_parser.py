"""Tests for the rule-syntax parser (repro.cq.parser)."""

import pytest

from repro.cq.parser import parse_atom, parse_many, parse_query
from repro.cq.query import Atom
from repro.cq import zoo
from repro.errors import QuerySyntaxError, QueryStructureError


class TestParseQuery:
    def test_simple(self):
        q = parse_query("Q(x, y) :- R(x, y), S(y)")
        assert q.free == ("x", "y")
        assert q.atoms == (Atom("R", ["x", "y"]), Atom("S", ["y"]))
        assert q.name == "Q"

    def test_boolean_with_parens(self):
        q = parse_query("Q() :- R(x)")
        assert q.is_boolean

    def test_boolean_bare_head(self):
        q = parse_query("Q :- R(x)")
        assert q.is_boolean

    def test_primed_variables(self):
        q = parse_query("Q(x) :- R(x, y', z'), E(x, y')")
        assert "y'" in q.variables and "z'" in q.variables

    def test_trailing_dot(self):
        q = parse_query("Q(x) :- R(x).")
        assert q.free == ("x",)

    def test_alternative_arrows(self):
        assert parse_query("Q(x) <- R(x)") == parse_query("Q(x) :- R(x)")

    def test_name_override(self):
        q = parse_query("Q(x) :- R(x)", name="phi")
        assert q.name == "phi"

    def test_whitespace_insensitive(self):
        q = parse_query("  Q ( x )   :-   R ( x , y )  ")
        assert q.free == ("x",)

    def test_paper_queries_parse_to_zoo_objects(self):
        assert parse_query("Q(x, y) :- S(x), E(x, y), T(y)") == zoo.S_E_T
        assert parse_query("Q() :- S(x), E(x, y), T(y)") == zoo.S_E_T_BOOLEAN
        assert parse_query("Q(x) :- E(x, y), T(y)") == zoo.E_T
        assert (
            parse_query("Q(x, y) :- E(x, x), E(x, y), E(y, y)") == zoo.PHI_1
        )

    def test_example_6_1_parses(self):
        q = parse_query(
            "Q(x, y, z, y', z') :- R(x,y,z), R(x,y,z'), E(x,y), E(x,y'), S(x,y,z)"
        )
        assert q == zoo.EXAMPLE_6_1


class TestParserErrors:
    def test_missing_body(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Q(x) :- ")

    def test_missing_arrow(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Q(x) R(x)")

    def test_unbalanced_parens(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Q(x :- R(x)")

    def test_garbage_character(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Q(x) :- R(x) & S(x)")

    def test_nullary_atom_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Q() :- R()")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("Q(x) :- R(x) extra")

    def test_head_variable_not_in_body(self):
        with pytest.raises(QueryStructureError):
            parse_query("Q(w) :- R(x)")


class TestParseAtom:
    def test_parse_atom(self):
        assert parse_atom("R(x, y)") == Atom("R", ["x", "y"])

    def test_parse_atom_rejects_query(self):
        with pytest.raises(QuerySyntaxError):
            parse_atom("Q(x) :- R(x)")


class TestParseMany:
    def test_multi_line_with_comments(self):
        queries = parse_many(
            """
            # the paper's pair
            Q1(x) :- E(x, y), T(y)
            Q2() :- S(x)
            """
        )
        assert len(queries) == 2
        assert queries[0].name == "Q1"
        assert queries[1].is_boolean

"""Quality tests for the measurement harness itself.

A benchmark suite is only as trustworthy as its instruments; these
tests point the instruments at known inputs (including a deliberately
broken engine) and check they report what they should.
"""

import random

import pytest

from repro.bench.compare import compare_engines
from repro.bench.harness import ScalingExperiment
from repro.bench.timing import DelayRecorder
from repro.cq import zoo
from repro.errors import EngineStateError
from repro.interface import ENGINE_REGISTRY, register_engine
from repro.ivm.recompute import RecomputeEngine
from tests.conftest import random_stream


def _ensure_lying_engine_registered():
    """Register (once) an engine that silently drops every delete."""
    if "lying_for_tests" in ENGINE_REGISTRY:
        return

    @register_engine
    class LyingEngine(RecomputeEngine):  # noqa: N801 - test helper
        name = "lying_for_tests"

        def delete(self, relation, row):
            return False  # pretends deletes never happen

    return LyingEngine


class TestCompareDetectsDisagreement:
    def test_lying_engine_is_caught(self):
        _ensure_lying_engine_registered()
        rng = random.Random(5)
        stream = random_stream(
            zoo.E_T_QF, rng, rounds=60, delete_fraction=0.5
        )
        with pytest.raises(EngineStateError):
            compare_engines(
                zoo.E_T_QF,
                stream,
                ["qhierarchical", "lying_for_tests"],
                checkpoint_every=10,
            )

    def test_insert_only_streams_agree_with_liar(self):
        # With no deletes the liar is accidentally correct — the
        # comparator should NOT cry wolf.
        _ensure_lying_engine_registered()
        rng = random.Random(6)
        stream = [
            command
            for command in random_stream(
                zoo.E_T_QF, rng, rounds=40, delete_fraction=0.0
            )
        ]
        result = compare_engines(
            zoo.E_T_QF, stream, ["qhierarchical", "lying_for_tests"]
        )
        assert result.checkpoints >= 1


class TestDelayRecorderEdges:
    def test_empty_iterator_records_only_eoe(self):
        recorder = DelayRecorder()
        produced = recorder.consume(iter(()))
        assert produced == 0
        assert len(recorder.delays) == 1  # just the EOE delay

    def test_limit_zero_like_behaviour(self):
        recorder = DelayRecorder()
        produced = recorder.consume(iter(range(10)), limit=1)
        assert produced == 1
        assert recorder.count == 1

    def test_accumulates_across_consumes(self):
        recorder = DelayRecorder()
        recorder.consume(iter(range(3)))
        recorder.consume(iter(range(2)))
        assert recorder.count == 5
        assert len(recorder.delays) == 3 + 1 + 2 + 1


class TestScalingExperimentDeterminism:
    def test_same_seed_same_rngs(self):
        observed = []

        def measure(engine, n, rng):
            observed.append((engine, n, rng.random()))
            return 1.0

        ScalingExperiment(
            title="d", sizes=[10, 20], measure=measure, engines=["e"], seed=7
        ).run()
        first = list(observed)
        observed.clear()
        ScalingExperiment(
            title="d", sizes=[10, 20], measure=measure, engines=["e"], seed=7
        ).run()
        assert observed == first

    def test_results_per_engine_per_size(self):
        experiment = ScalingExperiment(
            title="d",
            sizes=[1, 2, 3],
            measure=lambda engine, n, rng: float(n),
            engines=["a", "b"],
        ).run()
        assert experiment.results["a"] == [1.0, 2.0, 3.0]
        assert len(experiment.speedups()) == 3

"""Tests for the hardness-profile reports."""

import pytest

from repro.cq import zoo
from repro.lowerbounds.profiles import hardness_profile


class TestHardnessProfile:
    def test_q_hierarchical_profile(self):
        profile = hardness_profile(zoo.EXAMPLE_6_1)
        text = profile.render()
        assert "Theorem 3.2" in text
        assert "QHierarchicalEngine" in text
        assert "not q-hierarchical" not in text

    def test_s_e_t_profile(self):
        profile = hardness_profile(zoo.S_E_T)
        text = profile.render()
        assert "condition (i)" in text
        assert "Theorem 3.3" in text
        assert "Theorem 3.4" in text  # Boolean core also hard
        assert "Theorem 3.5" in text  # counting hard
        assert "free-connex acyclic" in text  # statically easy!

    def test_e_t_profile_mixed_verdicts(self):
        profile = hardness_profile(zoo.E_T)
        text = profile.render()
        assert "condition (ii)" in text
        assert "emptiness is maintainable in O(1)" in text  # Boolean easy
        assert "OVCountingReduction" in text  # counting hard via OV

    def test_phi1_profile_self_join_open(self):
        profile = hardness_profile(zoo.PHI_1)
        text = profile.render()
        assert "dichotomy is open" in text
        assert "Lemma A.1" in text and "Lemma A.2" in text
        assert "OuMvCountingReduction" in text  # counting case (i)

    def test_loop_triangle_boolean_rescued_by_core(self):
        profile = hardness_profile(zoo.LOOP_TRIANGLE)
        text = profile.render()
        assert "emptiness is maintainable in O(1)" in text
        assert "counting: the query's core is q-hierarchical" in text

    def test_classification_attached(self):
        profile = hardness_profile(zoo.E_T_QF)
        assert profile.classification.q_hierarchical
        assert profile.free_connex

"""Tests for the baselines: RecomputeEngine and DeltaIVMEngine."""

import random

import pytest

from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.eval_static.naive import evaluate as evaluate_naive, valuation_counts
from repro.ivm import DeltaIVMEngine, RecomputeEngine
from tests.conftest import loop_graph_stream, random_stream


ENGINES = [RecomputeEngine, DeltaIVMEngine]


@pytest.mark.parametrize("engine_cls", ENGINES)
class TestAgainstGroundTruth:
    def test_s_e_t(self, engine_cls):
        engine = engine_cls(zoo.S_E_T)
        engine.insert("S", (1,))
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        assert engine.result_set() == {(1, 5)}
        engine.delete("T", (5,))
        assert engine.result_set() == set()
        assert engine.count() == 0
        assert not engine.answer()

    @pytest.mark.parametrize("seed", range(4))
    def test_random_streams(self, engine_cls, seed):
        rng = random.Random(seed)
        query = zoo.S_E_T if seed % 2 else zoo.E_T
        engine = engine_cls(query)
        for step, command in enumerate(random_stream(query, rng, rounds=70)):
            engine.apply(command)
            if step % 11 == 0:
                truth = evaluate_naive(query, engine.database)
                assert engine.result_set() == truth
                assert engine.count() == len(truth)

    def test_self_join_phi1(self, engine_cls):
        rng = random.Random(5)
        engine = engine_cls(zoo.PHI_1)
        for step, command in enumerate(loop_graph_stream(rng, rounds=90)):
            engine.apply(command)
            if step % 9 == 0:
                truth = evaluate_naive(zoo.PHI_1, engine.database)
                assert engine.result_set() == truth, step

    def test_self_join_loop_triangle_boolean(self, engine_cls):
        rng = random.Random(6)
        engine = engine_cls(zoo.LOOP_TRIANGLE)
        for step, command in enumerate(loop_graph_stream(rng, rounds=60)):
            engine.apply(command)
            truth = bool(evaluate_naive(zoo.LOOP_TRIANGLE, engine.database))
            assert engine.answer() == truth, step

    def test_cyclic_query_support(self, engine_cls):
        # Baselines handle queries the fast engine refuses — including
        # cyclic ones.
        q = parse_query("Q() :- R(x, y), S(y, z), T(z, x)")
        engine = engine_cls(q)
        engine.insert("R", (1, 2))
        engine.insert("S", (2, 3))
        assert not engine.answer()
        engine.insert("T", (3, 1))
        assert engine.answer()


class TestDeltaIVMInternals:
    def test_valuation_counts_match_naive(self):
        rng = random.Random(8)
        engine = DeltaIVMEngine(zoo.E_T)
        for command in random_stream(zoo.E_T, rng, rounds=60):
            engine.apply(command)
        truth = valuation_counts(zoo.E_T, engine.database)
        for key, amount in truth.items():
            assert engine.valuation_count(key) == amount
        assert engine.count() == len(truth)

    def test_self_join_valuation_counts(self):
        # E(x,x) ∧ E(x,y): one E tuple feeds two atoms.
        q = parse_query("Q(x, y) :- E(x, x), E(x, y)")
        engine = DeltaIVMEngine(q)
        engine.insert("E", (1, 1))
        assert engine.valuation_count((1, 1)) == 1
        engine.insert("E", (1, 2))
        assert engine.valuation_count((1, 2)) == 1
        engine.delete("E", (1, 1))
        assert engine.count() == 0

    def test_insert_delete_roundtrip_restores_counts(self):
        rng = random.Random(9)
        engine = DeltaIVMEngine(zoo.S_E_T)
        engine.insert("S", (1,))
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        baseline = engine.count()
        engine.insert("E", (1, 6))
        engine.delete("E", (1, 6))
        assert engine.count() == baseline

    def test_enumerate_only_positive(self):
        engine = DeltaIVMEngine(zoo.E_T)
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        engine.delete("T", (5,))
        assert list(engine.enumerate()) == []


class TestRecomputeInternals:
    def test_lazy_recompute_counts(self):
        engine = RecomputeEngine(zoo.E_T)
        engine.insert("E", (1, 5))
        engine.insert("T", (5,))
        assert engine.recompute_count == 0  # nothing queried yet
        engine.count()
        engine.answer()
        assert engine.recompute_count == 1  # cached between queries
        engine.insert("E", (2, 5))
        engine.count()
        assert engine.recompute_count == 2

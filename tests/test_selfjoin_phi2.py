"""Tests for the Appendix A ϕ2 engine (Lemma A.2)."""

import random

import pytest

from repro.core.selfjoin import Phi2Engine, match_phi2
from repro.cq import zoo
from repro.cq.parser import parse_query
from repro.errors import QueryStructureError
from repro.eval_static.naive import evaluate as evaluate_naive
from tests.conftest import loop_graph_stream


class TestMatcher:
    def test_matches_paper_query(self):
        match = match_phi2(zoo.PHI_2)
        assert match == ("x", "y", "z1", "z2", "E")

    def test_matches_renamed_variant(self):
        q = parse_query("Q(u, v, s, t) :- F(u, u), F(u, v), F(v, v), F(s, t)")
        assert match_phi2(q) == ("u", "v", "s", "t", "F")

    def test_matches_permuted_output(self):
        q = parse_query("Q(z1, z2, x, y) :- E(x, x), E(x, y), E(y, y), E(z1, z2)")
        assert match_phi2(q) is not None

    def test_rejects_phi1(self):
        assert match_phi2(zoo.PHI_1) is None

    def test_rejects_wrong_shape(self):
        q = parse_query("Q(x, y, z1, z2) :- E(x, x), E(x, y), E(y, x), E(z1, z2)")
        assert match_phi2(q) is None

    def test_engine_rejects_non_phi2(self):
        with pytest.raises(QueryStructureError):
            Phi2Engine(zoo.PHI_1)


class TestSemantics:
    def test_empty_graph(self):
        engine = Phi2Engine(zoo.PHI_2)
        assert not engine.answer()
        assert engine.count() == 0
        assert list(engine.enumerate()) == []

    def test_loopless_graph_empty_result(self):
        engine = Phi2Engine(zoo.PHI_2)
        engine.insert("E", (1, 2))
        engine.insert("E", (2, 3))
        assert not engine.answer()
        assert list(engine.enumerate()) == []

    def test_single_loop(self):
        engine = Phi2Engine(zoo.PHI_2)
        engine.insert("E", (7, 7))
        assert engine.answer()
        assert engine.result_set() == {(7, 7, 7, 7)}
        assert engine.count() == 1

    def test_hand_example(self):
        engine = Phi2Engine(zoo.PHI_2)
        edges = [(1, 1), (2, 2), (1, 2), (3, 4)]
        for edge in edges:
            engine.insert("E", edge)
        expected = evaluate_naive(zoo.PHI_2, engine.database)
        rows = list(engine.enumerate())
        assert len(rows) == len(set(rows))
        assert set(rows) == expected
        # |ϕ1| = 3 pairs × |E| = 4 edges.
        assert engine.count() == 12 == len(expected)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_match_naive(self, seed):
        rng = random.Random(seed)
        engine = Phi2Engine(zoo.PHI_2)
        for step, command in enumerate(loop_graph_stream(rng, rounds=80)):
            engine.apply(command)
            if step % 13 == 0:
                truth = evaluate_naive(zoo.PHI_2, engine.database)
                rows = list(engine.enumerate())
                assert len(rows) == len(set(rows)), step
                assert set(rows) == truth, step
                assert engine.count() == len(truth)
                assert engine.answer() == bool(truth)

    def test_phase_1_streams_c0_block_first(self):
        engine = Phi2Engine(zoo.PHI_2)
        engine.insert("E", (1, 1))
        engine.insert("E", (2, 2))
        engine.insert("E", (1, 2))
        rows = list(engine.enumerate())
        edge_count = 3
        first_block = rows[:edge_count]
        # Phase 1 emits (c0, c0) × E where c0 is the first loop seen.
        assert all(row[0] == row[1] == 1 for row in first_block)

    def test_deviation_from_paper_keeps_c0_partners(self):
        # The pairs (c0, y) whose Exx-witness is the loop (c0, c0)
        # must appear even though the appendix's D' would drop them.
        engine = Phi2Engine(zoo.PHI_2)
        engine.insert("E", (1, 1))
        engine.insert("E", (1, 2))
        engine.insert("E", (2, 2))
        result = engine.result_set()
        assert (1, 2, 1, 1) in result  # pair (c0=1, y=2) present

    def test_output_order_permuted_query(self):
        q = parse_query("Q(z1, z2, x, y) :- E(x, x), E(x, y), E(y, y), E(z1, z2)")
        engine = Phi2Engine(q)
        engine.insert("E", (7, 7))
        assert engine.result_set() == {(7, 7, 7, 7)}
        engine.insert("E", (8, 9))
        assert (8, 9, 7, 7) in engine.result_set()

    def test_phi1_pairs_helper(self):
        engine = Phi2Engine(zoo.PHI_2)
        for edge in [(1, 1), (2, 2), (1, 2), (5, 6)]:
            engine.insert("E", edge)
        assert set(engine.phi1_pairs()) == {(1, 1), (2, 2), (1, 2)}

    def test_enumeration_is_lazy(self):
        # The first tuple arrives without scanning the whole edge set:
        # consume one tuple from a large graph and stop.
        engine = Phi2Engine(zoo.PHI_2)
        engine.insert("E", (0, 0))
        for j in range(1, 2000):
            engine.insert("E", (0, j))
        generator = engine.enumerate()
        first = next(generator)
        assert first[0] == first[1] == 0
        generator.close()

    def test_repeated_enumerations_agree(self):
        engine = Phi2Engine(zoo.PHI_2)
        for edge in [(1, 1), (1, 2), (2, 2), (9, 8)]:
            engine.insert("E", edge)
        assert set(engine.enumerate()) == set(engine.enumerate())
